"""Bounded per-tenant FIFO queues and a round-robin fair arbiter.

The queueing discipline is deliberately simple and analyzable:

* every tenant owns one bounded FIFO — jobs within a tenant run in
  submission order, and a tenant that floods the service fills *its
  own* queue, never a shared one;
* a pointer-based round-robin arbiter (the software twin of migen's
  ``corelogic.roundrobin`` with the switch policy ``SP_CE``) picks
  which tenant's head-of-queue job is dispatched next: the grant
  pointer advances to the next *requesting* tenant strictly after the
  previously granted one, so with ``T`` tenants requesting, each is
  granted at least once in any window of ``T`` consecutive grants.

That last property is the service's **fairness bound**: no tenant with
dispatchable work waits more than ``T`` grants between grants — it is
asserted by the chaos harness (:mod:`repro.service.chaos`) and the
scheduler tests, not just documented.
"""

from __future__ import annotations

from collections import deque
from typing import Collection, Deque, Generic, Iterable, TypeVar

__all__ = ["BoundedFifo", "RoundRobinArbiter"]

T = TypeVar("T")


class BoundedFifo(Generic[T]):
    """A FIFO with a hard capacity; the *caller* decides what a full
    queue means (the admission controller sheds, it never blocks)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1 (got {capacity})")
        self.capacity = capacity
        self._items: Deque[T] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: T) -> None:
        if self.full:
            raise OverflowError(
                f"queue is at capacity ({self.capacity}); admission "
                "control must shed before pushing"
            )
        self._items.append(item)

    def requeue(self, item: T) -> None:
        """Put a popped item back at the *front* (FIFO order preserved).

        Used when a dispatched job must return to its queue (crash or
        timeout resume): the job was already admitted, so this may
        transiently exceed ``capacity`` if the tenant refilled its
        queue while the job ran — admission still sheds new work.
        """
        self._items.appendleft(item)

    def peek(self) -> "T | None":
        return self._items[0] if self._items else None

    def pop(self) -> T:
        return self._items.popleft()


class RoundRobinArbiter:
    """Pointer-based round-robin over registered tenant slots.

    Mirrors the migen round-robin core: tenants occupy fixed slots in
    registration order; :meth:`grant` scans cyclically starting *after*
    the last granted slot and returns the first tenant that is
    currently requesting.  A tenant that is not requesting is skipped
    without consuming its turn.
    """

    def __init__(self, tenants: Iterable[str] = ()) -> None:
        self._slots: list[str] = []
        self._index: dict[str, int] = {}
        # one before slot 0, so the very first scan starts at slot 0
        self._pointer = -1
        for tenant in tenants:
            self.register(tenant)

    def register(self, tenant: str) -> None:
        """Give ``tenant`` a slot (idempotent; order is first-seen)."""
        if tenant not in self._index:
            self._index[tenant] = len(self._slots)
            self._slots.append(tenant)

    @property
    def slots(self) -> tuple[str, ...]:
        return tuple(self._slots)

    def grant(self, requesting: Collection[str]) -> "str | None":
        """The next requesting tenant after the previous grant, if any."""
        count = len(self._slots)
        if count == 0 or not requesting:
            return None
        wanted = set(requesting)
        for step in range(1, count + 1):
            index = (self._pointer + step) % count
            tenant = self._slots[index]
            if tenant in wanted:
                self._pointer = index
                return tenant
        return None
