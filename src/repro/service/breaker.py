"""Per-tenant circuit breaker over repeated job failures.

A tenant whose jobs keep failing (corrupt archives, pathological
parameters, a poisoned corpus) must not be allowed to monopolize the
worker pool with doomed retries.  The breaker is the classic three
state machine, with one deliberate twist: its cooldown is measured in
**scheduling rounds**, not wall-clock seconds, so the whole service —
breakers included — replays deterministically in tests and in the
chaos harness.

* ``closed`` — failures are counted; ``failure_threshold`` consecutive
  job failures trip the breaker open (a success resets the streak);
* ``open`` — submissions are shed with a typed
  :class:`~repro.errors.CircuitOpenError` and queued jobs are held;
  after ``cooldown_rounds`` scheduling rounds the breaker half-opens;
* ``half-open`` — exactly one *probe* job is let through; its success
  closes the breaker, its failure re-opens it for a fresh cooldown.
"""

from __future__ import annotations

from repro.errors import CircuitOpenError

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One tenant's failure-streak state machine."""

    def __init__(
        self,
        tenant: str,
        failure_threshold: int = 3,
        cooldown_rounds: int = 8,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_rounds < 1:
            raise ValueError("cooldown_rounds must be >= 1")
        self.tenant = tenant
        self.failure_threshold = failure_threshold
        self.cooldown_rounds = cooldown_rounds
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at_round = 0
        self._probe_outstanding = False

    # ----- queries ----------------------------------------------------------

    def retry_after(self, current_round: int) -> int:
        """Rounds until an open breaker half-opens (0 when not open)."""
        if self.state != OPEN:
            return 0
        remaining = self.cooldown_rounds - (
            current_round - self._opened_at_round
        )
        return max(0, remaining)

    def allows_dispatch(self, current_round: int) -> bool:
        """May one of this tenant's queued jobs start right now?

        Open breakers hold their tenant's queue until the cooldown
        elapses, then admit exactly one probe at a time.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.retry_after(current_round) > 0:
                return False
            self.state = HALF_OPEN
            self._probe_outstanding = False
        return not self._probe_outstanding

    def check_submission(self, current_round: int) -> None:
        """Shed a new submission while the breaker is open."""
        if self.state == OPEN and self.retry_after(current_round) > 0:
            raise CircuitOpenError(
                self.tenant, self.retry_after(current_round)
            )

    # ----- transitions ------------------------------------------------------

    def on_dispatch(self) -> None:
        """A job of this tenant started; mark the half-open probe."""
        if self.state == HALF_OPEN:
            self._probe_outstanding = True

    def on_success(self) -> None:
        self.consecutive_failures = 0
        self.state = CLOSED
        self._probe_outstanding = False

    def on_failure(self, current_round: int) -> bool:
        """Record one terminal job failure; True when this trips it."""
        self._probe_outstanding = False
        if self.state == HALF_OPEN:
            # the probe failed: straight back to a fresh cooldown
            self.state = OPEN
            self._opened_at_round = current_round
            self.trips += 1
            return True
        self.consecutive_failures += 1
        if (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = OPEN
            self._opened_at_round = current_round
            self.trips += 1
            return True
        return False
