"""Multi-tenant assembly service over the checkpointed job runtime.

The layers, bottom-up:

* :mod:`repro.service.queue` — bounded FIFO-per-tenant queues and the
  round-robin fair arbiter (the documented ``T``-grant fairness bound);
* :mod:`repro.service.admission` — per-tenant quotas with typed
  load-shedding reason codes;
* :mod:`repro.service.breaker` — per-tenant circuit breakers with
  round-based (deterministic) cooldowns;
* :mod:`repro.service.service` — :class:`AssemblyService`: submission,
  scheduling, deadline propagation, crash-resume retries and
  pressure-driven graceful degradation over a worker pool;
* :mod:`repro.service.chaos` — the chaos harness that injects kills,
  timeouts, corrupt inputs and fault storms, then audits the service's
  promises (nothing lost, nothing duplicated, survivors bit-identical,
  fairness bound intact, every non-completion typed).
"""

from repro.service.admission import AdmissionController, TenantQuota
from repro.service.breaker import CircuitBreaker
from repro.service.chaos import ChaosConfig, ChaosReport, run_chaos
from repro.service.queue import BoundedFifo, RoundRobinArbiter
from repro.service.service import (
    AssemblyService,
    JobTicket,
    ServiceConfig,
    ServiceReport,
)

__all__ = [
    "AdmissionController",
    "AssemblyService",
    "BoundedFifo",
    "ChaosConfig",
    "ChaosReport",
    "CircuitBreaker",
    "JobTicket",
    "RoundRobinArbiter",
    "ServiceConfig",
    "ServiceReport",
    "TenantQuota",
    "run_chaos",
]
