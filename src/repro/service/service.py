"""The multi-tenant assembly service: admit, queue, schedule, survive.

One :class:`AssemblyService` wraps the checkpointed
:class:`~repro.runtime.jobs.JobRunner` with the layer a deployment
needs between "a job" and "heavy traffic":

* **admission control** (:mod:`repro.service.admission`) — per-tenant
  quotas shed overload as typed
  :class:`~repro.errors.AdmissionError`\\ s at submit time;
* **fair scheduling** (:mod:`repro.service.queue`) — bounded
  FIFO-per-tenant queues drained round-robin into a bounded worker
  pool, with the documented fairness bound (no tenant with
  dispatchable work waits more than ``T`` grants, ``T`` = tenants);
* **deadline propagation** — a submission's ``deadline_s`` becomes the
  watchdog's whole-job budget; a resumed dispatch gets only the
  *remaining* budget, and an exhausted budget is a typed terminal
  outcome, never a hang;
* **crash containment** — a worker whose job dies (up to a simulated
  or real ``SIGKILL``) re-queues the job for journal resume with a
  capped, seeded backoff measured in scheduling rounds; attempts are
  bounded, so every admitted job reaches a terminal state;
* **circuit breaking** (:mod:`repro.service.breaker`) — tenants with
  repeated terminal failures are shed/held until a cooldown and a
  successful probe;
* **graceful degradation** — under queue pressure, *newly dispatched*
  jobs step down the same bulk → scalar → reduced-batch ladder the
  retry path uses on faults, trading simulation speed for capacity
  while keeping results bit-identical (engine equivalence is a tested
  invariant).

Everything the scheduler decides is observable: queue-depth gauges,
per-tenant latency histograms, shed/trip/degrade counters and a
``service`` lane of span events feed the PR 4 observability layer when
a registry/tracer is active on the scheduling thread.  On top of that
sits the health surface of PR 9: per-tenant **SLO objectives** with
burn-rate tracking, an **alert-rule evaluator** run once per
scheduling round, a JSONL **audit log** at ``<root>/audit.jsonl``
(sheds, failures, breaker trips, alert firings, the drain summary), a
periodic Prometheus **exposition** rewrite when a telemetry path is
configured, per-tenant energy attribution via
:func:`~repro.observability.power.lane_scope` around each worker, and
**flight-recorder dumps** into the job dir on failures and breaker
trips.
"""

from __future__ import annotations

import json
import queue as queue_mod
import random
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Mapping

from repro.errors import (
    AdmissionError,
    InputError,
    ReproError,
    StageTimeoutError,
)
from repro.observability.metrics import (
    active_registry,
    inc,
    observe,
    set_gauge,
)
from repro.observability.power import lane_scope
from repro.observability.session import active_session
from repro.observability.slo import AlertEvaluator, AlertRule, SloObjective, SloTracker
from repro.observability.spans import active_tracer, event, span
from repro.runtime.checkpoint import JobJournal
from repro.runtime.jobs import JobConfig, JobOutcome, JobRunner
from repro.runtime.watchdog import Watchdog
from repro.service.admission import AdmissionController, TenantQuota
from repro.service.breaker import CircuitBreaker
from repro.service.queue import BoundedFifo, RoundRobinArbiter

__all__ = [
    "AssemblyService",
    "GrantRecord",
    "JobTicket",
    "ServiceConfig",
    "ServiceReport",
    "ShedRecord",
]

# ----- ticket states ---------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"

#: terminal failure kinds a ticket can end in (all typed, none a crash)
FAILURE_KINDS = (
    "error",  # a ReproError the ladder could not absorb
    "input-error",  # the input payload was unusable
    "crash-exhausted",  # dispatch attempts exhausted by process deaths
    "timeout-exhausted",  # dispatch attempts exhausted by stage timeouts
    "deadline-exceeded",  # the submission's whole-job budget ran out
)


@dataclass(frozen=True)
class ServiceConfig:
    """Scheduler-wide knobs (per-tenant quotas live in admission).

    Attributes:
        workers: worker-pool size (concurrent jobs across all tenants).
        default_quota: quota applied to tenants without an explicit one.
        max_total_queued: service-wide queued-job bound (backpressure).
        max_dispatches: dispatch attempts per job — 1 fresh run plus
            crash/timeout resumes — before the job fails terminally.
        requeue_base_rounds / requeue_cap_rounds: capped exponential
            backoff (in scheduling rounds) before a crashed/timed-out
            job is eligible to resume, jittered from ``seed``.
        breaker_threshold / breaker_cooldown_rounds: per-tenant circuit
            breaker parameters (consecutive terminal failures to trip,
            rounds until half-open).
        degrade_engine_depth: total queued jobs at which newly
            dispatched ``bulk`` jobs are stepped down to ``scalar``
            (``None`` disables).
        degrade_batch_depth: total queued jobs at which newly
            dispatched jobs also get their read batch quartered
            (``None`` disables).
        seed: seed of the scheduler's own RNG (requeue jitter); keeps
            whole-service runs replayable.
    """

    workers: int = 2
    default_quota: TenantQuota = TenantQuota()
    max_total_queued: int = 64
    max_dispatches: int = 3
    requeue_base_rounds: int = 1
    requeue_cap_rounds: int = 8
    breaker_threshold: int = 3
    breaker_cooldown_rounds: int = 8
    degrade_engine_depth: "int | None" = None
    degrade_batch_depth: "int | None" = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_dispatches < 1:
            raise ValueError("max_dispatches must be >= 1")
        if self.requeue_base_rounds < 0 or self.requeue_cap_rounds < 0:
            raise ValueError("requeue backoff rounds must be non-negative")
        for name in ("degrade_engine_depth", "degrade_batch_depth"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None")


@dataclass
class JobRequest:
    """Everything one submission carries."""

    tenant: str
    name: str
    reads: list
    config: JobConfig
    deadline_s: "float | None" = None
    stage_timeout_s: "float | None" = None
    input_bytes: int = 0
    pim_factory: "Callable | None" = None
    #: per-dispatch watchdog override (chaos injection hook): called
    #: with the dispatch index; ``None`` return falls back to the
    #: service's deadline-derived watchdog
    watchdog_factory: "Callable[[int], Watchdog | None] | None" = None


@dataclass
class JobTicket:
    """One admitted job's lifecycle, from queue to terminal state."""

    request: JobRequest
    job_dir: Path
    state: str = QUEUED
    failure_kind: "str | None" = None
    error: "str | None" = None
    error_type: "str | None" = None
    outcome: "JobOutcome | None" = None
    effective_config: "JobConfig | None" = None
    degraded: list = field(default_factory=list)
    dispatches: int = 0
    resumed: bool = False
    submitted_round: int = 0
    next_round: int = 0
    finished_round: "int | None" = None
    submit_ts: float = 0.0
    first_start_ts: "float | None" = None
    end_ts: "float | None" = None
    history: list = field(default_factory=list)
    _result: "tuple | None" = None

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def name(self) -> str:
        return self.request.name

    @property
    def terminal(self) -> bool:
        return self.state in (COMPLETED, FAILED)

    @property
    def latency_s(self) -> "float | None":
        if self.end_ts is None:
            return None
        return self.end_ts - self.submit_ts

    def describe(self) -> str:
        tail = ""
        if self.state == FAILED:
            tail = f" [{self.failure_kind}: {self.error_type}]"
        elif self.degraded:
            tail = f" [degraded: {'+'.join(self.degraded)}]"
        return (
            f"{self.tenant}/{self.name}: {self.state} "
            f"after {self.dispatches} dispatch(es)"
            f"{' (resumed)' if self.resumed else ''}{tail}"
        )


@dataclass(frozen=True)
class ShedRecord:
    """One typed admission rejection (kept for the report)."""

    tenant: str
    name: str
    reason: str
    message: str
    round: int


@dataclass(frozen=True)
class GrantRecord:
    """One scheduling grant plus who else was eligible at that moment.

    ``eligible`` is the set the arbiter chose from — the exact data the
    fairness bound quantifies over.
    """

    round: int
    tenant: str
    name: str
    eligible: tuple


class ServiceReport:
    """What the service did during one :meth:`AssemblyService.drain`."""

    def __init__(
        self,
        tickets: list,
        shed: list,
        grants: list,
        rounds: int,
        tenant_slots: tuple,
        breaker_trips: int,
    ) -> None:
        self.tickets: list[JobTicket] = tickets
        self.shed: list[ShedRecord] = shed
        self.grants: list[GrantRecord] = grants
        self.rounds = rounds
        self.tenant_slots = tenant_slots
        self.breaker_trips = breaker_trips

    @property
    def completed(self) -> list:
        return [t for t in self.tickets if t.state == COMPLETED]

    @property
    def failed(self) -> list:
        return [t for t in self.tickets if t.state == FAILED]

    @property
    def fairness_bound(self) -> int:
        """Documented bound: grants another tenant may receive while a
        tenant stays eligible but ungranted (= number of tenant slots)."""
        return max(1, len(self.tenant_slots))

    def fairness_violations(self, bound: "int | None" = None) -> list:
        """Tenants that stayed eligible longer than ``bound`` grants.

        Walks the grant log counting, per tenant, consecutive grants in
        which the tenant was eligible yet some other tenant was
        granted; the round-robin arbiter caps that streak at the number
        of tenant slots.
        """
        limit = self.fairness_bound if bound is None else bound
        streak: dict[str, int] = {}
        violations: list[tuple[str, int]] = []
        for record in self.grants:
            eligible = set(record.eligible)
            for tenant in self.tenant_slots:
                if tenant == record.tenant or tenant not in eligible:
                    # granted, or the eligibility window broke (backoff,
                    # in-flight cap, breaker): the bound restarts
                    streak[tenant] = 0
                    continue
                streak[tenant] = streak.get(tenant, 0) + 1
                if streak[tenant] > limit:
                    violations.append((tenant, streak[tenant]))
        return violations

    def summary(self) -> dict:
        return {
            "jobs": len(self.tickets),
            "completed": len(self.completed),
            "failed": len(self.failed),
            "shed": len(self.shed),
            "degraded": sum(1 for t in self.tickets if t.degraded),
            "resumed": sum(1 for t in self.tickets if t.resumed),
            "rounds": self.rounds,
            "breaker_trips": self.breaker_trips,
            "fairness_violations": len(self.fairness_violations()),
        }

    def __str__(self) -> str:
        s = self.summary()
        return (
            f"service: {s['completed']}/{s['jobs']} completed, "
            f"{s['failed']} failed, {s['shed']} shed, "
            f"{s['degraded']} degraded, {s['resumed']} resumed, "
            f"{s['rounds']} rounds, {s['breaker_trips']} breaker trip(s)"
        )


class AssemblyService:
    """Admission-controlled, fairly scheduled batch of assembly jobs.

    Args:
        root: directory holding one job-journal subdirectory per job
            (``<root>/<tenant>/<name>``).
        config: scheduler knobs (:class:`ServiceConfig`).
        quotas: explicit per-tenant quotas (others get the default).
        clock: monotonic-seconds source for latency/deadline tracking
            (injectable for tests).
        sleep: passed through to job runners' retry backoff.
        slos: per-tenant latency objectives (burn rates tracked, fed
            to ``burn_rate(...)`` alert rules).
        alert_rules: rules evaluated once per scheduling round when a
            metrics registry is active on the scheduling thread.
        telemetry_path: when set, the Prometheus exposition is
            rewritten (atomically) here every ``telemetry_every_rounds``
            rounds and once more when the drain finishes.
    """

    def __init__(
        self,
        root: "str | Path",
        config: "ServiceConfig | None" = None,
        quotas: "Mapping[str, TenantQuota] | None" = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        slos: "list[SloObjective] | None" = None,
        alert_rules: "list[AlertRule] | None" = None,
        telemetry_path: "str | Path | None" = None,
        telemetry_every_rounds: int = 1,
    ) -> None:
        self.root = Path(root)
        self.config = config or ServiceConfig()
        self.admission = AdmissionController(
            default_quota=self.config.default_quota,
            quotas=dict(quotas or {}),
            max_total_queued=self.config.max_total_queued,
        )
        self.arbiter = RoundRobinArbiter(sorted(quotas or ()))
        self._clock = clock
        self._sleep = sleep
        self._queues: dict[str, BoundedFifo] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._names: dict[str, set] = {}
        self._inflight: dict[str, int] = {}
        self._tickets: list[JobTicket] = []
        self._shed: list[ShedRecord] = []
        self._grants: list[GrantRecord] = []
        self._running: dict[int, threading.Thread] = {}
        self._done: "queue_mod.Queue[JobTicket]" = queue_mod.Queue()
        self._round = 0
        self._rng = random.Random(self.config.seed)
        self.slo = SloTracker(slos)
        self._alert_rules = list(alert_rules or [])
        self._evaluator: "AlertEvaluator | None" = None
        self.telemetry_path = (
            Path(telemetry_path) if telemetry_path is not None else None
        )
        if telemetry_every_rounds < 1:
            raise ValueError("telemetry_every_rounds must be >= 1")
        self._telemetry_every = telemetry_every_rounds
        self.audit_path = self.root / "audit.jsonl"

    # ----- tenant state -----------------------------------------------------

    def _tenant_state(self, tenant: str) -> tuple:
        if tenant not in self._queues:
            quota = self.admission.quota_for(tenant)
            self._queues[tenant] = BoundedFifo(quota.max_queued)
            self._breakers[tenant] = CircuitBreaker(
                tenant,
                failure_threshold=self.config.breaker_threshold,
                cooldown_rounds=self.config.breaker_cooldown_rounds,
            )
            self._names[tenant] = set()
            self._inflight[tenant] = 0
            self.arbiter.register(tenant)
        return self._queues[tenant], self._breakers[tenant]

    def _total_queued(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def breaker(self, tenant: str) -> CircuitBreaker:
        """The tenant's breaker (created on first touch)."""
        return self._tenant_state(tenant)[1]

    # ----- submission -------------------------------------------------------

    def submit(
        self,
        tenant: str,
        name: str,
        reads: "list | Callable[[], list]",
        config: JobConfig,
        deadline_s: "float | None" = None,
        stage_timeout_s: "float | None" = None,
        input_bytes: "int | None" = None,
        pim_factory: "Callable | None" = None,
        watchdog_factory: "Callable[[int], Watchdog | None] | None" = None,
    ) -> JobTicket:
        """Admit one job, or shed it with a typed error.

        ``reads`` may be the materialized read list or a zero-argument
        loader; the loader runs only *after* every quota check passes,
        so an oversized payload is shed before it is ever parsed, and a
        corrupt one surfaces as a typed
        :class:`~repro.errors.InputError` to the submitter.

        Raises:
            AdmissionError: the submission was shed (see the reason
                code taxonomy in :mod:`repro.service.admission`).
            InputError: the payload failed to load/parse.
        """
        for label, value in (
            ("deadline_s", deadline_s),
            ("stage_timeout_s", stage_timeout_s),
        ):
            if value is not None and value <= 0:
                raise InputError(
                    f"{label} must be a positive number of seconds "
                    f"(got {value})"
                )
        queue, breaker = self._tenant_state(tenant)
        try:
            breaker.check_submission(self._round)
            self.admission.check(
                tenant,
                input_bytes=0 if input_bytes is None else input_bytes,
                tenant_queued=len(queue),
                total_queued=self._total_queued(),
                known_names=self._names[tenant],
                name=name,
            )
        except AdmissionError as exc:
            self._record_shed(tenant, name, exc)
            raise
        if callable(reads):
            reads = list(reads())
        if input_bytes is None:
            # payload size from the materialized reads (bases, 1B each)
            input_bytes = sum(
                len(str(getattr(r, "sequence", r))) for r in reads
            )
            try:
                self.admission.check(
                    tenant,
                    input_bytes=input_bytes,
                    tenant_queued=len(queue),
                    total_queued=self._total_queued(),
                )
            except AdmissionError as exc:
                self._record_shed(tenant, name, exc)
                raise
        ticket = JobTicket(
            request=JobRequest(
                tenant=tenant,
                name=name,
                reads=list(reads),
                config=config,
                deadline_s=deadline_s,
                stage_timeout_s=stage_timeout_s,
                input_bytes=input_bytes,
                pim_factory=pim_factory,
                watchdog_factory=watchdog_factory,
            ),
            job_dir=self.root / tenant / name,
            submitted_round=self._round,
            submit_ts=self._clock(),
        )
        queue.push(ticket)
        self._names[tenant].add(name)
        self._tickets.append(ticket)
        inc("service.admitted")
        self._audit({"kind": "admit", "tenant": tenant, "job": name})
        self._publish_depth(tenant)
        event(
            "service.admit",
            lane="service",
            tenant=tenant,
            job=name,
            queued=len(queue),
        )
        return ticket

    def _record_shed(self, tenant: str, name: str, exc: AdmissionError) -> None:
        self._shed.append(
            ShedRecord(
                tenant=tenant,
                name=name,
                reason=exc.reason,
                message=str(exc),
                round=self._round,
            )
        )
        inc(f"service.shed.{exc.reason}")
        inc("service.shed.total")
        self._audit(
            {
                "kind": "shed",
                "tenant": tenant,
                "job": name,
                "reason": exc.reason,
                "message": str(exc),
            }
        )
        event(
            "service.shed",
            lane="service",
            tenant=tenant,
            job=name,
            reason=exc.reason,
        )

    # ----- scheduling -------------------------------------------------------

    def drain(self) -> ServiceReport:
        """Run every queued job to a terminal state; return the report.

        The loop is hang-free by construction: every iteration either
        dispatches a job, consumes a completion, or advances the round
        counter that unblocks breaker cooldowns and requeue backoffs —
        and every job's dispatch count is bounded.
        """
        with span("service.drain", lane="service", workers=self.config.workers):
            while self._has_work():
                self._round += 1
                dispatched = self._fill_workers()
                if self._running:
                    self._complete(self._done.get())
                    while True:
                        try:
                            self._complete(self._done.get_nowait())
                        except queue_mod.Empty:
                            break
                elif not dispatched:
                    # nothing running, nothing dispatchable: the round
                    # advance itself is the progress (cooldown/backoff)
                    self._end_round()
                    continue
                self._end_round()
        report = self.report()
        self._audit({"kind": "drain-summary", **report.summary(),
                     "slo": self.slo.snapshot()})
        self._write_telemetry(force=True)
        return report

    def report(self) -> ServiceReport:
        return ServiceReport(
            tickets=list(self._tickets),
            shed=list(self._shed),
            grants=list(self._grants),
            rounds=self._round,
            tenant_slots=self.arbiter.slots,
            breaker_trips=sum(b.trips for b in self._breakers.values()),
        )

    def _has_work(self) -> bool:
        return bool(self._running) or any(
            not ticket.terminal for ticket in self._tickets
        )

    def _eligible_tenants(self) -> list:
        eligible = []
        for tenant, queue in self._queues.items():
            head = queue.peek()
            if head is None:
                continue
            if head.next_round > self._round:
                continue
            quota = self.admission.quota_for(tenant)
            if self._inflight[tenant] >= quota.max_in_flight:
                continue
            if not self._breakers[tenant].allows_dispatch(self._round):
                continue
            eligible.append(tenant)
        return eligible

    def _fill_workers(self) -> bool:
        dispatched = False
        while len(self._running) < self.config.workers:
            eligible = self._eligible_tenants()
            tenant = self.arbiter.grant(eligible)
            if tenant is None:
                break
            ticket = self._queues[tenant].pop()
            self._grants.append(
                GrantRecord(
                    round=self._round,
                    tenant=tenant,
                    name=ticket.name,
                    eligible=tuple(sorted(eligible)),
                )
            )
            self._dispatch(ticket)
            dispatched = True
        return dispatched

    def _dispatch(self, ticket: JobTicket) -> None:
        tenant = ticket.tenant
        self._breakers[tenant].on_dispatch()
        self._inflight[tenant] += 1
        now = self._clock()
        if ticket.first_start_ts is None:
            ticket.first_start_ts = now
        if ticket.effective_config is None:
            ticket.effective_config = self._degrade_for_pressure(ticket)
        remaining = self._remaining_deadline(ticket, now)
        if remaining is not None and remaining <= 0:
            # the budget died while the job waited in queue/backoff
            self._inflight[tenant] -= 1
            self._finish_failure(
                ticket,
                "deadline-exceeded",
                StageTimeoutError(
                    "<queued>", "job", ticket.request.deadline_s or 0.0, 0.0
                ),
            )
            return
        resume = JobJournal(ticket.job_dir).exists
        watchdog = self._watchdog_for(ticket, remaining)
        ticket.state = RUNNING
        ticket.dispatches += 1
        if resume:
            ticket.resumed = True
        ticket.history.append(
            {
                "round": self._round,
                "dispatch": ticket.dispatches,
                "resume": resume,
                "engine": ticket.effective_config.engine,
            }
        )
        inc("service.dispatches")
        self._publish_depth(tenant)
        event(
            "service.dispatch",
            lane="service",
            tenant=tenant,
            job=ticket.name,
            dispatch=ticket.dispatches,
            resume=resume,
        )
        thread = threading.Thread(
            target=self._worker,
            args=(ticket, watchdog, resume),
            name=f"svc-{tenant}-{ticket.name}",
            daemon=True,
        )
        self._running[id(ticket)] = thread
        thread.start()

    def _degrade_for_pressure(self, ticket: JobTicket) -> JobConfig:
        """Step a job down the bulk→scalar→reduced-batch ladder when the
        backlog is deep — capacity-driven, not fault-driven."""
        config = ticket.request.config
        depth = self._total_queued() + len(self._running)
        engine_depth = self.config.degrade_engine_depth
        if (
            engine_depth is not None
            and depth >= engine_depth
            and config.engine == "bulk"
        ):
            config = replace(config, engine="scalar")
            ticket.degraded.append("engine-scalar")
            inc("service.degraded.engine")
            event(
                "service.degrade",
                lane="service",
                tenant=ticket.tenant,
                job=ticket.name,
                kind="engine-scalar",
                depth=depth,
            )
        batch_depth = self.config.degrade_batch_depth
        if (
            batch_depth is not None
            and depth >= batch_depth
            and config.batch_reads is not None
            and config.batch_reads > 1
        ):
            reduced = max(1, config.batch_reads // 4)
            config = replace(config, batch_reads=reduced)
            ticket.degraded.append(f"batch-{reduced}")
            inc("service.degraded.batch")
            event(
                "service.degrade",
                lane="service",
                tenant=ticket.tenant,
                job=ticket.name,
                kind=f"batch-{reduced}",
                depth=depth,
            )
        return config

    def _remaining_deadline(
        self, ticket: JobTicket, now: float
    ) -> "float | None":
        deadline = ticket.request.deadline_s
        if deadline is None:
            return None
        assert ticket.first_start_ts is not None
        return deadline - (now - ticket.first_start_ts)

    def _watchdog_for(
        self, ticket: JobTicket, remaining: "float | None"
    ) -> "Watchdog | None":
        factory = ticket.request.watchdog_factory
        if factory is not None:
            injected = factory(ticket.dispatches)
            if injected is not None:
                return injected
        if remaining is None and ticket.request.stage_timeout_s is None:
            return None
        return Watchdog(
            job_budget_s=remaining,
            stage_budget_s=ticket.request.stage_timeout_s,
        )

    # ----- health surface (SLO / alerts / audit / telemetry) ----------------

    def _audit(self, record: dict) -> None:
        """Append one JSONL record to the service audit log (best effort:
        an unwritable root must not take the scheduler down)."""
        try:
            self.audit_path.parent.mkdir(parents=True, exist_ok=True)
            with self.audit_path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps({"round": self._round, **record},
                                        default=str) + "\n")
        except OSError:
            pass

    def _end_round(self) -> None:
        """Per-round health work: evaluate alert rules, refresh telemetry."""
        registry = active_registry()
        if self._alert_rules and registry is not None:
            if self._evaluator is None or self._evaluator.registry is not registry:
                session = active_session()
                self._evaluator = AlertEvaluator(
                    self._alert_rules,
                    registry,
                    slo=self.slo,
                    tracer=active_tracer(),
                    flight=session.flight if session is not None else None,
                    audit=self._audit,
                )
            session = active_session()
            self._evaluator.evaluate(
                round_index=self._round,
                sim_ns=session.sim_time_ns if session is not None else 0.0,
            )
        self._write_telemetry()

    def _write_telemetry(self, force: bool = False) -> None:
        if self.telemetry_path is None:
            return
        if not force and self._round % self._telemetry_every:
            return
        session = active_session()
        if session is not None:
            session.write_telemetry(self.telemetry_path)
        else:
            registry = active_registry()
            if registry is not None:
                from repro.observability.exposition import write_exposition

                write_exposition(self.telemetry_path, registry)

    @property
    def alert_events(self) -> list:
        """Every alert fired so far (empty without rules/registry)."""
        return list(self._evaluator.fired) if self._evaluator else []

    # ----- execution (worker threads) ---------------------------------------

    def _worker(
        self, ticket: JobTicket, watchdog: "Watchdog | None", resume: bool
    ) -> None:
        """Runs in a worker thread; communicates only via the ticket's
        ``_result`` slot and the done queue (the scheduler thread owns
        all shared state).  The tenant-named lane scope attributes every
        ledger record the job charges to the tenant in the power
        timeline."""
        try:
            with lane_scope(ticket.tenant):
                runner = JobRunner(
                    ticket.job_dir,
                    ticket.effective_config,
                    pim_factory=ticket.request.pim_factory,
                    watchdog=watchdog,
                    sleep=self._sleep,
                )
                outcome = runner.run(ticket.request.reads, resume=resume)
            ticket._result = ("completed", outcome, None)
        except StageTimeoutError as exc:
            ticket._result = ("timeout", None, exc)
        except InputError as exc:
            ticket._result = ("input-error", None, exc)
        except ReproError as exc:
            ticket._result = ("error", None, exc)
        except BaseException as exc:  # crash containment: kills included
            ticket._result = ("crashed", None, exc)
        finally:
            self._done.put(ticket)

    # ----- completion (scheduler thread) ------------------------------------

    def _complete(self, ticket: JobTicket) -> None:
        thread = self._running.pop(id(ticket))
        thread.join()
        self._inflight[ticket.tenant] -= 1
        assert ticket._result is not None
        kind, outcome, error = ticket._result
        ticket._result = None
        if kind in ("timeout", "crashed"):
            # post-mortem for every watchdog kill / process death, even
            # when the job later resumes successfully: the latest dump
            # for a job dir wins
            self._dump_flight(
                ticket, f"{kind}: {type(error).__name__}: {error}"
            )
        if kind == "completed":
            self._finish_success(ticket, outcome)
        elif kind in ("timeout", "crashed"):
            self._retry_or_fail(ticket, kind, error)
        elif kind == "input-error":
            self._finish_failure(ticket, "input-error", error)
        else:
            self._finish_failure(ticket, "error", error)
        self._publish_depth(ticket.tenant)

    def _retry_or_fail(
        self, ticket: JobTicket, kind: str, error: BaseException
    ) -> None:
        remaining = self._remaining_deadline(ticket, self._clock())
        if remaining is not None and remaining <= 0:
            self._finish_failure(ticket, "deadline-exceeded", error)
            return
        if ticket.dispatches >= self.config.max_dispatches:
            exhausted = (
                "timeout-exhausted" if kind == "timeout" else "crash-exhausted"
            )
            self._finish_failure(ticket, exhausted, error)
            return
        delay = min(
            self.config.requeue_cap_rounds,
            self.config.requeue_base_rounds * (2 ** (ticket.dispatches - 1)),
        )
        if delay > 0:
            delay += self._rng.randrange(0, 2)  # de-synchronize requeues
        ticket.next_round = self._round + delay
        ticket.state = QUEUED
        ticket.error = f"{type(error).__name__}: {error}"
        ticket.error_type = type(error).__name__
        self._queues[ticket.tenant].requeue(ticket)
        inc("service.requeues")
        event(
            "service.requeue",
            lane="service",
            tenant=ticket.tenant,
            job=ticket.name,
            kind=kind,
            delay_rounds=delay,
        )

    def _dump_flight(self, ticket: JobTicket, reason: str) -> None:
        session = active_session()
        if session is not None:
            session.dump_flight(ticket.job_dir, reason)

    def _finish_success(self, ticket: JobTicket, outcome: JobOutcome) -> None:
        ticket.state = COMPLETED
        ticket.outcome = outcome
        ticket.error = None
        ticket.error_type = None
        ticket.finished_round = self._round
        ticket.end_ts = self._clock()
        self._breakers[ticket.tenant].on_success()
        inc("service.completed")
        latency_ms = (ticket.end_ts - ticket.submit_ts) * 1e3
        self.slo.observe(
            ticket.tenant, latency_ms, ok=True, registry=active_registry()
        )
        observe(
            f"service.latency_ms.{ticket.tenant}",
            latency_ms,
        )
        self._audit(
            {
                "kind": "job-completed",
                "tenant": ticket.tenant,
                "job": ticket.name,
                "latency_ms": latency_ms,
            }
        )
        event(
            "service.complete",
            lane="service",
            tenant=ticket.tenant,
            job=ticket.name,
            dispatches=ticket.dispatches,
            resumed=ticket.resumed,
        )
        integrity = getattr(outcome.result, "integrity", None)
        if integrity is not None:
            # surface the job's data-at-rest ledger in the service
            # metrics, so fleet dashboards see rot/repair rates without
            # opening per-job journals
            inc("service.ecc.flips", integrity.flips_injected)
            inc("service.ecc.corrected", integrity.words_corrected)
            inc("service.ecc.uncorrectable", integrity.words_uncorrectable)
            event(
                "service.integrity",
                lane="service",
                tenant=ticket.tenant,
                job=ticket.name,
                windows=integrity.windows,
                flips=integrity.flips_injected,
                corrected=integrity.words_corrected,
                uncorrectable=integrity.words_uncorrectable,
            )

    def _finish_failure(
        self, ticket: JobTicket, failure_kind: str, error: BaseException
    ) -> None:
        ticket.state = FAILED
        ticket.failure_kind = failure_kind
        ticket.error = f"{type(error).__name__}: {error}"
        ticket.error_type = type(error).__name__
        ticket.finished_round = self._round
        ticket.end_ts = self._clock()
        tripped = self._breakers[ticket.tenant].on_failure(self._round)
        if tripped:
            inc("service.breaker.trips")
            event(
                "service.breaker_trip",
                lane="service",
                tenant=ticket.tenant,
                job=ticket.name,
            )
            self._audit(
                {
                    "kind": "breaker-trip",
                    "tenant": ticket.tenant,
                    "job": ticket.name,
                }
            )
            self._dump_flight(
                ticket, f"breaker-trip after {failure_kind}: {ticket.error}"
            )
        else:
            self._dump_flight(ticket, f"{failure_kind}: {ticket.error}")
        inc(f"service.failed.{failure_kind}")
        inc("service.failed.total")
        latency_ms = (ticket.end_ts - ticket.submit_ts) * 1e3
        self.slo.observe(
            ticket.tenant, latency_ms, ok=False, registry=active_registry()
        )
        observe(
            f"service.latency_ms.{ticket.tenant}",
            latency_ms,
        )
        self._audit(
            {
                "kind": "job-failed",
                "tenant": ticket.tenant,
                "job": ticket.name,
                "failure_kind": failure_kind,
                "latency_ms": latency_ms,
                "error": ticket.error,
            }
        )
        event(
            "service.fail",
            lane="service",
            tenant=ticket.tenant,
            job=ticket.name,
            kind=failure_kind,
            error=ticket.error,
        )

    # ----- metrics ----------------------------------------------------------

    def _publish_depth(self, tenant: str) -> None:
        set_gauge(
            f"service.queue_depth.{tenant}", len(self._queues[tenant])
        )
        set_gauge("service.queue_depth.total", self._total_queued())
        set_gauge("service.inflight.total", len(self._running))
