"""Chaos harness: prove the service degrades, never corrupts.

The harness builds a seeded multi-tenant workload, injects a seeded
mixture of faults — simulated ``SIGKILL`` mid-stage, impossible stage
budgets, exhausted whole-job deadlines, corrupt input payloads, and
in-memory fault storms — drives the whole batch through one
:class:`~repro.service.service.AssemblyService`, and then *audits* the
outcome against the service's hard promises:

1. **no job is lost or duplicated** — every planned submission ends in
   exactly one terminal accounting entry (completed ticket, failed
   ticket, typed shed, or typed submit error), and every completed
   job's journal holds exactly one ``result`` record;
2. **survivors are bit-identical** — a job that completed (including
   after kill-resume or capacity degradation) produced exactly the
   contigs of an undisturbed serial baseline run;
3. **fairness holds under fire** — the round-robin bound (no eligible
   tenant waits more than ``T`` grants) is checked against the actual
   grant log;
4. **overload is typed** — every non-completion is a
   :class:`~repro.errors.ReproError` subclass with a stable reason or
   failure kind, never a hang, a bare crash, or a silent drop.

Everything is derived from one seed, so a chaos run is replayable —
the same storms, the same kill ticks, the same verdict.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.faults import FaultModel
from repro.errors import InputError, ReproError
from repro.genome import ReadSimulator, synthetic_chromosome
from repro.runtime.checkpoint import JobJournal
from repro.runtime.jobs import JobConfig, JobRunner
from repro.runtime.watchdog import Watchdog
from repro.service.admission import TenantQuota
from repro.service.service import (
    COMPLETED,
    AssemblyService,
    ServiceConfig,
    ServiceReport,
)

__all__ = [
    "ChaosConfig",
    "ChaosKill",
    "ChaosReport",
    "PlannedJob",
    "run_chaos",
]

#: injection kinds the harness draws from (weights in ChaosConfig);
#: "bitrot" ships with weight 0 so existing seeded scenarios replay
#: unchanged — opt in by weighting it (see examples/service_chaos_smoke)
INJECTIONS = (
    "none",
    "kill",
    "timeout",
    "deadline",
    "corrupt",
    "storm",
    "bitrot",
)


class ChaosKill(BaseException):
    """Stand-in for SIGKILL: not an ``Exception``, nothing may catch it
    short of the service's crash-containment boundary."""


@dataclass(frozen=True)
class ChaosConfig:
    """One reproducible chaos scenario.

    Attributes:
        seed: master seed — workloads, kill ticks and the injection
            mixture all derive from it.
        tenants / jobs_per_tenant: workload shape; with
            ``max_queued < jobs_per_tenant`` the tail submissions are
            deliberately shed (typed overload is part of the scenario).
        workers: service worker-pool size.
        weights: relative draw weights per injection kind, keyed by
            :data:`INJECTIONS` entries.
    """

    seed: int = 2020
    tenants: int = 3
    jobs_per_tenant: int = 4
    workers: int = 2
    k: int = 11
    genome_bp: int = 300
    read_length: int = 40
    coverage: int = 6
    engine: str = "bulk"
    max_queued: int = 3
    max_dispatches: int = 3
    degrade_engine_depth: "int | None" = 4
    weights: "dict[str, int]" = field(
        default_factory=lambda: {
            "none": 3,
            "kill": 3,
            "timeout": 2,
            "deadline": 1,
            "corrupt": 1,
            "storm": 2,
            "bitrot": 0,
        }
    )

    def tenant_names(self) -> list:
        return [f"tenant-{chr(ord('a') + i)}" for i in range(self.tenants)]


@dataclass
class PlannedJob:
    """One submission the harness intends to make."""

    tenant: str
    name: str
    injection: str
    reads: list
    kill_tick: int = 0

    @property
    def key(self) -> str:
        return f"{self.tenant}/{self.name}"


class ChaosReport:
    """The audited outcome of one chaos run."""

    def __init__(
        self,
        config: ChaosConfig,
        planned: list,
        service_report: ServiceReport,
        submit_errors: list,
        baselines: dict,
        root: Path,
        session=None,
        alert_events: "list | None" = None,
    ) -> None:
        self.config = config
        self.planned: list[PlannedJob] = planned
        self.service_report = service_report
        #: typed submission-time failures: (key, error type name, text)
        self.submit_errors: list[tuple] = submit_errors
        #: job key -> baseline contigs [(name, sequence), ...]
        self.baselines: dict[str, list] = baselines
        self.root = root
        #: the observability session active during the service half
        #: (``None`` when the run was untraced)
        self.session = session
        #: alert firings collected by the service's evaluator
        self.alert_events: list = list(alert_events or [])

    # ----- the audit --------------------------------------------------------

    def violations(self) -> list:
        """Every broken promise found, as human-readable strings.

        An empty list is the chaos harness's pass verdict.
        """
        problems: list[str] = []
        report = self.service_report
        tickets = {f"{t.tenant}/{t.name}": t for t in report.tickets}
        shed = {f"{s.tenant}/{s.name}" for s in report.shed}
        erred = {key for key, _, _ in self.submit_errors}

        # 1. exact accounting: each planned job has exactly one fate
        for job in self.planned:
            fates = (
                (job.key in tickets)
                + (job.key in shed)
                + (job.key in erred)
            )
            if fates != 1:
                problems.append(
                    f"{job.key}: {fates} accounting entries (want exactly 1)"
                )
        if len(tickets) + len(shed) + len(erred) != len(self.planned):
            problems.append(
                "accounting totals do not add up: "
                f"{len(tickets)} tickets + {len(shed)} shed + "
                f"{len(erred)} submit errors != {len(self.planned)} planned"
            )

        # 2. every admitted job reached a terminal state (no hangs/drops)
        for key, ticket in tickets.items():
            if not ticket.terminal:
                problems.append(f"{key}: non-terminal state {ticket.state!r}")

        # 3. survivors bit-identical to the undisturbed baseline, with
        #    exactly one result record in the journal (no duplication)
        for key, ticket in tickets.items():
            if ticket.state != COMPLETED:
                continue
            contigs = [
                (c.name, str(c.sequence))
                for c in ticket.outcome.result.contigs
            ]
            baseline = self.baselines.get(key)
            if baseline is not None and contigs != baseline:
                problems.append(f"{key}: contigs diverged from baseline")
            results = [
                r
                for r in JobJournal(ticket.job_dir).records()
                if r.stage == "result"
            ]
            if len(results) != 1:
                problems.append(
                    f"{key}: {len(results)} result records (want exactly 1)"
                )

        # 4. fairness bound against the actual grant log
        for tenant, streak in report.fairness_violations():
            problems.append(
                f"fairness: {tenant} waited {streak} grants "
                f"(bound {report.fairness_bound})"
            )

        # 5. every non-completion is typed
        for key, ticket in tickets.items():
            if ticket.state == COMPLETED:
                continue
            if ticket.error_type is None or ticket.failure_kind is None:
                problems.append(f"{key}: untyped failure")
        for record in report.shed:
            if not record.reason:
                problems.append(
                    f"{record.tenant}/{record.name}: shed without a reason"
                )
        for key, type_name, _ in self.submit_errors:
            if type_name != "InputError":
                problems.append(
                    f"{key}: submit error {type_name} (want InputError)"
                )

        # 6. injections landed where they must
        by_key = {job.key: job for job in self.planned}
        for key, ticket in tickets.items():
            injection = by_key[key].injection
            if injection == "kill" and ticket.state == COMPLETED:
                if not ticket.resumed:
                    problems.append(f"{key}: survived a kill without resuming")
            if injection == "deadline" and ticket.state == COMPLETED:
                problems.append(f"{key}: completed past an expired deadline")
            if (
                injection == "deadline"
                and ticket.state != COMPLETED
                and ticket.failure_kind != "deadline-exceeded"
            ):
                problems.append(
                    f"{key}: deadline injection ended as "
                    f"{ticket.failure_kind!r}"
                )
            if injection == "bitrot" and ticket.state == COMPLETED:
                integrity = getattr(
                    ticket.outcome.result, "integrity", None
                )
                if integrity is None or integrity.windows == 0:
                    problems.append(
                        f"{key}: completed without the retention model "
                        "engaged (no refresh windows elapsed)"
                    )
                elif integrity.words_uncorrectable:
                    problems.append(
                        f"{key}: {integrity.words_uncorrectable} "
                        "uncorrectable word(s) slipped past SECDED"
                    )

        # 7. with observability on: every kill/timeout that actually
        #    disturbed a dispatched job left a flight-recorder dump
        if self.session is not None and self.session.flight is not None:
            for key, ticket in tickets.items():
                if by_key[key].injection not in ("kill", "timeout"):
                    continue
                if ticket.dispatches == 0:
                    continue
                if not (Path(ticket.job_dir) / "flight.json").is_file():
                    problems.append(
                        f"{key}: {by_key[key].injection} injection left "
                        "no flight-recorder dump"
                    )
        return problems

    def summary(self) -> dict:
        data = self.service_report.summary()
        data["submit_errors"] = len(self.submit_errors)
        data["planned"] = len(self.planned)
        data["violations"] = len(self.violations())
        data["injections"] = {
            kind: sum(1 for j in self.planned if j.injection == kind)
            for kind in INJECTIONS
        }
        return data

    def __str__(self) -> str:
        verdict = "PASS" if not self.violations() else "FAIL"
        mix = ", ".join(
            f"{kind}={count}"
            for kind, count in self.summary()["injections"].items()
            if count
        )
        return (
            f"chaos [{verdict}]: {self.service_report} | "
            f"{len(self.submit_errors)} typed submit error(s) | mix: {mix}"
        )


# ----- scenario construction -------------------------------------------------


def build_workload(config: ChaosConfig) -> list:
    """The full seeded submission plan (public so tests can reuse it)."""
    rng = random.Random(config.seed)
    kinds = [k for k in INJECTIONS if config.weights.get(k, 0) > 0]
    weights = [config.weights[k] for k in kinds]
    planned: list[PlannedJob] = []
    for tenant in config.tenant_names():
        for index in range(config.jobs_per_tenant):
            reference = synthetic_chromosome(
                config.genome_bp, seed=rng.randrange(1, 10_000)
            )
            simulator = ReadSimulator(
                read_length=config.read_length,
                seed=rng.randrange(1, 10_000),
            )
            reads = simulator.sample(
                reference,
                simulator.reads_for_coverage(
                    len(reference), config.coverage
                ),
            )
            planned.append(
                PlannedJob(
                    tenant=tenant,
                    name=f"job-{index:02d}",
                    injection=rng.choices(kinds, weights=weights, k=1)[0],
                    reads=list(reads),
                    kill_tick=rng.randrange(20, 400),
                )
            )
    return planned


def _kill_watchdog(kill_tick: int) -> Watchdog:
    """A watchdog whose poll hook dies at a seeded tick — the in-process
    twin of ``kill -9`` at a random instruction boundary."""

    def bomb(tick: int) -> None:
        if tick >= kill_tick:
            raise ChaosKill(f"chaos kill at tick {tick}")

    return Watchdog(on_tick=bomb)


def _storm_pim_factory(seed: int) -> Callable:
    """Platform factory with an aggressive in-memory fault stream."""
    from repro.assembly.pipeline import _sized_device

    def make(reads):
        pim = _sized_device(reads, 11)
        pim.controller.faults = FaultModel(
            seed=seed, compute2_rate=2e-4, tra_rate=1e-4
        )
        return pim

    return make


def _bitrot_pim_factory(seed: int) -> Callable:
    """Platform factory with accelerated retention rot under SECDED.

    The upset probability is orders of magnitude beyond real DRAM so a
    short chaos job actually exercises the codec; SECDED + scrub must
    still make the job's contigs indistinguishable from an unrotted
    run (the rot stream is seeded, so the serial baseline sees the
    exact same upsets).
    """
    from repro.assembly.pipeline import _sized_device
    from repro.core.integrity import IntegrityConfig

    def make(reads):
        pim = _sized_device(reads, 11)
        pim.attach_integrity(
            IntegrityConfig(
                ecc="secded",
                retention_interval_s=1e-4,
                seed=seed,
                upset_probability=1e-6,
            )
        )
        return pim

    return make


def _corrupt_loader(key: str) -> Callable:
    def load():
        raise InputError(
            f"chaos: input payload for {key} failed to parse "
            "(simulated corrupt FASTQ)"
        )

    return load


# ----- the run ---------------------------------------------------------------


def run_chaos(
    root: "str | Path",
    config: "ChaosConfig | None" = None,
    sleep: "Callable[[float], None] | None" = None,
    session=None,
    slos: "list | None" = None,
    alert_rules: "list | None" = None,
    telemetry_path: "str | Path | None" = None,
) -> ChaosReport:
    """Build, disturb, drain and audit one chaos scenario.

    Args:
        root: scratch directory (baselines under ``<root>/baseline``,
            service journals under ``<root>/service``).
        config: scenario knobs (seeded defaults when omitted).
        sleep: injectable backoff sleeper (tests pass a no-op so the
            retry ladder replays without wall-clock delays).
        session: optional
            :class:`~repro.observability.ObservabilitySession`
            activated around the *service* half only — the serial
            baselines stay untraced, so per-tenant power attribution
            covers exactly what the service dispatched.
        slos / alert_rules / telemetry_path: forwarded to
            :class:`~repro.service.service.AssemblyService`.
    """
    config = config or ChaosConfig()
    root = Path(root)
    planned = build_workload(config)
    sleeper = sleep if sleep is not None else (lambda _s: None)

    job_config = JobConfig(k=config.k, engine=config.engine)
    storm_policy = "detect-retry-remap"

    # undisturbed serial baselines for every job that could complete
    baselines: dict[str, list] = {}
    for job in planned:
        if job.injection in ("corrupt", "deadline"):
            continue
        base_config = job_config
        factory = None
        if job.injection == "storm":
            factory = _storm_pim_factory(config.seed)
            base_config = JobConfig(
                k=config.k, engine=config.engine, resilience=storm_policy
            )
        elif job.injection == "bitrot":
            factory = _bitrot_pim_factory(config.seed)
            base_config = JobConfig(
                k=config.k,
                engine=config.engine,
                ecc="secded",
                retention_interval_s=1e-4,
            )
        runner = JobRunner(
            root / "baseline" / job.tenant / job.name,
            base_config,
            pim_factory=factory,
            sleep=sleeper,
        )
        outcome = runner.run(job.reads)
        baselines[job.key] = [
            (c.name, str(c.sequence)) for c in outcome.result.contigs
        ]

    service = AssemblyService(
        root / "service",
        ServiceConfig(
            workers=config.workers,
            default_quota=TenantQuota(max_queued=config.max_queued),
            max_dispatches=config.max_dispatches,
            degrade_engine_depth=config.degrade_engine_depth,
            seed=config.seed,
        ),
        sleep=sleeper,
        slos=slos,
        alert_rules=alert_rules,
        telemetry_path=telemetry_path,
    )

    activation = session.activate() if session is not None else nullcontext()
    with activation:
        service_report, submit_errors = _submit_and_drain(
            service, planned, config
        )
    return ChaosReport(
        config=config,
        planned=planned,
        service_report=service_report,
        submit_errors=submit_errors,
        baselines=baselines,
        root=root,
        session=session,
        alert_events=service.alert_events,
    )


def _submit_and_drain(
    service: AssemblyService, planned: list, config: ChaosConfig
) -> tuple:
    """Submit the whole plan and drain it (the disturbed half of the run)."""
    job_config = JobConfig(k=config.k, engine=config.engine)
    storm_policy = "detect-retry-remap"
    submit_errors: list[tuple] = []
    for job in planned:
        submit_config = job_config
        factory = None
        watchdog_factory = None
        deadline_s = None
        reads: "list | Callable" = job.reads
        if job.injection == "kill":
            tick = job.kill_tick

            def make_watchdog(dispatch: int, _tick: int = tick):
                # first dispatch dies mid-stage; resumes run undisturbed
                return _kill_watchdog(_tick) if dispatch == 0 else None

            watchdog_factory = make_watchdog
        elif job.injection == "timeout":

            def timeout_watchdog(dispatch: int):
                if dispatch == 0:
                    return Watchdog(stage_budget_s=1e-9, stride=1)
                return None

            watchdog_factory = timeout_watchdog
        elif job.injection == "deadline":
            deadline_s = 1e-9
        elif job.injection == "corrupt":
            reads = _corrupt_loader(job.key)
        elif job.injection == "storm":
            factory = _storm_pim_factory(config.seed)
            submit_config = JobConfig(
                k=config.k, engine=config.engine, resilience=storm_policy
            )
        elif job.injection == "bitrot":
            factory = _bitrot_pim_factory(config.seed)
            submit_config = JobConfig(
                k=config.k,
                engine=config.engine,
                ecc="secded",
                retention_interval_s=1e-4,
            )
        try:
            service.submit(
                job.tenant,
                job.name,
                reads,
                submit_config,
                deadline_s=deadline_s,
                pim_factory=factory,
                watchdog_factory=watchdog_factory,
            )
        except InputError as exc:
            submit_errors.append((job.key, type(exc).__name__, str(exc)))
        except ReproError:
            # admission sheds are recorded inside the service report
            pass

    return service.drain(), submit_errors
