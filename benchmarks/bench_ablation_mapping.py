"""Ablation A1 — the correlated data partitioning (Fig. 6).

DESIGN.md calls out the correlated partitioning as the mechanism that
keeps queries local (one row move per query, mostly overlapped).  This
ablation runs P-A *without* it — queries shuttle between sub-arrays
like on the baselines (Ambit-class movement CAL) — and quantifies what
the mapping buys: lower MBR and a faster hashmap stage.
"""

from conftest import emit

from repro.eval.execution import ExecutionModel, IN_DRAM_TRANSFER_CAL
from repro.eval.workloads import chr14_workload
from repro.platforms import pim_assembler


def run_ablation(k: int = 16):
    platform = pim_assembler()
    with_mapping = ExecutionModel(chr14_workload(k)).run(platform)
    ablated_cal = dict(IN_DRAM_TRANSFER_CAL)
    ablated_cal["P-A"] = dict(IN_DRAM_TRANSFER_CAL["Ambit"])
    without_mapping = ExecutionModel(
        chr14_workload(k), transfer_cal=ablated_cal
    ).run(platform)
    return with_mapping, without_mapping


def test_ablation_correlated_mapping(benchmark):
    with_mapping, without_mapping = benchmark(run_ablation)

    emit(
        "Ablation — correlated partitioning (k=16)",
        "\n".join(
            [
                f"  with mapping   : total {with_mapping.total_time_s:6.1f}s"
                f"  MBR {with_mapping.memory_bottleneck_ratio:5.1%}",
                f"  without mapping: total {without_mapping.total_time_s:6.1f}s"
                f"  MBR {without_mapping.memory_bottleneck_ratio:5.1%}",
                f"  slowdown       : "
                f"{without_mapping.total_time_s / with_mapping.total_time_s:.2f}x",
            ]
        ),
    )

    # removing the mapping must visibly raise data movement and time
    assert (
        without_mapping.memory_bottleneck_ratio
        > 2.0 * with_mapping.memory_bottleneck_ratio
    )
    assert without_mapping.total_time_s > 1.15 * with_mapping.total_time_s
