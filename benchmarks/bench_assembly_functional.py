"""E12 — functional validation: PIM assembly on a scaled chr14 surrogate.

Not a paper figure: end-to-end evidence that the *functional* simulator
(real sub-array state, real AAP commands) assembles correctly and that
its stage breakdown mirrors the paper's qualitative claim — k-mer
analysis and contig generation take the bulk of the time, with hashmap
the largest share.
"""

from conftest import emit

from repro.assembly import assemble, assemble_with_pim, evaluate_assembly
from repro.core import PimAssembler
from repro.genome import ReadSimulator, chr14_surrogate


def run_functional():
    reference = chr14_surrogate(scale=2e-5)  # ~1.8 kbp
    sim = ReadSimulator(read_length=80, seed=14)
    reads = sim.sample(reference, sim.reads_for_coverage(len(reference), 25))
    pim = PimAssembler.small(subarrays=16, rows=512, cols=64)
    result = assemble_with_pim(reads, k=21, pim=pim)
    return reference, reads, result


def test_functional_assembly(benchmark):
    reference, reads, result = benchmark.pedantic(
        run_functional, rounds=1, iterations=1
    )
    report = evaluate_assembly(result.contigs, reference)

    total = result.total_time_ns
    emit(
        "Functional chr14-surrogate assembly (simulated PIM time)",
        "\n".join(
            [
                f"  reference        : {len(reference)} bp",
                f"  reads            : {len(reads)} x 80 bp",
                f"  assembly         : {report}",
                f"  hashmap          : {result.hashmap.time_ns / 1e6:9.2f} ms"
                f"  ({result.hashmap.time_ns / total:.0%})",
                f"  debruijn         : {result.debruijn.time_ns / 1e6:9.2f} ms",
                f"  traverse         : {result.traverse.time_ns / 1e6:9.2f} ms",
                f"  energy           : {result.total_energy_nj / 1e6:9.3f} mJ",
            ]
        ),
    )

    # correctness
    assert report.genome_fraction > 0.95
    assert report.misassemblies == 0
    software = assemble(reads, k=21)
    assert sorted(str(c.sequence) for c in result.contigs) == sorted(
        str(c.sequence) for c in software.contigs
    )
    # the paper's stage-share claim: k-mer analysis dominates
    assert result.hashmap.time_ns > 0.5 * total
