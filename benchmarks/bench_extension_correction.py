"""Extension study — offloading spectral error correction to PIM.

Not a paper figure: spectral read correction (X8) is, per k-mer, the
same compare-heavy workload as the hashmap stage, so PIM-Assembler
should accelerate it by a similar factor.  This bench (a) measures the
correction workload's k-mer-lookup count on real noisy reads, then (b)
prices those lookups on the GPU model vs the P-A model using the same
primitives as Fig. 9 — a what-if the paper's platform makes natural.
"""

from conftest import emit

from repro.assembly.correction import correct_reads
from repro.eval.execution import ExecutionModel, MappingConfig
from repro.eval.workloads import chr14_workload
from repro.genome import ReadSimulator, synthetic_chromosome
from repro.platforms import gpu, pim_assembler


def run_study():
    # (a) measure the per-read lookup factor on real noisy reads
    reference = synthetic_chromosome(2000, seed=990)
    sim = ReadSimulator(read_length=80, seed=991, error_rate=0.005)
    reads = sim.sample(reference, sim.reads_for_coverage(2000, 30))
    result = correct_reads(reads, k=15, solid_threshold=3)
    kmer_positions = sum(r.sequence.kmer_count(15) for r in reads)
    lookup_factor = result.kmer_lookups / kmer_positions

    # (b) price the chr14-scale correction pass on both platforms
    workload = chr14_workload(16)
    lookups = workload.total_kmers * lookup_factor
    model = ExecutionModel(workload, MappingConfig())

    pa_seconds = model.lookup_seconds(pim_assembler(), lookups)
    gpu_seconds = model.lookup_seconds(gpu(), lookups)

    return lookup_factor, result, pa_seconds, gpu_seconds


def test_extension_correction_offload(benchmark):
    lookup_factor, result, pa_seconds, gpu_seconds = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )

    emit(
        "Extension — PIM-offloaded spectral correction (chr14 scale)",
        "\n".join(
            [
                f"  lookups per k-mer position : {lookup_factor:5.2f}",
                f"  bases repaired (sample)    : {result.corrected_bases}",
                f"  GPU correction pass        : {gpu_seconds:7.1f} s",
                f"  P-A correction pass        : {pa_seconds:7.1f} s",
                f"  speed-up                   : "
                f"{gpu_seconds / pa_seconds:5.2f}x",
            ]
        ),
    )

    assert lookup_factor >= 1.0  # at least one lookup per position
    assert result.corrected_bases > 0
    # the compare-heavy pass accelerates in the same class as the
    # hashmap stage (~4-8x)
    assert 3.0 < gpu_seconds / pa_seconds < 12.0
