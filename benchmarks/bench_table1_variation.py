"""E3 — Table I: process-variation Monte Carlo (10,000 trials/level).

Regenerates the TRA-vs-two-row error table and asserts the paper's
qualitative claims: clean at +/-5%, TRA failing first at +/-10%, and
two-row activation strictly more robust at every level.
"""

from conftest import emit

from repro.eval.reliability import format_table, run_reliability_table


def test_table1_process_variation(benchmark):
    table = benchmark.pedantic(
        run_reliability_table, kwargs={"trials": 10_000}, rounds=1, iterations=1
    )
    emit("Table I — process variation (error %)", format_table(table))

    assert table.all_orderings_hold
    assert table.row(5.0).tra_error_percent < 0.1
    assert table.row(5.0).two_row_error_percent < 0.1
    assert table.row(10.0).two_row_error_percent < 0.25
    assert table.row(10.0).tra_error_percent > table.row(10.0).two_row_error_percent
    assert table.row(30.0).tra_error_percent > 10.0
