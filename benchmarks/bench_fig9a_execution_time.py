"""E5/E11 — Fig. 9a: chr14 execution-time breakdown.

Regenerates the per-stage (hashmap / deBruijn / traverse) times for
GPU, P-A, Ambit, D3 and D1 at k in {16, 22, 26, 32} and asserts the
paper's claims:

* hashmap dominates the GPU run (>60%);
* P-A's hashmap speed-up over GPU grows from ~5.2x (k=16) to ~9.8x
  (k=32);
* the PIM baselines are ~2.5-2.9x slower than P-A on average;
* deBruijn+traverse (PIM_Add / MEM_insert heavy) is ~4x faster on P-A
  than GPU.
"""

import pytest
from conftest import emit

from repro.eval.execution import ExecutionModel
from repro.eval.tables import format_execution, format_speedups
from repro.eval.workloads import chr14_workload
from repro.platforms import assembly_platforms


def run_fig9a():
    results = {}
    platforms = assembly_platforms()
    for k in (16, 22, 26, 32):
        model = ExecutionModel(chr14_workload(k))
        results[k] = {p.name: model.run(p) for p in platforms}
    return results


def test_fig9a_execution_time(benchmark, chr14_results):
    results = benchmark.pedantic(run_fig9a, rounds=1, iterations=1)

    body = []
    for k, res in results.items():
        ordered = [res[n] for n in ("GPU", "P-A", "Ambit", "D3", "D1")]
        body.append(format_execution(ordered))
        body.append("      " + format_speedups(ordered))
    emit("Fig. 9a — execution time breakdown (s)", "\n".join(body))

    # hashmap speed-up trend
    hm = {
        k: res["GPU"].stage("hashmap").time_s / res["P-A"].stage("hashmap").time_s
        for k, res in results.items()
    }
    assert hm[16] == pytest.approx(5.2, rel=0.1)
    assert hm[32] == pytest.approx(9.8, rel=0.1)
    assert hm[16] < hm[22] < hm[26] < hm[32]

    # GPU stage shares
    for k, res in results.items():
        gpu = res["GPU"]
        assert gpu.stage("hashmap").time_s / gpu.total_time_s > 0.6

    # PIM baselines ~2.5-2.9x slower on average
    for name, target in (("Ambit", 2.9), ("D3", 2.5), ("D1", 2.8)):
        avg = sum(
            res[name].total_time_s / res["P-A"].total_time_s
            for res in results.values()
        ) / len(results)
        assert avg == pytest.approx(target, rel=0.25), name

    # graph stages: ~4.2x faster on P-A (averaged across k)
    dbtv = [
        (res["GPU"].stage("debruijn").time_s + res["GPU"].stage("traverse").time_s)
        / (res["P-A"].stage("debruijn").time_s + res["P-A"].stage("traverse").time_s)
        for res in results.values()
    ]
    assert sum(dbtv) / len(dbtv) == pytest.approx(4.2, rel=0.4)
