"""Ablation A3 — reliability, end to end (Table I -> application).

Derives per-bit fault rates from the Table I Monte-Carlo model and
injects them into the *functional* simulator's k-mer counting: at
+/-10% process variation the two-row mechanism's error rate leaves the
hash table bit-exact, while an equally-stressed TRA-based comparison
mechanism corrupts it — the application-level payoff of the paper's
two-row activation.
"""

from conftest import emit

from repro.assembly import PimKmerCounter, SoftwareKmerCounter
from repro.core import PimAssembler
from repro.core.faults import FaultModel
from repro.genome import synthetic_chromosome


def run_study(variation_percent: float = 10.0):
    reference = synthetic_chromosome(400, seed=700)
    derived = FaultModel.from_variation(variation_percent, seed=701)
    golden = SoftwareKmerCounter(6)
    golden.add_sequence(reference)

    outcomes = {}
    for label, rate in (
        ("two-row", derived.compute2_rate),
        ("tra-based", derived.tra_rate),
    ):
        pim = PimAssembler.small(subarrays=4, rows=512, cols=64)
        pim.controller.faults = FaultModel(compute2_rate=rate, seed=702)
        counter = PimKmerCounter(pim, 6)
        counter.add_sequence(reference)
        table = counter.counts()
        mismatched = sum(
            1
            for key in set(golden.counts()) | set(table)
            if golden.counts().get(key) != table.get(key)
        )
        outcomes[label] = (rate, mismatched)
    return outcomes


def test_ablation_reliability_bridge(benchmark):
    outcomes = benchmark.pedantic(run_study, rounds=1, iterations=1)

    emit(
        "Ablation — Table I rates injected into the functional hashmap "
        "(+/-10% variation)",
        "\n".join(
            f"  {label:>10}: per-bit rate {rate:8.5f} -> "
            f"{mismatched} corrupted table entries"
            for label, (rate, mismatched) in outcomes.items()
        ),
    )

    two_row_rate, two_row_bad = outcomes["two-row"]
    tra_rate, tra_bad = outcomes["tra-based"]
    assert tra_rate > two_row_rate
    assert two_row_bad == 0, "two-row rate must keep the table bit-exact"
    assert tra_bad > 0, "TRA-class rate must corrupt the table"
