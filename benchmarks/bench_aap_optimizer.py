"""Verified AAP trace-optimizer benchmark.

Records one seeded assembly per execution engine, runs the
translation-validated optimizer (:mod:`repro.analysis.optimizer`) over
each document and records:

* charged-command and energy reduction on the scalar stream (the bulk
  document is partial and degrades to identity — recorded as such);
* the equivalence judgement (every rewrite must be proven) and a full
  re-verification of the optimised stream (must be finding-free);
* a gang-aware replay of the optimised scalar stream against a fresh
  device, asserted bit-identical to the original run's final row state;
* coalesced-makespan improvement from the gang slots;
* wall-clock cost of the optimise + prove pipeline.

``--check`` turns the floors into a CI gate: the scalar stream must
lose at least 15 % of its commands and 10 % of its energy, the judge
must accept, re-verification must be clean and the replay identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_aap_optimizer.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ENGINES = ("scalar", "bulk")

#: CI floors (fractions) for the scalar stream under ``--check``
COMMAND_REDUCTION_FLOOR = 0.15
ENERGY_REDUCTION_FLOOR = 0.10


def _record(engine: str, length: int):
    from repro.analysis.tracefile import TraceRecorder
    from repro.assembly.pipeline import _sized_device, assemble_with_pim
    from repro.genome import ReadSimulator, synthetic_chromosome

    reference = synthetic_chromosome(length, seed=7)
    simulator = ReadSimulator(read_length=40, seed=1)
    reads = simulator.sample(
        reference, simulator.reads_for_coverage(len(reference), 6)
    )
    pim = _sized_device(reads, 11)
    recorder = TraceRecorder(pim, engine=engine)
    with recorder:
        assemble_with_pim(reads, k=11, pim=pim, engine=engine)
    return recorder.document(workload="bench-aap-optimizer"), reads, pim


def _bench_engine(engine: str, length: int) -> dict:
    from repro.analysis.optimizer import optimize_document
    from repro.analysis.verifier import _doc_timing, verify_document
    from repro.assembly.pipeline import _sized_device
    from repro.core.scheduler import charge_stream, replay_optimized

    doc, reads, pim = _record(engine, length)
    start = time.perf_counter()
    result = optimize_document(doc, source=f"<bench:{engine}>")
    wall_s = time.perf_counter() - start

    record: dict = {
        "engine": engine,
        "commands_recorded": len(doc.trace),
        "identity": result.identity,
        "equivalence_ok": result.ok,
        "wall_s": wall_s,
        "savings": result.savings,
        "optimizer_rules": sorted(result.report.rules()),
    }
    if result.identity:
        # partial bulk stream: identity by design, nothing to re-verify
        record["reverify_findings"] = 0
        record["replay_identical"] = None
        return record

    reverify = verify_document(result.document, source=f"<bench:{engine}>")
    record["reverify_findings"] = len(reverify)

    fresh = _sized_device(reads, 11)
    replay = replay_optimized(result.document, fresh.controller)
    keys = list(pim.device.subarray_keys())
    identical = all(
        (
            pim.device.subarray_at(key).snapshot()
            == fresh.device.subarray_at(key).snapshot()
        ).all()
        for key in keys
    )
    record["replay_identical"] = identical
    record["gang_slots"] = replay.gang_slots
    record["ganged_commands"] = replay.ganged_commands

    timing = _doc_timing(doc)
    before = charge_stream(doc.trace, timing=timing)
    after = charge_stream(result.document.trace, timing=timing)
    record["makespan_ns"] = {
        "before": before.makespan_ns,
        "after": after.makespan_ns,
    }
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the scalar reductions clear the CI floors",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_aapopt.json"
        ),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    length = 300 if args.quick else 600
    records = [_bench_engine(engine, length) for engine in ENGINES]

    for rec in records:
        if rec["identity"]:
            print(
                f"{rec['engine']:>8}: identity "
                f"({rec['commands_recorded']} commands, partial stream)"
            )
            continue
        cmd = rec["savings"]["commands"]
        energy = rec["savings"]["energy_nj"]
        print(
            f"{rec['engine']:>8}: {cmd['before']} -> {cmd['after']} commands "
            f"(-{cmd['reduction']:.1%}), energy -{energy['reduction']:.1%}, "
            f"{rec['gang_slots']} gang slots, "
            f"makespan {rec['makespan_ns']['before'] / 1e3:.1f} -> "
            f"{rec['makespan_ns']['after'] / 1e3:.1f} us, "
            f"wall {rec['wall_s'] * 1e3:.0f} ms, "
            f"replay identical: {rec['replay_identical']}"
        )

    results = {
        "benchmark": "aap_optimizer",
        "mode": "quick" if args.quick else "full",
        "params": {"length": length, "engines": list(ENGINES)},
        "floors": {
            "command_reduction": COMMAND_REDUCTION_FLOOR,
            "energy_reduction": ENERGY_REDUCTION_FLOOR,
        },
        "engines": records,
    }
    out = Path(args.output)
    out.write_text(json.dumps(results, indent=2) + "\n", encoding="ascii")
    print(f"wrote {out}")

    if args.check:
        failures = []
        for rec in records:
            if not rec["equivalence_ok"]:
                failures.append(f"{rec['engine']}: equivalence rejected")
            if rec["reverify_findings"]:
                failures.append(
                    f"{rec['engine']}: {rec['reverify_findings']} "
                    "re-verification finding(s)"
                )
            if rec["identity"]:
                continue
            if rec["replay_identical"] is not True:
                failures.append(f"{rec['engine']}: replay diverged")
            cmd = rec["savings"]["commands"]["reduction"]
            energy = rec["savings"]["energy_nj"]["reduction"]
            if cmd < COMMAND_REDUCTION_FLOOR:
                failures.append(
                    f"{rec['engine']}: command reduction {cmd:.1%} below "
                    f"floor {COMMAND_REDUCTION_FLOOR:.0%}"
                )
            if energy < ENERGY_REDUCTION_FLOOR:
                failures.append(
                    f"{rec['engine']}: energy reduction {energy:.1%} below "
                    f"floor {ENERGY_REDUCTION_FLOOR:.0%}"
                )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        scalar = next(r for r in records if r["engine"] == "scalar")
        cmd = scalar["savings"]["commands"]["reduction"]
        print(
            f"OK: scalar stream verified-equivalent with {cmd:.1%} fewer "
            "commands; optimised replay bit-identical"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
