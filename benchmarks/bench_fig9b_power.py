"""E6 — Fig. 9b: chr14 power consumption per platform and k.

Asserts the paper's power claims: P-A averages ~38.4 W across the
three procedures, ~7.5x below the GPU and ~2.8x below the best PIM
baseline, and is the lowest-power platform at every k.
"""

import pytest
from conftest import emit


def test_fig9b_power(benchmark, chr14_results):
    def collect():
        return {
            k: {name: r.average_power_w for name, r in res.items()}
            for k, res in chr14_results.items()
        }

    powers = benchmark(collect)

    rows = [f"{'k':>4}" + "".join(f" {n:>8}" for n in ("GPU", "P-A", "Ambit", "D3", "D1"))]
    for k, per in powers.items():
        rows.append(
            f"{k:>4}"
            + "".join(f" {per[n]:7.1f}W" for n in ("GPU", "P-A", "Ambit", "D3", "D1"))
        )
    emit("Fig. 9b — power consumption (W)", "\n".join(rows))

    pa_avg = sum(per["P-A"] for per in powers.values()) / len(powers)
    gpu_avg = sum(per["GPU"] for per in powers.values()) / len(powers)
    assert pa_avg == pytest.approx(38.4, rel=0.05)
    assert gpu_avg / pa_avg == pytest.approx(7.5, rel=0.1)

    best_pim_avg = min(
        sum(per[name] for per in powers.values()) / len(powers)
        for name in ("Ambit", "D3", "D1")
    )
    assert best_pim_avg / pa_avg == pytest.approx(2.8, rel=0.1)

    for per in powers.values():
        assert per["P-A"] == min(per.values())
