"""Ablation A5 — technology scaling of the sensing mechanisms.

The paper's reliability section predicts: "By scaling down the
transistor size, the process variation effect is expected to get
worse."  This bench sweeps a technology-scale factor (shrinking the
storage capacitor faster than the wire-dominated bit line) at a fixed
±15% variation and shows TRA's error rate climbing while the two-row
activation — whose compute-node margin does not depend on the bit-line
divider — stays ahead at every node.
"""

from conftest import emit

from repro.dram.margins import scaling_study


def test_ablation_technology_scaling(benchmark):
    points = benchmark.pedantic(
        scaling_study, kwargs={"trials": 10_000}, rounds=1, iterations=1
    )

    rows = [
        f"  scale {p.scale:3.1f}: Cs={p.cell_capacitance_f * 1e15:4.1f} fF  "
        f"TRA margin {p.tra_margin * 1000:4.1f} mV err {p.tra_error_percent:5.2f}%  |  "
        f"2-row err {p.two_row_error_percent:5.2f}%"
        for p in points
    ]
    emit("Ablation — technology scaling (±15% variation)", "\n".join(rows))

    tra_errors = [p.tra_error_percent for p in points]
    assert tra_errors == sorted(tra_errors), "TRA must worsen with scaling"
    assert tra_errors[-1] > 1.5 * tra_errors[0]
    for p in points:
        assert p.two_row_error_percent < p.tra_error_percent
        assert p.two_row_margin > p.tra_margin


def test_extension_retention_residency(benchmark):
    """Extension — refresh relaxation vs a resident chr14 hash table.

    At the nominal 64 ms refresh the resident table is safe for the
    whole run; refresh-relaxation power optimisations push it toward
    certain corruption — resident PIM data wants ECC or scrubbing
    before any such scheme.
    """
    from repro.dram.retention import residency_study

    points = benchmark.pedantic(residency_study, rounds=1, iterations=1)
    rows = [
        f"  refresh {p.refresh_interval_s * 1000:6.0f} ms: "
        f"expected upsets {p.expected_upsets:8.4f}  "
        f"P(any) {p.table_upset_probability:6.4f}  "
        f"{'NEEDS ECC/scrub' if p.needs_protection else 'safe'}"
        for p in points
    ]
    emit("Extension — resident-table retention (chr14 run)", "\n".join(rows))

    assert not points[0].needs_protection  # nominal refresh is safe
    probs = [p.table_upset_probability for p in points]
    assert probs == sorted(probs)
    assert probs[-1] > 0.25
