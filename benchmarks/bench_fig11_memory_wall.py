"""E8/E9 — Fig. 11: memory-bottleneck and resource-utilisation ratios.

Asserts the paper's shapes: P-A spends <~16% of time on data transfer
(~9% at k=16) and achieves the highest RUR (~65% at k=16); the GPU's
MBR climbs to ~70% at k=32 with the lowest RUR; the PIM baselines give
>45% RUR at k=16.
"""

import pytest
from conftest import emit

from repro.eval.memory_wall import run_memory_wall_study
from repro.eval.tables import format_memory_wall


def test_fig11_memory_wall(benchmark):
    study = benchmark.pedantic(run_memory_wall_study, rounds=1, iterations=1)
    emit("Fig. 11 — MBR / RUR", format_memory_wall(study))

    # Fig. 11a annotations
    assert study.point("P-A", 16).mbr_percent == pytest.approx(9.0, abs=3.0)
    assert study.point("P-A", 32).mbr_percent == pytest.approx(16.0, abs=3.0)
    assert study.point("GPU", 32).mbr_percent == pytest.approx(70.0, abs=5.0)

    # Fig. 11b shapes
    assert study.point("P-A", 16).rur_percent == pytest.approx(65.0, abs=4.0)
    for name in ("P-A", "Ambit", "D3", "D1"):
        assert study.point(name, 16).rur_percent > 45.0
    for k in (16, 32):
        pa_mbr = study.point("P-A", k).mbr
        pa_rur = study.point("P-A", k).rur
        gpu_rur = study.point("GPU", k).rur
        for name in study.platforms():
            assert study.point(name, k).mbr >= pa_mbr
            assert gpu_rur <= study.point(name, k).rur <= pa_rur
