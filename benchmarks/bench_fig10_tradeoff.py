"""E7 — Fig. 10: power/delay trade-off vs parallelism degree.

Sweeps Pd over {1, 2, 4, 8} at k = 16 and k = 32 and asserts the
paper's shape: delay falls and power rises with Pd, and the optimum
(energy-delay product) sits at Pd ~= 2.
"""

from conftest import emit

from repro.eval.tables import format_tradeoff
from repro.eval.tradeoffs import run_tradeoff_sweep
from repro.mapping.parallelism import PAPER_PD_VALUES


def test_fig10_tradeoff(benchmark):
    sweep = benchmark.pedantic(run_tradeoff_sweep, rounds=1, iterations=1)
    emit("Fig. 10 — power/delay vs Pd", format_tradeoff(sweep))

    for k in (16, 32):
        series = sweep.series(k)
        delays = [p.delay_s for p in series]
        powers = [p.power_w for p in series]
        assert [p.pd for p in series] == list(PAPER_PD_VALUES)
        assert delays == sorted(delays, reverse=True)
        assert powers == sorted(powers)
        assert sweep.optimum_pd(k) == 2
