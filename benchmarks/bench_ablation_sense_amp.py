"""Ablation A2 — the single-cycle X(N)OR sense amplifier.

The reconfigurable SA is the paper's core circuit contribution: XNOR2
in 1 compute cycle instead of Ambit's 7-cycle sequence.  This ablation
swaps only the XNOR cycle count on an otherwise-identical platform and
measures the end-to-end assembly impact — isolating the SA's
contribution from the mapping and the addition path.
"""

from conftest import emit

from repro.eval.execution import ExecutionModel
from repro.eval.workloads import chr14_workload
from repro.platforms import InDramPlatform
from repro.platforms.params import (
    PIM_ASSEMBLER_CYCLES,
    PIM_ASSEMBLER_POWER,
    PimCycleCosts,
)


def variant(xnor_cycles: float) -> InDramPlatform:
    return InDramPlatform(
        name="P-A",  # keep the P-A transfer/mapping CALs
        cycles=PimCycleCosts(
            xnor_cycles=xnor_cycles,
            add_cycles_per_bit=PIM_ASSEMBLER_CYCLES.add_cycles_per_bit,
            add_stage_cycles_per_bit=PIM_ASSEMBLER_CYCLES.add_stage_cycles_per_bit,
        ),
        power=PIM_ASSEMBLER_POWER,
    )


def run_sweep():
    model = ExecutionModel(chr14_workload(16))
    return {
        cycles: model.run(variant(cycles)) for cycles in (3.0, 5.0, 7.0, 9.0)
    }


def test_ablation_xnor_cycles(benchmark):
    results = benchmark(run_sweep)

    rows = [
        f"  XNOR={cycles:>3.0f} cycles: total {r.total_time_s:6.1f}s"
        f"  (hashmap {r.stage('hashmap').time_s:5.1f}s)"
        for cycles, r in results.items()
    ]
    emit("Ablation — XNOR cycle count (k=16)", "\n".join(rows))

    times = [r.total_time_s for r in results.values()]
    assert times == sorted(times), "more cycles must cost more time"
    # the 7-cycle (Ambit-class) SA on P-A's own mapping is ~1.5-2.5x
    # slower: the SA contributes roughly that share of the speed-up,
    # the mapping the rest.
    slowdown = results[7.0].total_time_s / results[3.0].total_time_s
    assert 1.3 < slowdown < 2.5
