"""E10 — the abstract's headline claims, aggregated.

"PIM-Assembler achieves on average 8.4x and 2.3x higher throughput for
performing bulk bit-wise XNOR-based comparison operations compared with
CPU and recent processing-in-DRAM platforms ... it reduces the
execution time and power by ~5x and ~7.5x compared to GPU."
"""

import pytest
from conftest import emit

from repro.eval.throughput import headline_ratios


def test_headline_claims(benchmark, fig3b_sweep, chr14_results):
    def collect():
        ratios = headline_ratios(fig3b_sweep)
        exec_ratio = sum(
            res["GPU"].total_time_s / res["P-A"].total_time_s
            for res in chr14_results.values()
        ) / len(chr14_results)
        power_ratio = sum(
            res["GPU"].average_power_w / res["P-A"].average_power_w
            for res in chr14_results.values()
        ) / len(chr14_results)
        return ratios, exec_ratio, power_ratio

    ratios, exec_ratio, power_ratio = benchmark(collect)

    emit(
        "Headline claims (paper -> measured)",
        "\n".join(
            [
                f"  XNOR throughput vs CPU    :  8.4x -> {ratios['xnor_vs_cpu']:.2f}x",
                f"  XNOR throughput vs Ambit  :  2.3x -> {ratios['xnor_vs_ambit']:.2f}x",
                f"  XNOR throughput vs D1     :  1.9x -> {ratios['xnor_vs_d1']:.2f}x",
                f"  XNOR throughput vs D3     :  3.7x -> {ratios['xnor_vs_d3']:.2f}x",
                f"  chr14 execution vs GPU    :  ~5x  -> {exec_ratio:.2f}x",
                f"  chr14 power vs GPU        :  7.5x -> {power_ratio:.2f}x",
            ]
        ),
    )

    assert ratios["xnor_vs_cpu"] == pytest.approx(8.4, rel=0.02)
    assert ratios["xnor_vs_ambit"] == pytest.approx(2.33, rel=0.02)
    assert ratios["xnor_vs_d1"] == pytest.approx(1.9, rel=0.02)
    assert ratios["xnor_vs_d3"] == pytest.approx(3.7, rel=0.02)
    # "~5x" execution: our model lands mildly above (see EXPERIMENTS.md)
    assert 4.0 < exec_ratio < 8.0
    assert power_ratio == pytest.approx(7.5, rel=0.1)
