"""Power-timeline conservation and throughput benchmark.

Profiles one synthetic assembly per execution engine through
:func:`repro.eval.power_profile.run_power_profile` and records:

* the conservation invariant — the power timeline's total energy must
  equal the stats ledger's total *bit-exactly* (both sides accumulate
  the identical float sequence) and the binned integral must agree to
  float-summation tolerance;
* peak / average / thermal-proxy power per engine;
* wall-clock cost of profiling (the enabled-path price of the power
  timeline specifically).

``--check`` turns the conservation invariant into a CI gate: any
engine whose profile is not conserved fails the run.

Usage::

    PYTHONPATH=src python benchmarks/bench_power_timeline.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ENGINES = ("scalar", "bulk")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless every engine's profile conserves energy",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_power.json"
        ),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    from repro.eval.power_profile import (
        format_power_profiles,
        run_power_profile,
    )

    length = 1500 if args.quick else 4000
    profiles = []
    walls = {}
    for engine in ENGINES:
        start = time.perf_counter()
        profile = run_power_profile(engine=engine, length=length)
        walls[engine] = time.perf_counter() - start
        profiles.append(profile)

    print(format_power_profiles(profiles))
    for profile in profiles:
        print(
            f"{profile.engine:>8}: wall {walls[profile.engine] * 1e3:8.1f} ms, "
            f"{profile.events} command events, "
            f"timeline - ledger = "
            f"{profile.timeline_energy_nj - profile.ledger_energy_nj:.17g} nJ"
        )

    results = {
        "benchmark": "power_timeline",
        "mode": "quick" if args.quick else "full",
        "params": {"length": length, "engines": list(ENGINES)},
        "profiles": [
            {**p.to_dict(), "wall_s": walls[p.engine]} for p in profiles
        ],
        "all_conserved": all(p.conserved for p in profiles),
    }
    out = Path(args.output)
    out.write_text(json.dumps(results, indent=2) + "\n", encoding="ascii")
    print(f"wrote {out}")

    if args.check:
        broken = [p.engine for p in profiles if not p.conserved]
        if broken:
            print(f"FAIL: energy not conserved on engine(s): {broken}")
            return 1
        print("OK: timeline energy == ledger energy (bit-exact) on "
              f"{len(profiles)} engine(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
