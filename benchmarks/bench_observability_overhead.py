"""Overhead contract for the observability layer.

Runs the same end-to-end PIM assembly three ways and compares
simulator wall-clock:

* **baseline** — observability disabled (no active session; every
  instrumented call site reduces to one module-global ``None`` check);
* **disabled** — identical, measured again after the observability
  modules are imported, to catch accidental import-time costs;
* **enabled** — a full ``ObservabilitySession`` active (spans +
  metrics + power timeline + flight ring recorded, nothing exported).

Methodology: the three variants are *interleaved* round-robin — one
baseline run, one disabled run, one enabled run, repeated — so slow
machine-level drift (thermal throttling, a background compile kicking
in halfway through) lands on every variant equally instead of biasing
whichever variant ran last.  Each variant is summarised by its
**median** wall time, and the signed overhead is reported against a
measured **noise floor**: the relative spread of the baseline samples
themselves.  An overhead below the noise floor is indistinguishable
from measurement noise — this is exactly the artifact the previous
best-of-N version produced, where a lucky late "disabled" sample
reported a nonsensical −5 % overhead.

The contract asserted with ``--check``: the *disabled* path must stay
within ``max(MAX_DISABLED_OVERHEAD, noise_floor)`` of baseline.  The
enabled-path cost is reported for the record but not gated — turning
tracing on is allowed to cost something.

Usage::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

MAX_DISABLED_OVERHEAD = 0.05  # fractional wall-clock slowdown allowed


def _make_reads(quick: bool):
    from repro.genome.reads import ReadSimulator
    from repro.genome.reference import synthetic_chromosome

    length = 1200 if quick else 4000
    reference = synthetic_chromosome(length, seed=31)
    sim = ReadSimulator(read_length=70, seed=32)
    return sim.sample(reference, sim.reads_for_coverage(length, 10.0))


def _run_assembly(reads, k: int):
    from repro.assembly.pipeline import assemble_with_pim

    return assemble_with_pim(reads, k=k)


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if the disabled path exceeds "
        f"max({MAX_DISABLED_OVERHEAD:.0%}, noise floor) overhead",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="interleaved repeats per variant"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_observability.json"
        ),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    k = 15
    reads = _make_reads(args.quick)

    # import up front so "disabled" measures the shipping default (the
    # modules are resident, no session active) rather than import cost
    from repro.observability.session import ObservabilitySession

    def enabled():
        session = ObservabilitySession()
        with session.activate():
            _run_assembly(reads, k)
        return session

    # one untimed warm-up of each variant: fills allocator/OS caches
    # and touches every code path before any sample is taken
    _run_assembly(reads, k)
    enabled()

    samples: dict[str, list[float]] = {
        "baseline": [],
        "disabled": [],
        "enabled": [],
    }
    for _ in range(max(1, args.repeats)):
        samples["baseline"].append(_timed(lambda: _run_assembly(reads, k)))
        samples["disabled"].append(_timed(lambda: _run_assembly(reads, k)))
        samples["enabled"].append(_timed(enabled))

    medians = {name: statistics.median(s) for name, s in samples.items()}
    base = medians["baseline"]
    noise_floor = (
        (max(samples["baseline"]) - min(samples["baseline"])) / base
        if base > 0
        else 0.0
    )
    gate = max(MAX_DISABLED_OVERHEAD, noise_floor)

    session = enabled()
    spans = len(session.tracer.spans())

    disabled_overhead = medians["disabled"] / base - 1.0
    enabled_overhead = medians["enabled"] / base - 1.0
    results = {
        "benchmark": "observability_overhead",
        "mode": "quick" if args.quick else "full",
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "noise_floor": noise_floor,
        "gate": gate,
        "params": {"reads": len(reads), "k": k, "repeats": args.repeats},
        "baseline": {
            "wall_s": medians["baseline"],
            "samples_s": samples["baseline"],
        },
        "disabled": {
            "wall_s": medians["disabled"],
            "samples_s": samples["disabled"],
            "overhead": disabled_overhead,
        },
        "enabled": {
            "wall_s": medians["enabled"],
            "samples_s": samples["enabled"],
            "overhead": enabled_overhead,
            "spans_recorded": spans,
            "sim_ns": session.tracer.sim_clock(),
        },
    }

    for name in ("baseline", "disabled", "enabled"):
        entry = results[name]
        overhead = entry.get("overhead")
        suffix = f" | overhead {overhead:+7.1%}" if overhead is not None else ""
        print(f"{name:>9}: {entry['wall_s'] * 1e3:8.1f} ms (median){suffix}")
    print(f"noise floor (baseline spread): {noise_floor:.1%} -> gate {gate:.1%}")

    out = Path(args.output)
    out.write_text(json.dumps(results, indent=2) + "\n", encoding="ascii")
    print(f"wrote {out}")

    if args.check:
        if disabled_overhead > gate:
            print(
                f"FAIL: disabled-path overhead {disabled_overhead:+.1%} "
                f"exceeds gate {gate:.1%}"
            )
            return 1
        print(
            f"OK: disabled-path overhead {disabled_overhead:+.1%} within "
            f"gate {gate:.1%}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
