"""Overhead contract for the observability layer.

Runs the same end-to-end PIM assembly three ways and compares
simulator wall-clock:

* **baseline** — observability disabled (no active session; every
  instrumented call site reduces to one module-global ``None`` check);
* **disabled** — identical, measured again after the observability
  modules are imported, to catch accidental import-time costs;
* **enabled** — a full ``ObservabilitySession`` active (spans +
  metrics recorded, nothing exported).

The contract asserted with ``--check``: the *disabled* path must stay
within ``MAX_DISABLED_OVERHEAD`` (5 %) of baseline.  The enabled-path
cost is reported for the record but not gated — turning tracing on is
allowed to cost something.

Usage::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

MAX_DISABLED_OVERHEAD = 0.05  # fractional wall-clock slowdown allowed


def _make_reads(quick: bool):
    from repro.genome.reads import ReadSimulator
    from repro.genome.reference import synthetic_chromosome

    length = 1200 if quick else 4000
    reference = synthetic_chromosome(length, seed=31)
    sim = ReadSimulator(read_length=70, seed=32)
    return sim.sample(reference, sim.reads_for_coverage(length, 10.0))


def _run_assembly(reads, k: int):
    from repro.assembly.pipeline import assemble_with_pim

    return assemble_with_pim(reads, k=k)


def _best_wall(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if the disabled path exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} overhead over baseline",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_observability.json"
        ),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    k = 15
    reads = _make_reads(args.quick)

    # baseline: observability package not yet imported anywhere hot
    wall_baseline = _best_wall(lambda: _run_assembly(reads, k), args.repeats)

    # disabled: modules imported (they already are, via the pipeline's
    # instrumentation), no session active — the shipping default
    from repro.observability.session import ObservabilitySession
    from repro.observability.spans import _ACTIVE as _tracer_slot  # noqa: F401

    wall_disabled = _best_wall(lambda: _run_assembly(reads, k), args.repeats)

    def enabled():
        session = ObservabilitySession()
        with session.activate():
            _run_assembly(reads, k)
        return session

    wall_enabled = _best_wall(enabled, args.repeats)

    session = enabled()
    spans = len(session.tracer.spans())

    disabled_overhead = wall_disabled / wall_baseline - 1.0
    enabled_overhead = wall_enabled / wall_baseline - 1.0
    results = {
        "benchmark": "observability_overhead",
        "mode": "quick" if args.quick else "full",
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "params": {"reads": len(reads), "k": k, "repeats": args.repeats},
        "baseline": {"wall_s": wall_baseline},
        "disabled": {"wall_s": wall_disabled, "overhead": disabled_overhead},
        "enabled": {
            "wall_s": wall_enabled,
            "overhead": enabled_overhead,
            "spans_recorded": spans,
            "sim_ns": session.tracer.sim_clock(),
        },
    }

    for name in ("baseline", "disabled", "enabled"):
        entry = results[name]
        overhead = entry.get("overhead")
        suffix = f" | overhead {overhead:+7.1%}" if overhead is not None else ""
        print(f"{name:>9}: {entry['wall_s'] * 1e3:8.1f} ms{suffix}")

    out = Path(args.output)
    out.write_text(json.dumps(results, indent=2) + "\n", encoding="ascii")
    print(f"wrote {out}")

    if args.check:
        if disabled_overhead > MAX_DISABLED_OVERHEAD:
            print(
                f"FAIL: disabled-path overhead {disabled_overhead:.1%} exceeds "
                f"{MAX_DISABLED_OVERHEAD:.0%}"
            )
            return 1
        print(
            f"OK: disabled-path overhead {disabled_overhead:+.1%} within "
            f"{MAX_DISABLED_OVERHEAD:.0%}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
