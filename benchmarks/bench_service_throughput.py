"""Perf trajectory for the multi-tenant service scheduler.

Measures the service layer's *overhead* — scheduling rounds, admission
checks, worker handoff — against running the same jobs serially
through bare ``JobRunner``s, and records the scaling from 1 to N
workers.  Writes ``BENCH_service.json`` so future scheduler changes
have a recorded baseline.

The assertable claims (``--check``):

* dispatching through the service must cost < 100% over bare serial
  runners at 1 worker (the scheduler is bookkeeping, not work);
* with 2 workers the scheduler must grant 2 jobs inside a single
  round (the pool genuinely overlaps dispatches) without inflating
  wall time — the simulator is GIL-bound pure Python, so overlapped
  threads buy scheduling concurrency, not wall-clock speedup;
* results are bit-identical to serial execution, whatever the worker
  count.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

MAX_OVERHEAD_FRACTION = 1.0  # service/serial - 1 at 1 worker, quick sizes
MAX_CONCURRENCY_PENALTY = 1.5  # 2w wall may not exceed 1.5x the 1w wall


def build_jobs(tenants: int, per_tenant: int, genome_bp: int):
    from repro.genome.reads import ReadSimulator
    from repro.genome.reference import synthetic_chromosome

    jobs = []
    for t in range(tenants):
        for i in range(per_tenant):
            seed = 1000 + 17 * t + i
            reference = synthetic_chromosome(genome_bp, seed=seed)
            sim = ReadSimulator(read_length=40, seed=seed + 1)
            reads = sim.sample(
                reference, sim.reads_for_coverage(genome_bp, 6)
            )
            jobs.append((f"tenant-{t}", f"job-{i}", list(reads)))
    return jobs


def contigs_of(outcome):
    return [(c.name, str(c.sequence)) for c in outcome.result.contigs]


def bench_serial(jobs, k: int, tmp: Path) -> dict:
    from repro.runtime.jobs import JobConfig, JobRunner

    config = JobConfig(k=k)
    start = time.perf_counter()
    results = {}
    for tenant, name, reads in jobs:
        outcome = JobRunner(
            tmp / "serial" / tenant / name, config, sleep=lambda _s: None
        ).run(reads)
        results[f"{tenant}/{name}"] = contigs_of(outcome)
    return {"wall_s": time.perf_counter() - start, "results": results}


def bench_service(jobs, k: int, workers: int, tmp: Path) -> dict:
    from repro.runtime.jobs import JobConfig
    from repro.service import AssemblyService, ServiceConfig, TenantQuota

    config = JobConfig(k=k)
    service = AssemblyService(
        tmp / f"svc-{workers}",
        ServiceConfig(
            workers=workers,
            default_quota=TenantQuota(max_queued=64, max_in_flight=workers),
            max_total_queued=256,
        ),
        sleep=lambda _s: None,
    )
    start = time.perf_counter()
    for tenant, name, reads in jobs:
        service.submit(tenant, name, reads, config)
    report = service.drain()
    wall = time.perf_counter() - start
    assert not report.failed and not report.shed
    results = {
        f"{t.tenant}/{t.name}": contigs_of(t.outcome)
        for t in report.completed
    }
    per_round: dict = {}
    for grant in report.grants:
        per_round[grant.round] = per_round.get(grant.round, 0) + 1
    return {
        "wall_s": wall,
        "rounds": report.rounds,
        "grants": len(report.grants),
        "peak_grants_per_round": max(per_round.values()),
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on scheduler overhead, missing concurrency speedup, "
        "or any divergence from serial results",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_service.json"
        ),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    import tempfile

    k = 11
    tenants, per_tenant = (3, 2) if args.quick else (4, 4)
    genome_bp = 300 if args.quick else 800
    jobs = build_jobs(tenants, per_tenant, genome_bp)

    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        tmp = Path(tmp)
        serial = bench_serial(jobs, k, tmp)
        one = bench_service(jobs, k, workers=1, tmp=tmp)
        two = bench_service(jobs, k, workers=2, tmp=tmp)

    overhead = one["wall_s"] / serial["wall_s"] - 1.0
    penalty = two["wall_s"] / one["wall_s"]
    identical = (
        serial["results"] == one["results"] == two["results"]
    )
    record = {
        "benchmark": "service_throughput",
        "mode": "quick" if args.quick else "full",
        "jobs": len(jobs),
        "tenants": tenants,
        "serial_wall_s": serial["wall_s"],
        "service_1w_wall_s": one["wall_s"],
        "service_2w_wall_s": two["wall_s"],
        "scheduler_overhead_fraction": overhead,
        "two_worker_wall_ratio": penalty,
        "rounds_1w": one["rounds"],
        "rounds_2w": two["rounds"],
        "peak_grants_per_round_1w": one["peak_grants_per_round"],
        "peak_grants_per_round_2w": two["peak_grants_per_round"],
        "bit_identical_to_serial": identical,
        "max_overhead_floor": MAX_OVERHEAD_FRACTION,
        "max_concurrency_penalty": MAX_CONCURRENCY_PENALTY,
    }

    print(
        f"{len(jobs)} jobs / {tenants} tenants: serial "
        f"{serial['wall_s'] * 1e3:7.1f} ms | service(1w) "
        f"{one['wall_s'] * 1e3:7.1f} ms (overhead {overhead:+.1%}, "
        f"peak {one['peak_grants_per_round']}/round) | service(2w) "
        f"{two['wall_s'] * 1e3:7.1f} ms "
        f"(peak {two['peak_grants_per_round']}/round)"
    )
    print(f"bit-identical to serial: {identical}")

    out = Path(args.output)
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="ascii")
    print(f"wrote {out}")

    if args.check:
        failures = []
        if not identical:
            failures.append("service results diverged from serial")
        if overhead > MAX_OVERHEAD_FRACTION:
            failures.append(
                f"scheduler overhead {overhead:.1%} > "
                f"{MAX_OVERHEAD_FRACTION:.0%}"
            )
        if one["peak_grants_per_round"] != 1:
            failures.append(
                "1 worker granted more than one job in a round "
                f"({one['peak_grants_per_round']})"
            )
        if two["peak_grants_per_round"] < 2:
            failures.append(
                "2 workers never overlapped dispatches in a round "
                f"(peak {two['peak_grants_per_round']})"
            )
        if penalty > MAX_CONCURRENCY_PENALTY:
            failures.append(
                f"2-worker wall {penalty:.2f}x the 1-worker wall "
                f"(> {MAX_CONCURRENCY_PENALTY:.1f}x)"
            )
        if failures:
            print("FAIL: " + "; ".join(failures))
            return 1
        print(
            "OK: overhead bounded, workers overlap, results identical"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
