"""Ablation A4 — deployment-parameter sweeps of the chr14 mapping.

Sweeps the Section III/IV deployment knobs the paper fixes (chips = 10,
Pd = 2) and the scan-imbalance calibration, showing where the knees
are: chips scale near-linearly until the Euler walk's serial fraction
dominates (Amdahl), and Pd behaves per Fig. 10.
"""

from dataclasses import replace

from conftest import emit

from repro.eval.execution import ExecutionModel, MappingConfig
from repro.eval.workloads import chr14_workload
from repro.platforms import pim_assembler


def run_sweeps():
    platform = pim_assembler()
    workload = chr14_workload(16)
    base = MappingConfig()

    chips = {
        n: ExecutionModel(workload, replace(base, chips=n)).run(platform)
        for n in (5, 10, 20, 40)
    }
    pd = {
        n: ExecutionModel(
            workload, replace(base, parallelism_degree=n)
        ).run(platform)
        for n in (1, 2, 4, 8)
    }
    scan = {
        f: ExecutionModel(
            workload, replace(base, scan_overhead=f)
        ).run(platform)
        for f in (1.0, 2.4, 4.0)
    }
    return chips, pd, scan


def test_ablation_deployment_sweeps(benchmark):
    chips, pd, scan = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    body = ["  chips sweep:"]
    body += [f"    M={n:>2}: {r.total_time_s:6.1f}s" for n, r in chips.items()]
    body += ["  Pd sweep:"]
    body += [f"    Pd={n}: {r.total_time_s:6.1f}s" for n, r in pd.items()]
    body += ["  scan-imbalance sweep:"]
    body += [
        f"    x{f:3.1f}: hashmap {r.stage('hashmap').time_s:6.1f}s"
        for f, r in scan.items()
    ]
    emit("Ablation — deployment parameters (k=16)", "\n".join(body))

    # more chips -> faster; slightly super-linear on the hashmap (more
    # table sub-arrays shorten every scan) but bounded by the serial
    # Euler walk overall
    times = [chips[n].total_time_s for n in (5, 10, 20, 40)]
    assert times == sorted(times, reverse=True)
    speedup_5_to_40 = times[0] / times[-1]
    assert 1.5 < speedup_5_to_40 < 12.0

    # Pd helps the parallel stages only
    pd_times = [pd[n].total_time_s for n in (1, 2, 4, 8)]
    assert pd_times == sorted(pd_times, reverse=True)

    # scan imbalance directly scales the hashmap stage
    assert (
        scan[4.0].stage("hashmap").time_s
        > scan[1.0].stage("hashmap").time_s * 2.0
    )
