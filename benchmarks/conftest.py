"""Shared helpers for the experiment benchmarks.

Every ``bench_*.py`` regenerates one paper artefact (table or figure):
it benchmarks the kernel that produces the data, asserts the paper's
qualitative shape, and prints the same rows/series the paper plots
(visible with ``pytest benchmarks/ --benchmark-only -s``).
"""

import pytest


def emit(title: str, body: str) -> None:
    """Print an experiment artefact under a recognisable banner."""
    bar = "=" * max(8, len(title))
    print(f"\n{bar}\n{title}\n{bar}\n{body}")


@pytest.fixture(scope="session")
def fig3b_sweep():
    from repro.eval.throughput import run_throughput_sweep

    return run_throughput_sweep()


@pytest.fixture(scope="session")
def chr14_results():
    """Fig. 9 inputs: every platform x every k, computed once."""
    from repro.eval.execution import ExecutionModel
    from repro.eval.workloads import chr14_workload
    from repro.platforms import assembly_platforms

    results = {}
    platforms = assembly_platforms()
    for k in (16, 22, 26, 32):
        model = ExecutionModel(chr14_workload(k))
        results[k] = {p.name: model.run(p) for p in platforms}
    return results
