"""E2 — Fig. 3b: raw throughput of bulk XNOR2 and addition.

Regenerates the seven-platform bar groups for 2^27/2^28/2^29-bit
vectors and asserts the paper's ratios: P-A is 8.4x CPU and 2.3x /
1.9x / 3.7x faster than Ambit / D1 / D3 on XNOR.
"""

import pytest
from conftest import emit

from repro.eval.tables import format_throughput
from repro.eval.throughput import headline_ratios, run_throughput_sweep


def test_fig3b_throughput(benchmark, fig3b_sweep):
    sweep = benchmark(run_throughput_sweep)
    emit("Fig. 3b — raw throughput", format_throughput(sweep))

    ratios = headline_ratios(sweep)
    emit(
        "Fig. 3b — headline ratios (paper: 8.4 / 2.3 / 1.9 / 3.7)",
        "\n".join(f"  {k}: {v:.2f}x" for k, v in ratios.items()),
    )

    assert ratios["xnor_vs_cpu"] == pytest.approx(8.4, rel=0.02)
    assert ratios["xnor_vs_ambit"] == pytest.approx(2.33, rel=0.02)
    assert ratios["xnor_vs_d1"] == pytest.approx(1.9, rel=0.02)
    assert ratios["xnor_vs_d3"] == pytest.approx(3.7, rel=0.02)


def test_fig3b_functional_kernel(benchmark):
    """Also measure the *functional* bulk-XNOR kernel on real sub-array
    state (a scaled-down vector; the analytic model covers 2^27+)."""
    import numpy as np

    from repro.core import PimAssembler

    rng = np.random.default_rng(3)
    bits = 8192
    a = rng.integers(0, 2, bits).astype(np.uint8)
    b = rng.integers(0, 2, bits).astype(np.uint8)

    def kernel():
        pim = PimAssembler.small(subarrays=16, rows=256, cols=128)
        return pim.bulk_xnor(a, b)

    result = benchmark(kernel)
    assert (result == (1 - (a ^ b))).all()
