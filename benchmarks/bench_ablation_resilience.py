"""Ablation A4 — resilience policy ladder under Table I fault rates.

End-to-end robustness study: simulated reads assembled on the
functional simulator while Table-I-derived faults are injected into
the in-memory ops, swept over the resilience policy ladder.  Asserts
the tentpole guarantees:

* with the policy **off**, ±15% variation demonstrably corrupts the
  contigs (fragmentation vs the fault-free baseline);
* with **detect-retry-remap**, the same seeds reproduce the fault-free
  contigs bit-identically;
* the protection is honest: nonzero corrected events and nonzero
  verification overhead charged to the stats ledger.

Set ``RESILIENCE_QUICK=1`` to run the trimmed smoke sweep (one
variation level, two policies) — what CI uses.
"""

import os

from conftest import emit

from repro.eval.resilience import (
    POLICY_SWEEP,
    VARIATION_SWEEP,
    format_resilience_study,
    run_resilience_study,
)

QUICK = os.environ.get("RESILIENCE_QUICK", "") not in ("", "0")


def run_study():
    if QUICK:
        return run_resilience_study(
            variation_levels=(15.0,),
            policies=("off", "detect-retry-remap"),
        )
    return run_resilience_study(
        variation_levels=VARIATION_SWEEP, policies=POLICY_SWEEP
    )


def test_ablation_resilience_ladder(benchmark):
    study = benchmark.pedantic(run_study, rounds=1, iterations=1)

    emit(
        "Ablation — resilience policy ladder "
        f"({'quick smoke' if QUICK else 'full sweep'})",
        format_resilience_study(study),
    )

    off = study.point(15.0, "off")
    protected = study.point(15.0, "detect-retry-remap")

    # policy off: faults visibly corrupt the assembly
    assert not off.identical_to_baseline, (
        "15% variation with no protection must corrupt the contigs"
    )
    assert off.num_contigs != study.baseline_contigs
    assert off.detected == 0 and off.verify_time_ns == 0.0

    # strongest policy: bit-identical recovery, honestly charged
    assert protected.identical_to_baseline, (
        "detect-retry-remap must reproduce the fault-free contigs"
    )
    assert protected.corrected > 0, "report must show corrected events"
    assert protected.verify_time_ns > 0.0, (
        "verification overhead must be charged to the ledger"
    )
    assert protected.retries > 0

    if not QUICK:
        # the ladder is monotone: detect alone observes but cannot fix
        detect = study.point(15.0, "detect")
        assert detect.detected > 0 and detect.corrected == 0
        assert not detect.identical_to_baseline
        # retry fixes; remap additionally retires failing sub-arrays
        retry = study.point(15.0, "detect-retry")
        assert retry.identical_to_baseline
        assert protected.quarantined_subarrays >= retry.quarantined_subarrays
        assert study.strongest_policy_always_exact
