"""Perf trajectory for the bulk execution engine (scalar vs bulk).

Microbenchmarks the simulator's two hot paths under both execution
engines and writes ``BENCH_hotpath.json`` so future changes have a
recorded baseline:

* **compare_scan** — Q queries scanned against an n-row block
  (the hash-table probe loop);
* **ripple_add** — repeated m-bit-plane in-memory additions
  (the Wallace degree reduction's final stage);
* **hashmap** — end-to-end k-mer counting of a read set (the gang
  coalescing across sub-array partitions).

Each entry records simulator *wall-clock* seconds and *modeled* device
nanoseconds; the speedups the bulk engine must hold (>= 3x wall-clock
on compare_scan and ripple_add) are asserted with ``--check``.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath_engine.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

MIN_SPEEDUP = 3.0  # wall-clock floor for the microbenchmarks


def _best_wall(fn, repeats: int) -> float:
    """Best-of-N wall time (seconds) of a fresh-state closure."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_compare_scan(quick: bool, repeats: int) -> dict:
    from repro.core import PimAssembler
    from repro.core.bitplane import BulkEngine
    from repro.core.isa import RowAddress

    n_rows = 40 if quick else 120
    n_queries = 200 if quick else 2000
    width = 64
    rng = np.random.default_rng(1)
    block = rng.integers(0, 2, (n_rows, width)).astype(np.uint8)
    queries = np.vstack(
        [
            block[rng.integers(0, n_rows)]
            if rng.random() < 0.5
            else rng.integers(0, 2, width).astype(np.uint8)
            for _ in range(n_queries)
        ]
    )
    start_row = 4

    def setup():
        pim = PimAssembler.small(subarrays=4, rows=256, cols=width)
        sub = pim.device.subarray_at((0, 0, 0))
        for i, row in enumerate(block):
            sub.write_row(start_row + i, row)
        return pim, RowAddress(bank=0, mat=0, subarray=0, row=0)

    def scalar():
        pim, temp = setup()
        ctrl = pim.controller
        for q in queries:
            ctrl.write_row(temp, q)
            ctrl.compare_scan(temp, start_row, n_rows, None)
        return pim

    def bulk():
        pim, temp = setup()
        BulkEngine(pim).compare_scan_batch(temp, queries, start_row, n_rows)
        return pim

    wall_scalar = _best_wall(scalar, repeats)
    wall_bulk = _best_wall(bulk, repeats)
    modeled_scalar = scalar().controller.ledger.totals().time_ns
    modeled_bulk = bulk().controller.ledger.totals().time_ns
    return {
        "params": {"n_rows": n_rows, "n_queries": n_queries, "width": width},
        "scalar": {"wall_s": wall_scalar, "modeled_ns": modeled_scalar},
        "bulk": {"wall_s": wall_bulk, "modeled_ns": modeled_bulk},
        "wall_speedup": wall_scalar / wall_bulk,
        "queries_per_s": {
            "scalar": n_queries / wall_scalar,
            "bulk": n_queries / wall_bulk,
        },
    }


def bench_ripple_add(quick: bool, repeats: int) -> dict:
    from repro.core import PimAssembler
    from repro.core.bitplane import BulkEngine, words_to_planes
    from repro.core.isa import RowAddress

    bits = 8
    rounds = 30 if quick else 200
    width = 64
    rng = np.random.default_rng(2)
    a_vals = rng.integers(0, 1 << bits, width).astype(np.int64) >> 1
    b_vals = rng.integers(0, 1 << bits, width).astype(np.int64) >> 1

    def setup():
        pim = PimAssembler.small(subarrays=2, rows=256, cols=width)
        sub = pim.device.subarray_at((0, 0, 0))
        addr = lambda row: RowAddress(bank=0, mat=0, subarray=0, row=row)
        for base, vals in ((4, a_vals), (4 + bits, b_vals)):
            planes = words_to_planes(vals, bits)
            for i in range(bits):
                sub.write_row(base + i, planes[i])
        a = [addr(4 + i) for i in range(bits)]
        b = [addr(4 + bits + i) for i in range(bits)]
        s = [addr(4 + 2 * bits + i) for i in range(bits)]
        carry = addr(4 + 3 * bits)
        return pim, a, b, s, carry

    def scalar():
        pim, a, b, s, carry = setup()
        for _ in range(rounds):
            pim.controller.ripple_add(a, b, s, carry)
        return pim

    def bulk():
        pim, a, b, s, carry = setup()
        engine = BulkEngine(pim)
        for _ in range(rounds):
            engine.ripple_add_block(a, b, s, carry)
        return pim

    wall_scalar = _best_wall(scalar, repeats)
    wall_bulk = _best_wall(bulk, repeats)
    modeled_scalar = scalar().controller.ledger.totals().time_ns
    modeled_bulk = bulk().controller.ledger.totals().time_ns
    return {
        "params": {"bit_planes": bits, "rounds": rounds, "width": width},
        "scalar": {"wall_s": wall_scalar, "modeled_ns": modeled_scalar},
        "bulk": {"wall_s": wall_bulk, "modeled_ns": modeled_bulk},
        "wall_speedup": wall_scalar / wall_bulk,
        "adds_per_s": {
            "scalar": rounds / wall_scalar,
            "bulk": rounds / wall_bulk,
        },
    }


def bench_hashmap(quick: bool, repeats: int) -> dict:
    from repro.assembly.hashmap import PimKmerCounter
    from repro.core import PimAssembler
    from repro.genome.reads import Read
    from repro.genome.sequence import DnaSequence

    n_reads = 10 if quick else 60
    read_len = 60 if quick else 100
    subarrays = 128 if quick else 512  # headroom for partition imbalance
    rng = np.random.default_rng(3)
    reads = [
        Read(
            f"r{i}",
            DnaSequence("".join(rng.choice(list("ACGT"), size=read_len))),
            start=i,
        )
        for i in range(n_reads)
    ]
    total_kmers = sum(len(r.sequence) - 9 + 1 for r in reads)

    def run(engine):
        pim = PimAssembler.small(subarrays=subarrays)
        counter = PimKmerCounter(pim, 9, engine=engine)
        counter.add_reads(reads)
        return pim

    wall_scalar = _best_wall(lambda: run("scalar"), repeats)
    wall_bulk = _best_wall(lambda: run("bulk"), repeats)
    modeled_scalar = run("scalar").controller.ledger.totals().time_ns
    modeled_bulk = run("bulk").controller.ledger.totals().time_ns
    return {
        "params": {"n_reads": n_reads, "read_len": read_len, "k": 9},
        "scalar": {"wall_s": wall_scalar, "modeled_ns": modeled_scalar},
        "bulk": {"wall_s": wall_bulk, "modeled_ns": modeled_bulk},
        "wall_speedup": wall_scalar / wall_bulk,
        "modeled_speedup": modeled_scalar / modeled_bulk,
        "kmers_per_s": {
            "scalar": total_kmers / wall_scalar,
            "bulk": total_kmers / wall_bulk,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail unless bulk >= {MIN_SPEEDUP}x wall-clock on the "
        "compare_scan and ripple_add microbenchmarks",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    results = {
        "benchmark": "hotpath_engine",
        "mode": "quick" if args.quick else "full",
        "min_speedup_floor": MIN_SPEEDUP,
        "compare_scan": bench_compare_scan(args.quick, args.repeats),
        "ripple_add": bench_ripple_add(args.quick, args.repeats),
        "hashmap": bench_hashmap(args.quick, args.repeats),
    }

    for name in ("compare_scan", "ripple_add", "hashmap"):
        entry = results[name]
        print(
            f"{name:>14}: scalar {entry['scalar']['wall_s'] * 1e3:8.1f} ms"
            f" | bulk {entry['bulk']['wall_s'] * 1e3:8.1f} ms"
            f" | wall speedup {entry['wall_speedup']:6.1f}x"
        )

    out = Path(args.output)
    out.write_text(json.dumps(results, indent=2) + "\n", encoding="ascii")
    print(f"wrote {out}")

    if args.check:
        failures = [
            name
            for name in ("compare_scan", "ripple_add")
            if results[name]["wall_speedup"] < MIN_SPEEDUP
        ]
        if failures:
            print(
                f"FAIL: bulk < {MIN_SPEEDUP}x wall-clock on: "
                + ", ".join(failures)
            )
            return 1
        print(f"OK: bulk >= {MIN_SPEEDUP}x wall-clock on both microbenchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
