"""Perf trajectory for the bulk execution engine (scalar vs bulk).

Microbenchmarks the simulator's two hot paths under both execution
engines and writes ``BENCH_hotpath.json`` so future changes have a
recorded baseline:

* **compare_scan** — Q queries scanned against an n-row block
  (the hash-table probe loop);
* **ripple_add** — repeated m-bit-plane in-memory additions
  (the Wallace degree reduction's final stage);
* **hashmap** — end-to-end k-mer counting of a read set (the gang
  coalescing across sub-array partitions).

Each entry records simulator *wall-clock* seconds and *modeled* device
nanoseconds.  ``--check`` asserts the per-kernel wall-clock floors in
:data:`MIN_SPEEDUP` (raised to 10x on compare_scan and hashmap by the
columnar packed storage rewrite), plus the packed-footprint bound; with
``--paper-scale`` it additionally requires >= 50x on at least one of
compare_scan/hashmap.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath_engine.py --quick --check
    PYTHONPATH=src python benchmarks/bench_hotpath_engine.py --paper-scale --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

#: per-kernel wall-clock speedup floors (asserted by ``--check``)
MIN_SPEEDUP = {
    "compare_scan": 10.0,
    "hashmap": 10.0,
    "ripple_add": 3.0,
}

#: --paper-scale must demonstrate this on compare_scan or hashmap
PAPER_SCALE_TARGET = 50.0

#: benchmark sizes per mode
SIZES = {
    # (scan n_rows, scan queries), add rounds, (reads, read_len, subarrays)
    "quick": {"scan": (40, 200), "add_rounds": 30, "hashmap": (10, 60, 128)},
    "full": {"scan": (120, 2000), "add_rounds": 200, "hashmap": (60, 100, 512)},
    # paper-scale: tens of thousands of probes / k-mers, where the
    # scalar engine's per-op Python dispatch dominates end to end
    # (~17.9k k-mers need the 1024-partition headroom: mostly-unique
    # 9-mers average ~17 of each partition's 44 table slots)
    "paper": {
        "scan": (120, 20000),
        "add_rounds": 400,
        "hashmap": (160, 120, 1024),
    },
}


def _best_wall(fn, repeats: int) -> float:
    """Best-of-N wall time (seconds) of a fresh-state closure."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_compare_scan(mode: str, repeats: int) -> dict:
    from repro.core import PimAssembler
    from repro.core.bitplane import BulkEngine
    from repro.core.isa import RowAddress

    n_rows, n_queries = SIZES[mode]["scan"]
    width = 64
    rng = np.random.default_rng(1)
    block = rng.integers(0, 2, (n_rows, width)).astype(np.uint8)
    queries = np.vstack(
        [
            block[rng.integers(0, n_rows)]
            if rng.random() < 0.5
            else rng.integers(0, 2, width).astype(np.uint8)
            for _ in range(n_queries)
        ]
    )
    start_row = 4

    def setup():
        pim = PimAssembler.small(subarrays=4, rows=256, cols=width)
        sub = pim.device.subarray_at((0, 0, 0))
        for i, row in enumerate(block):
            sub.write_row(start_row + i, row)
        return pim, RowAddress(bank=0, mat=0, subarray=0, row=0)

    def scalar():
        pim, temp = setup()
        ctrl = pim.controller
        for q in queries:
            ctrl.write_row(temp, q)
            ctrl.compare_scan(temp, start_row, n_rows, None)
        return pim

    def bulk():
        pim, temp = setup()
        BulkEngine(pim).compare_scan_batch(temp, queries, start_row, n_rows)
        return pim

    wall_scalar = _best_wall(scalar, repeats)
    wall_bulk = _best_wall(bulk, repeats)
    modeled_scalar = scalar().controller.ledger.totals().time_ns
    modeled_bulk = bulk().controller.ledger.totals().time_ns
    return {
        "params": {"n_rows": n_rows, "n_queries": n_queries, "width": width},
        "scalar": {"wall_s": wall_scalar, "modeled_ns": modeled_scalar},
        "bulk": {"wall_s": wall_bulk, "modeled_ns": modeled_bulk},
        "wall_speedup": wall_scalar / wall_bulk,
        "queries_per_s": {
            "scalar": n_queries / wall_scalar,
            "bulk": n_queries / wall_bulk,
        },
    }


def bench_ripple_add(mode: str, repeats: int) -> dict:
    from repro.core import PimAssembler
    from repro.core.bitplane import BulkEngine, words_to_planes
    from repro.core.isa import RowAddress

    bits = 8
    rounds = SIZES[mode]["add_rounds"]
    width = 64
    rng = np.random.default_rng(2)
    a_vals = rng.integers(0, 1 << bits, width).astype(np.int64) >> 1
    b_vals = rng.integers(0, 1 << bits, width).astype(np.int64) >> 1

    def setup():
        pim = PimAssembler.small(subarrays=2, rows=256, cols=width)
        sub = pim.device.subarray_at((0, 0, 0))
        addr = lambda row: RowAddress(bank=0, mat=0, subarray=0, row=row)
        for base, vals in ((4, a_vals), (4 + bits, b_vals)):
            planes = words_to_planes(vals, bits)
            for i in range(bits):
                sub.write_row(base + i, planes[i])
        a = [addr(4 + i) for i in range(bits)]
        b = [addr(4 + bits + i) for i in range(bits)]
        s = [addr(4 + 2 * bits + i) for i in range(bits)]
        carry = addr(4 + 3 * bits)
        return pim, a, b, s, carry

    def scalar():
        pim, a, b, s, carry = setup()
        for _ in range(rounds):
            pim.controller.ripple_add(a, b, s, carry)
        return pim

    def bulk():
        pim, a, b, s, carry = setup()
        engine = BulkEngine(pim)
        for _ in range(rounds):
            engine.ripple_add_block(a, b, s, carry)
        return pim

    wall_scalar = _best_wall(scalar, repeats)
    wall_bulk = _best_wall(bulk, repeats)
    modeled_scalar = scalar().controller.ledger.totals().time_ns
    modeled_bulk = bulk().controller.ledger.totals().time_ns
    return {
        "params": {"bit_planes": bits, "rounds": rounds, "width": width},
        "scalar": {"wall_s": wall_scalar, "modeled_ns": modeled_scalar},
        "bulk": {"wall_s": wall_bulk, "modeled_ns": modeled_bulk},
        "wall_speedup": wall_scalar / wall_bulk,
        "adds_per_s": {
            "scalar": rounds / wall_scalar,
            "bulk": rounds / wall_bulk,
        },
    }


def bench_hashmap(mode: str, repeats: int) -> dict:
    from repro.assembly.hashmap import PimKmerCounter
    from repro.core import PimAssembler
    from repro.genome.reads import Read
    from repro.genome.sequence import DnaSequence

    n_reads, read_len, subarrays = SIZES[mode]["hashmap"]
    rng = np.random.default_rng(3)
    reads = [
        Read(
            f"r{i}",
            DnaSequence("".join(rng.choice(list("ACGT"), size=read_len))),
            start=i,
        )
        for i in range(n_reads)
    ]
    total_kmers = sum(len(r.sequence) - 9 + 1 for r in reads)

    def run(engine):
        pim = PimAssembler.small(subarrays=subarrays)
        counter = PimKmerCounter(pim, 9, engine=engine)
        counter.add_reads(reads)
        return pim

    wall_scalar = _best_wall(lambda: run("scalar"), repeats)
    wall_bulk = _best_wall(lambda: run("bulk"), repeats)
    modeled_scalar = run("scalar").controller.ledger.totals().time_ns
    modeled_bulk = run("bulk").controller.ledger.totals().time_ns
    return {
        "params": {
            "n_reads": n_reads,
            "read_len": read_len,
            "k": 9,
            "total_kmers": total_kmers,
        },
        "scalar": {"wall_s": wall_scalar, "modeled_ns": modeled_scalar},
        "bulk": {"wall_s": wall_bulk, "modeled_ns": modeled_bulk},
        "wall_speedup": wall_scalar / wall_bulk,
        "modeled_speedup": modeled_scalar / modeled_bulk,
        "kmers_per_s": {
            "scalar": total_kmers / wall_scalar,
            "bulk": total_kmers / wall_bulk,
        },
    }


def measure_footprint() -> dict:
    """Packed vs unpacked host bytes for the reference geometry.

    Uses the default sub-array geometry's ``nbytes``: packed must stay
    within 1/8 of the retired uint8-per-bit representation plus one
    tail word per row (exact 1/8 when cols % 64 == 0).
    """
    from repro.core.storage import BitPlaneStore
    from repro.dram.geometry import default_geometry

    sub = default_geometry().bank.mat.subarray
    store = BitPlaneStore(sub.rows, sub.cols)
    packed = store.slot_nbytes
    unpacked = store.unpacked_slot_nbytes
    bound = unpacked // 8 + sub.rows * 8  # 1/8 + one tail word per row
    return {
        "geometry": {"rows": sub.rows, "cols": sub.cols},
        "packed_bytes_per_subarray": packed,
        "unpacked_bytes_per_subarray": unpacked,
        "ratio": packed / unpacked,
        "bound_bytes": bound,
        "within_bound": packed <= bound,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes (CI smoke)"
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="tens of thousands of probes/k-mers per kernel; with "
        f"--check, requires >= {PAPER_SCALE_TARGET}x on at least one "
        "of compare_scan/hashmap",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless bulk holds the per-kernel wall-clock floors "
        f"({MIN_SPEEDUP}) and the packed footprint bound",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of-N timing repeats (default 3; 1 at paper scale)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)
    if args.quick and args.paper_scale:
        parser.error("--quick and --paper-scale are mutually exclusive")
    mode = "paper" if args.paper_scale else "quick" if args.quick else "full"
    repeats = args.repeats or (1 if mode == "paper" else 3)

    results = {
        "benchmark": "hotpath_engine",
        "mode": {"paper": "paper-scale"}.get(mode, mode),
        "min_speedup_floor": MIN_SPEEDUP,
        "paper_scale_target": PAPER_SCALE_TARGET,
        "compare_scan": bench_compare_scan(mode, repeats),
        "ripple_add": bench_ripple_add(mode, repeats),
        "hashmap": bench_hashmap(mode, repeats),
        "footprint": measure_footprint(),
    }

    for name in ("compare_scan", "ripple_add", "hashmap"):
        entry = results[name]
        print(
            f"{name:>14}: scalar {entry['scalar']['wall_s'] * 1e3:8.1f} ms"
            f" | bulk {entry['bulk']['wall_s'] * 1e3:8.1f} ms"
            f" | wall speedup {entry['wall_speedup']:6.1f}x"
        )
    fp = results["footprint"]
    print(
        f"{'footprint':>14}: packed {fp['packed_bytes_per_subarray']} B"
        f" / unpacked {fp['unpacked_bytes_per_subarray']} B per sub-array"
        f" ({fp['ratio']:.4f}x)"
    )

    out = Path(args.output)
    out.write_text(json.dumps(results, indent=2) + "\n", encoding="ascii")
    print(f"wrote {out}")

    if args.check:
        failures = [
            f"{name} {results[name]['wall_speedup']:.1f}x < {floor}x"
            for name, floor in MIN_SPEEDUP.items()
            if results[name]["wall_speedup"] < floor
        ]
        if not fp["within_bound"]:
            failures.append(
                f"footprint {fp['packed_bytes_per_subarray']} B exceeds "
                f"bound {fp['bound_bytes']} B"
            )
        if mode == "paper":
            best = max(
                results["compare_scan"]["wall_speedup"],
                results["hashmap"]["wall_speedup"],
            )
            if best < PAPER_SCALE_TARGET:
                failures.append(
                    f"paper-scale best {best:.1f}x < {PAPER_SCALE_TARGET}x"
                )
        if failures:
            print("FAIL: " + "; ".join(failures))
            return 1
        print(
            "OK: per-kernel floors "
            + (
                f"and the {PAPER_SCALE_TARGET}x paper-scale target hold"
                if mode == "paper"
                else "and the footprint bound hold"
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
