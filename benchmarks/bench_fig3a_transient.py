"""E1 — Fig. 3a: transient simulation of the in-memory XNOR2 op.

Regenerates the four input-pattern waveforms and checks the figure's
claim: the cell/bit-line charges to Vdd when DiDj in {00, 11} and
discharges to GND when DiDj in {01, 10}, within one cycle.
"""

from conftest import emit

from repro.eval.transient import run_transient_study


def test_fig3a_transient(benchmark):
    study = benchmark(run_transient_study)

    rows = []
    for pattern, final, expected in study.summary_rows():
        rail = "Vdd" if expected > 0 else "GND"
        rows.append(
            f"  DiDj={pattern}:  BL settles to {final:5.3f} V "
            f"(expected rail {rail})"
        )
    emit("Fig. 3a — XNOR2 transient (final BL voltages)", "\n".join(rows))

    assert study.all_patterns_correct
    assert study.final_bl("00") > 0.99 * study.vdd
    assert study.final_bl("11") > 0.99 * study.vdd
    assert study.final_bl("01") < 0.01 * study.vdd
    assert study.final_bl("10") < 0.01 * study.vdd
