"""E4 — Section II-B area overhead: the ~5% claim.

Counts the add-on transistors (SA add-ons, MRD, controller) and checks
the paper's arithmetic: 51 equivalent DRAM rows per 1024-row sub-array
~= 5% of chip area.
"""

import pytest
from conftest import emit

from repro.eval.area_report import run_area_study


def test_area_overhead(benchmark):
    study = benchmark(run_area_study)
    emit("Area overhead (Section II-B)", "\n".join(study.breakdown_lines()))

    assert study.within_claim
    assert study.report.equivalent_rows == 51
    assert study.report.sa_transistors == 50 * 256
    assert study.report.mrd_transistors == 16
    assert study.report.overhead_percent == pytest.approx(4.98, abs=0.05)
