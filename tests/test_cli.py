"""The command-line interface, end to end."""

import pytest

from repro.cli import main
from repro.genome.io_fasta import read_fasta


@pytest.fixture()
def simulated(tmp_path):
    out = tmp_path / "sim"
    rc = main(
        [
            "simulate",
            "-o",
            str(out),
            "--length",
            "1500",
            "--coverage",
            "25",
            "--read-length",
            "60",
            "--seed",
            "5",
        ]
    )
    assert rc == 0
    return out


class TestSimulate:
    def test_writes_reference_and_reads(self, simulated):
        assert (simulated / "reference.fa").exists()
        assert (simulated / "reads.fq").exists()
        ref = read_fasta(simulated / "reference.fa")[0]
        assert len(ref.sequence) == 1500

    def test_paired_mode(self, tmp_path):
        out = tmp_path / "paired"
        rc = main(
            [
                "simulate",
                "-o",
                str(out),
                "--length",
                "2000",
                "--coverage",
                "20",
                "--read-length",
                "60",
                "--paired",
            ]
        )
        assert rc == 0
        text = (out / "reads.fq").read_text()
        assert "/1" in text and "/2" in text


class TestAssemble:
    @pytest.mark.parametrize("engine", ["pim", "software", "bidirected"])
    def test_engines_produce_contigs(self, simulated, tmp_path, engine, capsys):
        out = tmp_path / f"{engine}.fa"
        rc = main(
            [
                "assemble",
                str(simulated / "reads.fq"),
                "-o",
                str(out),
                "-k",
                "17",
                "--engine",
                engine,
            ]
        )
        assert rc == 0
        contigs = read_fasta(out)
        assert contigs
        total = sum(len(c.sequence) for c in contigs)
        assert total > 1000
        captured = capsys.readouterr()
        assert "contigs" in captured.out

    def test_pim_engine_reports_simulated_time(self, simulated, tmp_path, capsys):
        out = tmp_path / "c.fa"
        main(
            ["assemble", str(simulated / "reads.fq"), "-o", str(out), "-k", "15"]
        )
        assert "simulated PIM time" in capsys.readouterr().out

    def test_correction_flag(self, simulated, tmp_path, capsys):
        out = tmp_path / "c.fa"
        rc = main(
            [
                "assemble",
                str(simulated / "reads.fq"),
                "-o",
                str(out),
                "-k",
                "17",
                "--engine",
                "software",
                "--correct",
            ]
        )
        assert rc == 0
        assert "correction:" in capsys.readouterr().out

    def test_fasta_input(self, tmp_path):
        reads_fa = tmp_path / "reads.fa"
        reads_fa.write_text(">r0\nACGTACGTACGTACGTACGT\n>r1\nCGTACGTACGTACGTACGTA\n")
        out = tmp_path / "c.fa"
        rc = main(
            [
                "assemble",
                str(reads_fa),
                "-o",
                str(out),
                "-k",
                "9",
                "--engine",
                "software",
            ]
        )
        assert rc == 0

    def test_empty_input_exits_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty.fa"
        empty.write_text("")
        rc = main(["assemble", str(empty), "-o", str(tmp_path / "o.fa")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no reads found" in err

    def test_lenient_quarantines_and_reports(self, tmp_path, capsys):
        reads_fq = tmp_path / "reads.fq"
        reads_fq.write_text(
            "@good\nACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIII\n"
            "@bad\nACGTNNNNACGTACGT\n+\nIIIIIIIIIIIIIIII\n"
            "@good2\nCGTACGTACGTACGTA\n+\nIIIIIIIIIIIIIIII\n"
        )
        rc = main(
            [
                "assemble",
                str(reads_fq),
                "-o",
                str(tmp_path / "o.fa"),
                "-k",
                "9",
                "--engine",
                "software",
                "--lenient",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "quarantined 1 malformed record(s)" in out


class TestFailurePaths:
    """Every bad input exits nonzero with one clean line, no traceback."""

    def _run(self, capsys, argv):
        rc = main(argv)
        captured = capsys.readouterr()
        assert rc != 0
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err
        return rc, captured.err

    def test_missing_input_file(self, tmp_path, capsys):
        rc, err = self._run(
            capsys,
            ["assemble", str(tmp_path / "nope.fq"), "-o", str(tmp_path / "o.fa")],
        )
        assert rc == 2
        assert "not found" in err

    def test_unrecognised_format(self, tmp_path, capsys):
        bad = tmp_path / "reads.txt"
        bad.write_text("ACGTACGT\nACGTACGT\n")
        rc, err = self._run(
            capsys, ["assemble", str(bad), "-o", str(tmp_path / "o.fa")]
        )
        assert rc == 2
        assert "neither FASTA nor FASTQ" in err

    def test_malformed_fasta(self, tmp_path, capsys):
        bad = tmp_path / "reads.fa"
        bad.write_text("ACGT\n>r1\nACGT\n")  # sequence before any header
        rc, err = self._run(
            capsys, ["assemble", str(bad), "-o", str(tmp_path / "o.fa")]
        )
        assert rc == 2
        assert "malformed" in err

    def test_truncated_fastq(self, tmp_path, capsys):
        bad = tmp_path / "reads.fq"
        bad.write_text("@r0\nACGTACGTACGT\n+\nIIIIIIIIIIII\n@r1\nACGT\n")
        rc, err = self._run(
            capsys, ["assemble", str(bad), "-o", str(tmp_path / "o.fa")]
        )
        assert rc == 2
        assert "truncated" in err

    def test_invalid_bases_strict(self, tmp_path, capsys):
        bad = tmp_path / "reads.fa"
        bad.write_text(">r0\nACGTNNACGTACGTACGT\n")
        rc, err = self._run(
            capsys, ["assemble", str(bad), "-o", str(tmp_path / "o.fa")]
        )
        assert rc == 2

    def test_bad_k(self, tmp_path, capsys):
        reads = tmp_path / "reads.fa"
        reads.write_text(">r0\nACGTACGTACGTACGT\n")
        rc, err = self._run(
            capsys,
            ["assemble", str(reads), "-o", str(tmp_path / "o.fa"), "-k", "1"],
        )
        assert rc == 2
        assert "--k" in err

    @pytest.mark.parametrize(
        "flag,value",
        [
            ("--stage-timeout", "0"),
            ("--stage-timeout", "-3"),
            ("--job-timeout", "0"),
            ("--job-timeout", "-0.5"),
        ],
    )
    def test_nonpositive_deadline_budgets_exit_2(
        self, tmp_path, capsys, flag, value
    ):
        reads = tmp_path / "reads.fa"
        reads.write_text(">r0\nACGTACGTACGTACGT\n")
        rc, err = self._run(
            capsys,
            [
                "assemble",
                str(reads),
                "-o",
                str(tmp_path / "o.fa"),
                "--job-dir",
                str(tmp_path / "job"),
                flag,
                value,
            ],
        )
        assert rc == 2
        assert flag in err and "positive" in err

    def test_resume_without_job_dir(self, tmp_path, capsys):
        reads = tmp_path / "reads.fa"
        reads.write_text(">r0\nACGTACGTACGTACGT\n")
        rc, err = self._run(
            capsys,
            ["assemble", str(reads), "-o", str(tmp_path / "o.fa"), "--resume"],
        )
        assert rc == 2
        assert "--job-dir" in err

    def test_resume_without_journal(self, tmp_path, capsys):
        reads = tmp_path / "reads.fa"
        reads.write_text(">r0\nACGTACGTACGTACGTACGTACGT\n")
        rc, err = self._run(
            capsys,
            [
                "assemble",
                str(reads),
                "-o",
                str(tmp_path / "o.fa"),
                "-k",
                "9",
                "--job-dir",
                str(tmp_path / "job"),
                "--resume",
            ],
        )
        assert rc == 3
        assert "journal" in err


class TestJobCli:
    def test_job_dir_roundtrip(self, tmp_path, capsys):
        reads = tmp_path / "reads.fa"
        reads.write_text(
            ">r0\nACGTACGTACGTACGTACGTACGTACGTACGT\n"
            ">r1\nCGTACGTACGTACGTACGTACGTACGTACGTA\n"
        )
        out = tmp_path / "o.fa"
        rc = main(
            [
                "assemble",
                str(reads),
                "-o",
                str(out),
                "-k",
                "9",
                "--job-dir",
                str(tmp_path / "job"),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "job:" in captured and "completed=True" in captured
        first = read_fasta(out)

        # a resume of the finished job re-emits the identical contigs
        rc = main(
            [
                "assemble",
                str(reads),
                "-o",
                str(out),
                "-k",
                "9",
                "--job-dir",
                str(tmp_path / "job"),
                "--resume",
            ]
        )
        assert rc == 0
        again = read_fasta(out)
        assert [(r.name, r.sequence) for r in again] == [
            (r.name, r.sequence) for r in first
        ]


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"pim-assembler {repro.__version__}"


class TestObservabilityCli:
    def test_trace_and_metrics_out_write_valid_files(
        self, simulated, tmp_path, capsys
    ):
        import json

        from repro.observability.export import validate_trace_file

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main(
            [
                "assemble",
                str(simulated / "reads.fq"),
                "-o",
                str(tmp_path / "c.fa"),
                "-k",
                "15",
                "--trace-out",
                str(trace),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"observability: wrote {trace}" in out
        assert validate_trace_file(trace) == []
        doc = json.loads(metrics.read_text())
        assert doc["metrics"]["pim.commands.total"]["value"] > 0
        assert doc["subarray_heatmap"]

    def test_trace_out_requires_pim_engine(self, simulated, tmp_path, capsys):
        rc = main(
            [
                "assemble",
                str(simulated / "reads.fq"),
                "-o",
                str(tmp_path / "c.fa"),
                "--engine",
                "software",
                "--trace-out",
                str(tmp_path / "t.json"),
            ]
        )
        assert rc == 2
        assert "--engine pim" in capsys.readouterr().err

    def test_inspect_renders_job_accounting(self, simulated, tmp_path, capsys):
        job_dir = tmp_path / "job"
        rc = main(
            [
                "assemble",
                str(simulated / "reads.fq"),
                "-o",
                str(tmp_path / "c.fa"),
                "-k",
                "15",
                "--job-dir",
                str(job_dir),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(["inspect", str(job_dir), "--top-k", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-stage accounting" in out
        assert "hashmap" in out and "traverse" in out
        assert "hottest mnemonics (top 3)" in out

    def test_inspect_missing_job_dir_exits_2(self, tmp_path, capsys):
        rc = main(["inspect", str(tmp_path / "nothing-here")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "no job journal" in err

    def test_inspect_bad_top_k(self, tmp_path, capsys):
        rc = main(["inspect", str(tmp_path), "--top-k", "0"])
        assert rc == 2
        assert "--top-k" in capsys.readouterr().err


class TestScaffold:
    def test_scaffolds_fragmented_contigs(self, tmp_path, capsys):
        """Simulate paired reads, hand the CLI two gap-separated
        contigs, and check it joins them with an N run."""
        from repro.assembly.contigs import Contig
        from repro.genome.io_fasta import (
            FastaRecord,
            FastqRecord,
            read_fasta,
            write_fasta,
            write_fastq,
        )
        from repro.genome.paired import PairedReadSimulator
        from repro.genome.reference import synthetic_chromosome

        reference = synthetic_chromosome(3000, seed=321)
        contigs_fa = tmp_path / "contigs.fa"
        write_fasta(
            contigs_fa,
            [
                FastaRecord("contigA", str(reference[0:1200])),
                FastaRecord("contigB", str(reference[1400:2600])),
            ],
        )
        sim = PairedReadSimulator(
            read_length=60, insert_mean=500, insert_sd=30, seed=322
        )
        pairs = sim.sample(reference, sim.pairs_for_coverage(3000, 30))
        reads_fq = tmp_path / "pairs.fq"
        records = []
        for pair in pairs:
            records.append(FastqRecord(pair.left.name, str(pair.left.sequence)))
            records.append(FastqRecord(pair.right.name, str(pair.right.sequence)))
        write_fastq(reads_fq, records)

        out = tmp_path / "scaffolds.fa"
        rc = main(
            [
                "scaffold",
                str(contigs_fa),
                str(reads_fq),
                "-o",
                str(out),
                "--insert-mean",
                "500",
            ]
        )
        assert rc == 0
        scaffolds = read_fasta(out)
        assert len(scaffolds) == 1
        assert "N" in scaffolds[0].sequence
        assert "1 joins" in capsys.readouterr().out

    def test_rejects_unpaired_input(self, tmp_path):
        from repro.genome.io_fasta import FastqRecord, write_fastq

        contigs_fa = tmp_path / "c.fa"
        contigs_fa.write_text(">c0\nACGTACGTACGTACGTACGTACGTACGT\n")
        reads_fq = tmp_path / "r.fq"
        write_fastq(reads_fq, [FastqRecord("solo", "ACGTACGT")])
        rc = main(
            [
                "scaffold",
                str(contigs_fa),
                str(reads_fq),
                "-o",
                str(tmp_path / "s.fa"),
            ]
        )
        assert rc == 2


class TestServe:
    """The multi-tenant batch driver and its exit-code taxonomy."""

    def write_reads(self, tmp_path, seed=11, name="reads.fa"):
        import random

        rng = random.Random(seed)
        genome = "".join(rng.choice("ACGT") for _ in range(250))
        records = [
            f">r{i}\n{genome[i : i + 50]}"
            for i in range(0, 200, 11)
        ]
        path = tmp_path / name
        path.write_text("\n".join(records) + "\n")
        return path

    def write_manifest(self, tmp_path, payload, name="batch.json"):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_batch_completes_exit_0_with_outputs(self, tmp_path, capsys):
        reads = self.write_reads(tmp_path)
        manifest = self.write_manifest(
            tmp_path,
            {
                "workers": 2,
                "jobs": [
                    {
                        "tenant": "acme",
                        "name": "a",
                        "reads": reads.name,
                        "k": 11,
                        "output": "a.fa",
                    },
                    {
                        "tenant": "beta",
                        "name": "b",
                        "reads": reads.name,
                        "k": 11,
                        "engine": "bulk",
                        "deadline_s": 600,
                    },
                ],
            },
        )
        rc = main(["serve", str(manifest)])
        out = capsys.readouterr().out
        assert rc == 0
        assert (tmp_path / "a.fa").exists()
        assert "2/2 completed" in out
        assert (manifest.parent / "batch.json.jobs").is_dir()

    def test_overload_sheds_typed_and_exits_4(self, tmp_path, capsys):
        reads = self.write_reads(tmp_path)
        jobs = [
            {"tenant": "acme", "name": f"j{i}", "reads": reads.name, "k": 11}
            for i in range(3)
        ]
        manifest = self.write_manifest(
            tmp_path,
            {"tenants": {"acme": {"max_queued": 2}}, "jobs": jobs},
        )
        rc = main(["serve", str(manifest)])
        out = capsys.readouterr().out
        assert rc == 4
        assert "shed: acme/j2" in out
        assert "[tenant-queue-full]" in out
        assert "2/2 completed" in out

    def test_job_failure_exits_3(self, tmp_path, capsys):
        reads = self.write_reads(tmp_path)
        manifest = self.write_manifest(
            tmp_path,
            {
                "jobs": [
                    {"tenant": "a", "reads": reads.name, "k": 11},
                    {"tenant": "b", "reads": "missing.fq", "k": 11},
                ]
            },
        )
        rc = main(["serve", str(manifest)])
        captured = capsys.readouterr()
        assert rc == 3
        assert "not found" in captured.err

    @pytest.mark.parametrize(
        "payload,needle",
        [
            ({}, "jobs"),
            ({"jobs": []}, "jobs"),
            ({"jobs": [{"tenant": "a"}]}, "reads"),
            ({"jobs": [{"reads": "r.fa"}]}, "tenant"),
            ({"jobs": "nope"}, "jobs"),
        ],
    )
    def test_malformed_manifest_exits_2(
        self, tmp_path, capsys, payload, needle
    ):
        manifest = self.write_manifest(tmp_path, payload)
        rc = main(["serve", str(manifest)])
        err = capsys.readouterr().err
        assert rc == 2
        assert needle in err
        assert "Traceback" not in err

    def test_manifest_not_json_exits_2(self, tmp_path, capsys):
        manifest = tmp_path / "bad.json"
        manifest.write_text("{not json")
        rc = main(["serve", str(manifest)])
        assert rc == 2
        assert "JSON" in capsys.readouterr().err

    def test_observability_exports(self, tmp_path, capsys):
        import json

        reads = self.write_reads(tmp_path)
        manifest = self.write_manifest(
            tmp_path,
            {"jobs": [{"tenant": "a", "reads": reads.name, "k": 11}]},
        )
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        rc = main(
            [
                "serve",
                str(manifest),
                "--metrics-out",
                str(metrics),
                "--trace-out",
                str(trace),
            ]
        )
        assert rc == 0
        snapshot = json.loads(metrics.read_text())["metrics"]
        assert snapshot["service.admitted"]["value"] == 1
        assert snapshot["service.completed"]["value"] == 1
        assert snapshot["service.latency_ms.a"]["count"] == 1
        assert "service" in trace.read_text()


class TestExperiments:
    def test_single_experiment(self, capsys):
        rc = main(["experiments", "--only", "area"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Area overhead" in out and "4.98" in out

    def test_fig3b(self, capsys):
        rc = main(["experiments", "--only", "fig3b"])
        assert rc == 0
        assert "P-A" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        rc = main(
            ["experiments", "--only", "area", "--csv-dir", str(tmp_path / "csv")]
        )
        assert rc == 0
        assert (tmp_path / "csv" / "fig3b_throughput.csv").exists()
        assert (tmp_path / "csv" / "fig9_execution.csv").exists()


class TestIntegrityCli:
    """The data-at-rest integrity flags on assemble and serve."""

    def _reads(self, tmp_path, seed=11):
        import random

        rng = random.Random(seed)
        genome = "".join(rng.choice("ACGT") for _ in range(250))
        records = [
            f">r{i}\n{genome[i : i + 50]}" for i in range(0, 200, 7)
        ]
        path = tmp_path / "reads.fa"
        path.write_text("\n".join(records) + "\n")
        return path

    def _fails(self, capsys, argv):
        rc = main(argv)
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error: ")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err
        return captured.err

    @pytest.mark.parametrize("value", ["0", "-0.064"])
    def test_nonpositive_retention_on_assemble_exits_2(
        self, tmp_path, capsys, value
    ):
        reads = self._reads(tmp_path)
        err = self._fails(
            capsys,
            [
                "assemble",
                str(reads),
                "-o",
                str(tmp_path / "o.fa"),
                "--retention-interval-s",
                value,
            ],
        )
        assert "--retention-interval-s" in err and "positive" in err

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_nonpositive_retention_on_serve_exits_2(
        self, tmp_path, capsys, value
    ):
        # validated before the manifest is even opened
        err = self._fails(
            capsys,
            [
                "serve",
                str(tmp_path / "batch.json"),
                "--retention-interval-s",
                value,
            ],
        )
        assert "--retention-interval-s" in err and "positive" in err

    def test_ecc_requires_pim_engine(self, tmp_path, capsys):
        reads = self._reads(tmp_path)
        err = self._fails(
            capsys,
            [
                "assemble",
                str(reads),
                "-o",
                str(tmp_path / "o.fa"),
                "--engine",
                "software",
                "--ecc",
                "secded",
            ],
        )
        assert "--engine pim" in err

    def test_assemble_reports_integrity_summary(self, tmp_path, capsys):
        reads = self._reads(tmp_path)
        out = tmp_path / "o.fa"
        rc = main(
            [
                "assemble",
                str(reads),
                "-o",
                str(out),
                "-k",
                "11",
                "--ecc",
                "secded",
                "--retention-interval-s",
                "1e-4",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "integrity:" in captured.out
        assert "refresh windows" in captured.out
        assert read_fasta(out)

    def test_serve_batch_defaults_apply_to_jobs(self, tmp_path, capsys):
        import json

        reads = self._reads(tmp_path)
        manifest = tmp_path / "batch.json"
        manifest.write_text(
            json.dumps(
                {"jobs": [{"tenant": "a", "reads": reads.name, "k": 11}]}
            )
        )
        rc = main(
            [
                "serve",
                str(manifest),
                "--ecc",
                "secded",
                "--retention-interval-s",
                "1e-4",
            ]
        )
        assert rc == 0
        assert "completed" in capsys.readouterr().out


class TestTelemetryCli:
    """--telemetry-out on assemble/serve, and inspect on both shapes."""

    def write_reads(self, tmp_path, seed=11, name="reads.fa"):
        import random

        rng = random.Random(seed)
        genome = "".join(rng.choice("ACGT") for _ in range(250))
        records = [
            f">r{i}\n{genome[i : i + 50]}" for i in range(0, 200, 11)
        ]
        path = tmp_path / name
        path.write_text("\n".join(records) + "\n")
        return path

    def write_manifest(self, tmp_path, payload, name="batch.json"):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_assemble_telemetry_out_validates(self, simulated, tmp_path, capsys):
        from repro.observability.validate import validate_exposition_file

        telemetry = tmp_path / "telemetry.prom"
        rc = main(
            [
                "assemble",
                str(simulated / "reads.fq"),
                "-o",
                str(tmp_path / "contigs.fa"),
                "-k",
                "15",
                "--telemetry-out",
                str(telemetry),
            ]
        )
        assert rc == 0
        assert "observability: wrote" in capsys.readouterr().out
        assert validate_exposition_file(telemetry) == []
        text = telemetry.read_text()
        assert "power_peak_w" in text
        assert "pim_commands_total" in text
        # the JSON companion carries the power summary
        import json

        doc = json.loads((tmp_path / "telemetry.prom.json").read_text())
        assert doc["power"]["total_energy_nj"] > 0
        assert doc["power"]["events"] > 0

    def test_telemetry_out_requires_pim_engine(self, simulated, tmp_path, capsys):
        rc = main(
            [
                "assemble",
                str(simulated / "reads.fq"),
                "-o",
                str(tmp_path / "c.fa"),
                "--engine",
                "software",
                "--telemetry-out",
                str(tmp_path / "t.prom"),
            ]
        )
        assert rc == 2
        assert "--telemetry-out" in capsys.readouterr().err

    def test_serve_slos_alerts_telemetry(self, tmp_path, capsys):
        from repro.observability.validate import validate_exposition_file

        reads = self.write_reads(tmp_path)
        manifest = self.write_manifest(
            tmp_path,
            {
                "workers": 2,
                "slos": {"acme": {"latency_ms": 600000}},
                "alerts": [
                    "service.completed >= 1",
                    {
                        "name": "budget-burn",
                        "expr": "burn_rate(acme) > 1",
                        "severity": "page",
                    },
                ],
                "jobs": [
                    {"tenant": "acme", "name": "a", "reads": reads.name,
                     "k": 11},
                    {"tenant": "beta", "name": "b", "reads": reads.name,
                     "k": 11},
                ],
            },
        )
        telemetry = tmp_path / "svc.prom"
        rc = main(
            ["serve", str(manifest), "--telemetry-out", str(telemetry)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "alert [warning]: service.completed >= 1" in out
        assert validate_exposition_file(telemetry) == []
        text = telemetry.read_text()
        assert "slo_burn_rate_acme" in text
        assert "alerts_fired_total 1" in text
        # the scheduler audited its drain into the job root
        job_root = manifest.parent / "batch.json.jobs"
        assert (job_root / "audit.jsonl").is_file()

    def test_serve_rejects_bad_alert_rule(self, tmp_path, capsys):
        reads = self.write_reads(tmp_path)
        manifest = self.write_manifest(
            tmp_path,
            {
                "alerts": ["not a rule"],
                "jobs": [
                    {"tenant": "acme", "name": "a", "reads": reads.name}
                ],
            },
        )
        rc = main(["serve", str(manifest)])
        assert rc == 2
        assert "alert rule" in capsys.readouterr().err

    def test_serve_rejects_bad_slo(self, tmp_path, capsys):
        reads = self.write_reads(tmp_path)
        manifest = self.write_manifest(
            tmp_path,
            {
                "slos": {"acme": {"latency_ms": -1}},
                "jobs": [
                    {"tenant": "acme", "name": "a", "reads": reads.name}
                ],
            },
        )
        rc = main(["serve", str(manifest)])
        assert rc == 2

    def test_inspect_service_root_rollup(self, tmp_path, capsys):
        reads = self.write_reads(tmp_path)
        manifest = self.write_manifest(
            tmp_path,
            {
                "workers": 2,
                "slos": {"acme": {"latency_ms": 600000}},
                "jobs": [
                    {"tenant": "acme", "name": "a", "reads": reads.name,
                     "k": 11},
                    {"tenant": "beta", "name": "b", "reads": reads.name,
                     "k": 11},
                ],
            },
        )
        assert main(["serve", str(manifest)]) == 0
        capsys.readouterr()
        job_root = manifest.parent / "batch.json.jobs"
        rc = main(["inspect", str(job_root)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "per-tenant rollup" in out
        assert "acme" in out and "beta" in out
        assert "power (top energy mnemonics, all journaled jobs)" in out
        assert "slo[acme]" in out

    def test_inspect_job_dir_has_power_section(self, tmp_path, capsys):
        reads = self.write_reads(tmp_path)
        manifest = self.write_manifest(
            tmp_path,
            {
                "jobs": [
                    {"tenant": "acme", "name": "a", "reads": reads.name,
                     "k": 11}
                ]
            },
        )
        assert main(["serve", str(manifest)]) == 0
        capsys.readouterr()
        job_dir = manifest.parent / "batch.json.jobs" / "acme" / "a"
        rc = main(["inspect", str(job_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "power (top energy mnemonics)" in out
        assert "average power:" in out

    def test_inspect_renders_flight_dump(self, tmp_path, capsys):
        from repro.observability.flightrec import FlightRecorder

        reads = self.write_reads(tmp_path)
        manifest = self.write_manifest(
            tmp_path,
            {
                "jobs": [
                    {"tenant": "acme", "name": "a", "reads": reads.name,
                     "k": 11}
                ]
            },
        )
        assert main(["serve", str(manifest)]) == 0
        capsys.readouterr()
        job_dir = manifest.parent / "batch.json.jobs" / "acme" / "a"
        flight = FlightRecorder()
        flight.on_command("AAP1", 1, 5.0, 2.0, "hashmap", sim_ns=1.0)
        flight.dump(job_dir, reason="synthetic post-mortem")
        rc = main(["inspect", str(job_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flight recorder dump" in out
        assert "synthetic post-mortem" in out
