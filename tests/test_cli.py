"""The command-line interface, end to end."""

import pytest

from repro.cli import main
from repro.genome.io_fasta import read_fasta


@pytest.fixture()
def simulated(tmp_path):
    out = tmp_path / "sim"
    rc = main(
        [
            "simulate",
            "-o",
            str(out),
            "--length",
            "1500",
            "--coverage",
            "25",
            "--read-length",
            "60",
            "--seed",
            "5",
        ]
    )
    assert rc == 0
    return out


class TestSimulate:
    def test_writes_reference_and_reads(self, simulated):
        assert (simulated / "reference.fa").exists()
        assert (simulated / "reads.fq").exists()
        ref = read_fasta(simulated / "reference.fa")[0]
        assert len(ref.sequence) == 1500

    def test_paired_mode(self, tmp_path):
        out = tmp_path / "paired"
        rc = main(
            [
                "simulate",
                "-o",
                str(out),
                "--length",
                "2000",
                "--coverage",
                "20",
                "--read-length",
                "60",
                "--paired",
            ]
        )
        assert rc == 0
        text = (out / "reads.fq").read_text()
        assert "/1" in text and "/2" in text


class TestAssemble:
    @pytest.mark.parametrize("engine", ["pim", "software", "bidirected"])
    def test_engines_produce_contigs(self, simulated, tmp_path, engine, capsys):
        out = tmp_path / f"{engine}.fa"
        rc = main(
            [
                "assemble",
                str(simulated / "reads.fq"),
                "-o",
                str(out),
                "-k",
                "17",
                "--engine",
                engine,
            ]
        )
        assert rc == 0
        contigs = read_fasta(out)
        assert contigs
        total = sum(len(c.sequence) for c in contigs)
        assert total > 1000
        captured = capsys.readouterr()
        assert "contigs" in captured.out

    def test_pim_engine_reports_simulated_time(self, simulated, tmp_path, capsys):
        out = tmp_path / "c.fa"
        main(
            ["assemble", str(simulated / "reads.fq"), "-o", str(out), "-k", "15"]
        )
        assert "simulated PIM time" in capsys.readouterr().out

    def test_correction_flag(self, simulated, tmp_path, capsys):
        out = tmp_path / "c.fa"
        rc = main(
            [
                "assemble",
                str(simulated / "reads.fq"),
                "-o",
                str(out),
                "-k",
                "17",
                "--engine",
                "software",
                "--correct",
            ]
        )
        assert rc == 0
        assert "correction:" in capsys.readouterr().out

    def test_fasta_input(self, tmp_path):
        reads_fa = tmp_path / "reads.fa"
        reads_fa.write_text(">r0\nACGTACGTACGTACGTACGT\n>r1\nCGTACGTACGTACGTACGTA\n")
        out = tmp_path / "c.fa"
        rc = main(
            [
                "assemble",
                str(reads_fa),
                "-o",
                str(out),
                "-k",
                "9",
                "--engine",
                "software",
            ]
        )
        assert rc == 0

    def test_empty_input_exits(self, tmp_path):
        empty = tmp_path / "empty.fa"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["assemble", str(empty), "-o", str(tmp_path / "o.fa")])


class TestScaffold:
    def test_scaffolds_fragmented_contigs(self, tmp_path, capsys):
        """Simulate paired reads, hand the CLI two gap-separated
        contigs, and check it joins them with an N run."""
        from repro.assembly.contigs import Contig
        from repro.genome.io_fasta import (
            FastaRecord,
            FastqRecord,
            read_fasta,
            write_fasta,
            write_fastq,
        )
        from repro.genome.paired import PairedReadSimulator
        from repro.genome.reference import synthetic_chromosome

        reference = synthetic_chromosome(3000, seed=321)
        contigs_fa = tmp_path / "contigs.fa"
        write_fasta(
            contigs_fa,
            [
                FastaRecord("contigA", str(reference[0:1200])),
                FastaRecord("contigB", str(reference[1400:2600])),
            ],
        )
        sim = PairedReadSimulator(
            read_length=60, insert_mean=500, insert_sd=30, seed=322
        )
        pairs = sim.sample(reference, sim.pairs_for_coverage(3000, 30))
        reads_fq = tmp_path / "pairs.fq"
        records = []
        for pair in pairs:
            records.append(FastqRecord(pair.left.name, str(pair.left.sequence)))
            records.append(FastqRecord(pair.right.name, str(pair.right.sequence)))
        write_fastq(reads_fq, records)

        out = tmp_path / "scaffolds.fa"
        rc = main(
            [
                "scaffold",
                str(contigs_fa),
                str(reads_fq),
                "-o",
                str(out),
                "--insert-mean",
                "500",
            ]
        )
        assert rc == 0
        scaffolds = read_fasta(out)
        assert len(scaffolds) == 1
        assert "N" in scaffolds[0].sequence
        assert "1 joins" in capsys.readouterr().out

    def test_rejects_unpaired_input(self, tmp_path):
        from repro.genome.io_fasta import FastqRecord, write_fastq

        contigs_fa = tmp_path / "c.fa"
        contigs_fa.write_text(">c0\nACGTACGTACGTACGTACGTACGTACGT\n")
        reads_fq = tmp_path / "r.fq"
        write_fastq(reads_fq, [FastqRecord("solo", "ACGTACGT")])
        with pytest.raises(SystemExit):
            main(
                [
                    "scaffold",
                    str(contigs_fa),
                    str(reads_fq),
                    "-o",
                    str(tmp_path / "s.fa"),
                ]
            )


class TestExperiments:
    def test_single_experiment(self, capsys):
        rc = main(["experiments", "--only", "area"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Area overhead" in out and "4.98" in out

    def test_fig3b(self, capsys):
        rc = main(["experiments", "--only", "fig3b"])
        assert rc == 0
        assert "P-A" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        rc = main(
            ["experiments", "--only", "area", "--csv-dir", str(tmp_path / "csv")]
        )
        assert rc == 0
        assert (tmp_path / "csv" / "fig3b_throughput.csv").exists()
        assert (tmp_path / "csv" / "fig9_execution.csv").exists()
