"""``repro inspect``: post-hoc accounting from a job journal."""

import pytest

from repro.errors import InputError
from repro.genome.reads import ReadSimulator
from repro.genome.reference import synthetic_chromosome
from repro.observability.inspect import (
    format_stage_table,
    format_top_commands,
    inspect_job,
    render_job_inspection,
)
from repro.runtime.jobs import JobConfig, JobRunner


@pytest.fixture(scope="module")
def reads():
    reference = synthetic_chromosome(900, seed=21)
    sim = ReadSimulator(read_length=60, seed=22)
    return sim.sample(reference, sim.reads_for_coverage(900, 8.0))


@pytest.fixture()
def finished_job(tmp_path, reads):
    runner = JobRunner(tmp_path / "job", JobConfig(k=13))
    outcome = runner.run(reads)
    return tmp_path / "job", runner, outcome


class TestInspectJob:
    def test_missing_journal_raises_input_error(self, tmp_path):
        with pytest.raises(InputError):
            inspect_job(tmp_path / "nope")

    def test_rehydrates_ledger_matching_live_run(self, finished_job):
        job_dir, runner, outcome = finished_job
        info = inspect_job(job_dir)
        assert info["stage"] == "result"
        live = runner._pim.stats
        rehydrated = info["ledger"]
        for stage in ("hashmap", "debruijn", "traverse"):
            assert rehydrated.totals(stage).time_ns == pytest.approx(
                live.totals(stage).time_ns
            )
        assert rehydrated.totals().total_commands == live.totals().total_commands

    def test_occupancy_recovered_from_snapshot(self, finished_job):
        job_dir, _, _ = finished_job
        info = inspect_job(job_dir)
        assert info["subarrays"]
        assert all(r["rows_used"] > 0 for r in info["subarrays"])


class TestRendering:
    def test_stage_table_rows_and_total(self, finished_job):
        job_dir, runner, _ = finished_job
        table = format_stage_table(inspect_job(job_dir)["ledger"])
        assert "hashmap" in table and "traverse" in table
        assert "total" in table
        assert "100.0%" in table
        # the table's per-stage time is the ledger's own totals
        hashmap_us = runner._pim.stats.totals("hashmap").time_ns / 1e3
        assert f"{hashmap_us:.3f}" in table

    def test_top_commands_ranked_by_count(self, finished_job):
        job_dir, _, _ = finished_job
        ledger = inspect_job(job_dir)["ledger"]
        listing = format_top_commands(ledger, top_k=3)
        lines = [l for l in listing.splitlines()[1:] if l.strip()]
        assert len(lines) == 3
        counts = [int(line.split()[1]) for line in lines]
        assert counts == sorted(counts, reverse=True)

    def test_top_commands_empty_ledger(self):
        from repro.core.stats import StatsLedger

        assert "no commands" in format_top_commands(StatsLedger())

    def test_full_report(self, finished_job):
        job_dir, _, _ = finished_job
        report = render_job_inspection(job_dir)
        assert "last journaled stage: result" in report
        assert "per-stage accounting" in report
        assert "hottest mnemonics" in report
        assert "sub-array occupancy" in report
        assert "retry-ladder decisions: 0" in report

    def test_report_on_empty_journal(self, tmp_path):
        from repro.runtime.checkpoint import JobJournal

        journal = JobJournal(tmp_path / "fresh")
        journal.create({"config": {"k": 13}, "reads": 0})
        report = render_job_inspection(tmp_path / "fresh")
        assert "<none — no stage completed>" in report
