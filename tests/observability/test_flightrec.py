"""Flight recorder: bounded rings, dump/load, failure-path dumps."""

import json

import pytest

from repro.errors import StageTimeoutError
from repro.observability.flightrec import FLIGHT_FILENAME, FlightRecorder
from repro.observability.session import ObservabilitySession
from repro.observability.spans import Tracer


class TestRingBounds:
    def test_command_ring_is_bounded(self):
        flight = FlightRecorder(command_capacity=16)
        for i in range(100):
            flight.on_command("AAP1", 1, 1.0, 1.0, None, sim_ns=float(i))
        snap = flight.snapshot("test")
        assert len(snap["commands"]) == 16
        # oldest entries evicted: the survivors are the most recent
        assert snap["commands"][0]["sim_ns"] == 84.0
        assert snap["commands"][-1]["sim_ns"] == 99.0

    def test_all_rings_bounded(self):
        flight = FlightRecorder(
            command_capacity=2, span_capacity=2, event_capacity=2,
            alert_capacity=2,
        )
        tracer = Tracer(sim_clock=lambda: 0.0)
        tracer.listener = flight
        for i in range(5):
            flight.on_command("AAP1", 1, 1.0, 1.0, None)
            with tracer.span(f"s{i}"):
                pass
            tracer.event(f"e{i}")
        snap = flight.snapshot("x")
        assert len(snap["commands"]) == 2
        assert len(snap["spans"]) == 2
        assert len(snap["events"]) == 2
        assert snap["spans"][-1]["name"] == "s4"


class TestTracerListener:
    def test_span_close_and_event_feed_the_rings(self):
        flight = FlightRecorder()
        tracer = Tracer(sim_clock=lambda: 7.0)
        tracer.listener = flight
        with tracer.span("attempt", lane="svc", tenant="acme"):
            tracer.event("hiccup", code=3)
        snap = flight.snapshot("x")
        assert snap["spans"][0]["name"] == "attempt"
        assert snap["spans"][0]["attributes"]["tenant"] == "acme"
        assert snap["events"][0]["name"] == "hiccup"

    def test_no_listener_is_fine(self):
        tracer = Tracer(sim_clock=lambda: 0.0)
        with tracer.span("a"):
            tracer.event("b")
        assert len(tracer.spans()) == 1


class TestDumpLoad:
    def test_round_trip(self, tmp_path):
        flight = FlightRecorder()
        flight.on_command("MEM_WR", 2, 5.0, 1.5, "hashmap", sim_ns=10.0,
                          lane="acme")
        path = flight.dump(tmp_path, reason="unit test")
        assert path.name == FLIGHT_FILENAME
        assert flight.dumps == 1
        loaded = FlightRecorder.load(tmp_path)
        assert loaded["format"] == "repro-flight-v1"
        assert loaded["reason"] == "unit test"
        assert loaded["commands"][0]["command"] == "MEM_WR"
        assert loaded["commands"][0]["lane"] == "acme"

    def test_dump_never_raises_on_unwritable_dir(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not dir")
        flight = FlightRecorder()
        flight.dump(blocker / "sub", reason="x")  # mkdir fails -> swallowed
        assert flight.dumps == 1  # the attempt is still counted

    def test_load_missing_or_corrupt(self, tmp_path):
        assert FlightRecorder.load(tmp_path) is None
        (tmp_path / FLIGHT_FILENAME).write_text("{ not json")
        assert FlightRecorder.load(tmp_path) is None


class TestFailureDumps:
    """A ReproError escaping the job runner leaves flight.json behind."""

    def _tiny_reads(self):
        from repro.genome.reads import ReadSimulator
        from repro.genome.reference import synthetic_chromosome

        reference = synthetic_chromosome(600, seed=3)
        sim = ReadSimulator(read_length=60, seed=4)
        return sim.sample(reference, sim.reads_for_coverage(600, 6.0))

    def test_stage_timeout_dumps_flight(self, tmp_path):
        from repro.runtime.jobs import JobConfig, JobRunner

        session = ObservabilitySession()
        job_dir = tmp_path / "job"
        with session.activate():
            runner = JobRunner(
                job_dir,
                JobConfig(k=15, stage_timeout_s=1e-9),  # expires instantly
            )
            with pytest.raises(StageTimeoutError):
                runner.run(self._tiny_reads())
        dump = json.loads((job_dir / FLIGHT_FILENAME).read_text())
        assert dump["format"] == "repro-flight-v1"
        assert "StageTimeoutError" in dump["reason"]
        assert session.flight.dumps == 1

    def test_successful_run_leaves_no_dump(self, tmp_path):
        from repro.runtime.jobs import JobConfig, JobRunner

        session = ObservabilitySession()
        job_dir = tmp_path / "job"
        with session.activate():
            JobRunner(job_dir, JobConfig(k=15)).run(self._tiny_reads())
        assert not (job_dir / FLIGHT_FILENAME).exists()
        assert session.flight.dumps == 0
