"""Prometheus exposition writer + its schema validator, round-trip."""

import os

import pytest

from repro.observability.exposition import (
    render_prometheus,
    sanitize_metric_name,
    write_exposition,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.validate import validate_exposition_file


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("service.completed").inc(7)
    registry.counter("pim.commands.AAP2").inc(123)
    registry.gauge("power.peak_w").set(2.125)
    registry.gauge("queue.depth.tenant-a").set(0)
    hist = registry.histogram("service.latency_ms.tenant-a")
    for value in (0.5, 3.0, 3.0, 17.0, 250.0):
        hist.observe(value)
    return registry


class TestSanitize:
    def test_dots_flatten(self):
        assert sanitize_metric_name("a.b.c") == "a_b_c"

    def test_illegal_chars_replaced(self):
        assert sanitize_metric_name("rate(x) > 1") == "rate_x____1"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives").startswith("_")


class TestRender:
    def test_counters_and_gauges(self):
        text = render_prometheus(_populated_registry())
        assert "# TYPE service_completed counter" in text
        assert "service_completed 7" in text
        assert "# TYPE power_peak_w gauge" in text
        assert "power_peak_w 2.125" in text
        # the dotted original rides in HELP for reverse mapping
        assert "# HELP power_peak_w repro gauge power.peak_w" in text

    def test_histogram_expansion(self):
        text = render_prometheus(_populated_registry())
        flat = "service_latency_ms_tenant_a"
        assert f'{flat}_bucket{{le="+Inf"}} 5' in text
        assert f"{flat}_count 5" in text
        assert f"{flat}_sum 273.5" in text
        assert f"# TYPE {flat}_p95 gauge" in text

    def test_nonempty_render_has_trailing_newline(self):
        assert render_prometheus(_populated_registry()).endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_round_trip_validates_clean(self, tmp_path):
        path = tmp_path / "telemetry.prom"
        write_exposition(path, _populated_registry())
        assert validate_exposition_file(path) == []

    def test_unset_gauge_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        assert render_prometheus(registry) == ""


class TestAtomicWrite:
    def test_no_temp_residue(self, tmp_path):
        path = tmp_path / "t.prom"
        write_exposition(path, _populated_registry())
        write_exposition(path, _populated_registry())  # overwrite
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.prom"]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "t.prom"
        write_exposition(path, _populated_registry())
        assert path.is_file()

    def test_json_companion_with_extra(self, tmp_path):
        import json

        path = tmp_path / "t.prom"
        write_exposition(
            path, _populated_registry(), extra={"power": {"events": 3}}
        )
        doc = json.loads((tmp_path / "t.prom.json").read_text())
        assert doc["power"] == {"events": 3}
        assert doc["metrics"]["service.completed"]["value"] == 7

    def test_failed_write_leaves_old_file(self, tmp_path, monkeypatch):
        path = tmp_path / "t.prom"
        write_exposition(path, _populated_registry())
        before = path.read_text()

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            write_exposition(path, MetricsRegistry())
        assert path.read_text() == before
        # and the temp file was cleaned up
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.prom"]


class TestValidator:
    def test_flags_sample_without_type(self, tmp_path):
        path = tmp_path / "bad.prom"
        path.write_text("orphan_metric 3\n")
        problems = validate_exposition_file(path)
        assert any("without a # TYPE" in p for p in problems)

    def test_flags_noncumulative_buckets(self, tmp_path):
        path = tmp_path / "bad.prom"
        path.write_text(
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 9\n"
            "h_count 5\n"
        )
        problems = validate_exposition_file(path)
        assert any("not cumulative" in p for p in problems)

    def test_flags_missing_inf_bucket(self, tmp_path):
        path = tmp_path / "bad.prom"
        path.write_text(
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            "h_sum 9\n"
            "h_count 5\n"
        )
        problems = validate_exposition_file(path)
        assert any("+Inf" in p for p in problems)

    def test_flags_duplicate_sample(self, tmp_path):
        path = tmp_path / "bad.prom"
        path.write_text("# TYPE c counter\nc 1\nc 2\n")
        problems = validate_exposition_file(path)
        assert any("duplicate" in p for p in problems)

    def test_flags_bad_value(self, tmp_path):
        path = tmp_path / "bad.prom"
        path.write_text("# TYPE c counter\nc banana\n")
        problems = validate_exposition_file(path)
        assert any("bad sample value" in p for p in problems)

    def test_missing_file_is_a_problem(self, tmp_path):
        problems = validate_exposition_file(tmp_path / "nope.prom")
        assert problems and "cannot load" in problems[0]

    def test_cli_dispatches_on_suffix(self, tmp_path, capsys):
        from repro.observability.validate import main

        good = tmp_path / "ok.prom"
        write_exposition(good, _populated_registry())
        assert main([str(good)]) == 0
        assert "ok" in capsys.readouterr().out
