"""Metrics registry: primitives, the Recorder protocol, activation."""

import pytest

from repro.core.stats import StatsLedger
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Recorder,
    active_registry,
    inc,
    observe,
    set_gauge,
)


class TestPrimitives:
    def test_counter_monotone(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_overwrites(self):
        g = Gauge("g")
        assert g.value is None
        g.set(5)
        g.set(2)
        assert g.value == 2

    def test_histogram_tracks_shape(self):
        h = Histogram("h")
        for v in (1, 2, 3, 1000):
            h.observe(v)
        assert h.count == 4
        assert h.min == 1 and h.max == 1000
        assert h.mean == pytest.approx(1006 / 4)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        # 1 -> bucket 0 (<=1), 2 -> bucket 1, 3 -> bucket 2, 1000 -> bucket 10
        assert snap["buckets"] == {"le_2e0": 1, "le_2e1": 1, "le_2e2": 1, "le_2e10": 1}

    def test_histogram_saturates_top_bucket(self):
        h = Histogram("h")
        h.observe(2.0**40)
        assert h.buckets[Histogram.MAX_BUCKET] == 1


class TestRegistry:
    def test_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert reg.counter("x") is c
        with pytest.raises(TypeError):
            reg.gauge("x")
        assert reg.get("missing") is None

    def test_registry_satisfies_recorder_protocol(self):
        assert isinstance(MetricsRegistry(), Recorder)

    def test_on_command_fans_out(self):
        reg = MetricsRegistry()
        reg.on_command("AAP1", 3, 120.0, 9.0, "hashmap")
        reg.on_command("AAP1", 1, 40.0, 3.0, None)
        assert reg.counter("pim.commands.AAP1").value == 4
        assert reg.counter("pim.time_ns.AAP1").value == 160.0
        assert reg.counter("pim.energy_nj.AAP1").value == 12.0
        assert reg.counter("pim.commands.total").value == 4
        assert reg.counter("pim.stage_time_ns.hashmap").value == 120.0

    def test_snapshot_is_sorted_and_json_shaped(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        reg.histogram("c").observe(2)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["a"] == {"type": "gauge", "value": 1}
        assert snap["b"] == {"type": "counter", "value": 1.0}


class TestModuleHelpers:
    def test_inactive_helpers_noop(self):
        assert active_registry() is None
        inc("nothing")
        observe("nothing", 1)
        set_gauge("nothing", 1)  # must not raise, must not register

    def test_activation_routes_helpers(self):
        reg = MetricsRegistry()
        with reg.activate():
            assert active_registry() is reg
            inc("jobs", 2)
            observe("sizes", 5)
            set_gauge("depth", 3)
        assert active_registry() is None
        assert reg.counter("jobs").value == 2
        assert reg.histogram("sizes").count == 1
        assert reg.gauge("depth").value == 3


class TestLedgerForwarding:
    def test_ledger_forwards_records_to_recorder(self):
        reg = MetricsRegistry()
        ledger = StatsLedger()
        ledger.attach_recorder(reg)
        with ledger.phase("hashmap"):
            ledger.record("AAP2", time_ns=30.0, energy_nj=2.0, count=3)
        ledger.record("MEM_RD", time_ns=10.0, energy_nj=1.0)
        assert reg.counter("pim.commands.AAP2").value == 3
        assert reg.counter("pim.stage_time_ns.hashmap").value == 30.0
        # the root-phase record carries phase=None -> no stage counter
        assert reg.get("pim.stage_time_ns.None") is None
        # the ledger itself is untouched by the mirroring
        assert ledger.totals().time_ns == 40.0

    def test_detach_stops_forwarding(self):
        reg = MetricsRegistry()
        ledger = StatsLedger()
        ledger.attach_recorder(reg)
        ledger.record("AAP1", time_ns=1.0, energy_nj=1.0)
        ledger.attach_recorder(None)
        ledger.record("AAP1", time_ns=1.0, energy_nj=1.0)
        assert reg.counter("pim.commands.AAP1").value == 1


class TestHistogramQuantiles:
    """Property tests: bucket-interpolated quantiles vs exact ones."""

    @staticmethod
    def _exact_quantile(samples, q):
        import math

        ordered = sorted(samples)
        rank = max(1, math.ceil(q * len(ordered) - 1e-9))
        return ordered[rank - 1]

    def test_empty_histogram_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)
        with pytest.raises(ValueError):
            Histogram("h").quantile(-0.1)

    def test_single_observation_every_quantile(self):
        h = Histogram("h")
        h.observe(37.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) == 37.0  # clamped to min == max

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    def test_within_factor_two_of_exact(self, seed, q):
        """Power-of-two buckets guarantee a 2x accuracy envelope for
        values above the first bucket bound (1.0)."""
        import random

        rng = random.Random(seed)
        samples = [rng.uniform(1.0, 5000.0) for _ in range(500)]
        h = Histogram("h")
        for value in samples:
            h.observe(value)
        exact = self._exact_quantile(samples, q)
        estimate = h.quantile(q)
        assert exact / 2.0 <= estimate <= exact * 2.0

    @pytest.mark.parametrize("seed", [7, 8])
    def test_monotone_in_q(self, seed):
        import random

        rng = random.Random(seed)
        h = Histogram("h")
        for _ in range(300):
            h.observe(rng.expovariate(1 / 50.0))
        quantiles = [h.quantile(q / 20.0) for q in range(21)]
        assert quantiles == sorted(quantiles)

    def test_clamped_to_observed_range(self):
        h = Histogram("h")
        for value in (10.0, 11.0, 12.0):
            h.observe(value)
        assert h.quantile(0.0) >= h.min
        assert h.quantile(1.0) <= h.max

    def test_identical_samples_recovered_exactly(self):
        h = Histogram("h")
        for _ in range(100):
            h.observe(100.0)
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) == 100.0

    def test_snapshot_carries_quantiles(self):
        h = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            h.observe(value)
        snap = h.snapshot()
        assert set(snap) >= {"p50", "p95", "p99"}
        assert snap["p50"] <= snap["p95"] <= snap["p99"]
