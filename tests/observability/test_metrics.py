"""Metrics registry: primitives, the Recorder protocol, activation."""

import pytest

from repro.core.stats import StatsLedger
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Recorder,
    active_registry,
    inc,
    observe,
    set_gauge,
)


class TestPrimitives:
    def test_counter_monotone(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_overwrites(self):
        g = Gauge("g")
        assert g.value is None
        g.set(5)
        g.set(2)
        assert g.value == 2

    def test_histogram_tracks_shape(self):
        h = Histogram("h")
        for v in (1, 2, 3, 1000):
            h.observe(v)
        assert h.count == 4
        assert h.min == 1 and h.max == 1000
        assert h.mean == pytest.approx(1006 / 4)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        # 1 -> bucket 0 (<=1), 2 -> bucket 1, 3 -> bucket 2, 1000 -> bucket 10
        assert snap["buckets"] == {"le_2e0": 1, "le_2e1": 1, "le_2e2": 1, "le_2e10": 1}

    def test_histogram_saturates_top_bucket(self):
        h = Histogram("h")
        h.observe(2.0**40)
        assert h.buckets[Histogram.MAX_BUCKET] == 1


class TestRegistry:
    def test_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert reg.counter("x") is c
        with pytest.raises(TypeError):
            reg.gauge("x")
        assert reg.get("missing") is None

    def test_registry_satisfies_recorder_protocol(self):
        assert isinstance(MetricsRegistry(), Recorder)

    def test_on_command_fans_out(self):
        reg = MetricsRegistry()
        reg.on_command("AAP1", 3, 120.0, 9.0, "hashmap")
        reg.on_command("AAP1", 1, 40.0, 3.0, None)
        assert reg.counter("pim.commands.AAP1").value == 4
        assert reg.counter("pim.time_ns.AAP1").value == 160.0
        assert reg.counter("pim.energy_nj.AAP1").value == 12.0
        assert reg.counter("pim.commands.total").value == 4
        assert reg.counter("pim.stage_time_ns.hashmap").value == 120.0

    def test_snapshot_is_sorted_and_json_shaped(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        reg.histogram("c").observe(2)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["a"] == {"type": "gauge", "value": 1}
        assert snap["b"] == {"type": "counter", "value": 1.0}


class TestModuleHelpers:
    def test_inactive_helpers_noop(self):
        assert active_registry() is None
        inc("nothing")
        observe("nothing", 1)
        set_gauge("nothing", 1)  # must not raise, must not register

    def test_activation_routes_helpers(self):
        reg = MetricsRegistry()
        with reg.activate():
            assert active_registry() is reg
            inc("jobs", 2)
            observe("sizes", 5)
            set_gauge("depth", 3)
        assert active_registry() is None
        assert reg.counter("jobs").value == 2
        assert reg.histogram("sizes").count == 1
        assert reg.gauge("depth").value == 3


class TestLedgerForwarding:
    def test_ledger_forwards_records_to_recorder(self):
        reg = MetricsRegistry()
        ledger = StatsLedger()
        ledger.attach_recorder(reg)
        with ledger.phase("hashmap"):
            ledger.record("AAP2", time_ns=30.0, energy_nj=2.0, count=3)
        ledger.record("MEM_RD", time_ns=10.0, energy_nj=1.0)
        assert reg.counter("pim.commands.AAP2").value == 3
        assert reg.counter("pim.stage_time_ns.hashmap").value == 30.0
        # the root-phase record carries phase=None -> no stage counter
        assert reg.get("pim.stage_time_ns.None") is None
        # the ledger itself is untouched by the mirroring
        assert ledger.totals().time_ns == 40.0

    def test_detach_stops_forwarding(self):
        reg = MetricsRegistry()
        ledger = StatsLedger()
        ledger.attach_recorder(reg)
        ledger.record("AAP1", time_ns=1.0, energy_nj=1.0)
        ledger.attach_recorder(None)
        ledger.record("AAP1", time_ns=1.0, energy_nj=1.0)
        assert reg.counter("pim.commands.AAP1").value == 1
