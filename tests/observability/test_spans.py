"""The span tracer: nesting, clocks, lanes, activation."""

import pytest

from repro.observability.spans import (
    DEFAULT_LANE,
    Tracer,
    _NOOP,
    active_tracer,
    event,
    span,
)


class FakeClocks:
    """Deterministic wall/sim clocks the tests can step explicitly."""

    def __init__(self):
        self.wall = 0
        self.sim = 0.0

    def wall_clock(self):
        return self.wall

    def sim_clock(self):
        return self.sim


@pytest.fixture()
def clocked():
    clocks = FakeClocks()
    tracer = Tracer(sim_clock=clocks.sim_clock, wall_clock=clocks.wall_clock)
    return tracer, clocks


class TestSpanRecording:
    def test_span_captures_both_clocks(self, clocked):
        tracer, clocks = clocked
        clocks.wall, clocks.sim = 100, 5.0
        with tracer.span("work") as s:
            clocks.wall, clocks.sim = 160, 25.0
        assert s.wall_start_ns == 100 and s.wall_end_ns == 160
        assert s.sim_start_ns == 5.0 and s.sim_end_ns == 25.0
        assert s.wall_duration_ns == 60
        assert s.sim_duration_ns == 20.0

    def test_nesting_sets_parent_ids(self, clocked):
        tracer, _ = clocked
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_child_inherits_lane_unless_overridden(self, clocked):
        tracer, _ = clocked
        with tracer.span("stage", lane="hashmap"):
            with tracer.span("child") as child:
                pass
            with tracer.span("other", lane="resilience") as other:
                pass
        assert child.lane == "hashmap"
        assert other.lane == "resilience"

    def test_root_lane_defaults(self, clocked):
        tracer, _ = clocked
        with tracer.span("root") as s:
            pass
        assert s.lane == DEFAULT_LANE

    def test_attributes_via_kwargs_and_setter(self, clocked):
        tracer, _ = clocked
        with tracer.span("s", k=21) as s:
            s.set_attribute("nodes", 7)
        assert s.attributes == {"k": 21, "nodes": 7}

    def test_span_closes_on_exception(self, clocked):
        tracer, clocks = clocked
        with pytest.raises(RuntimeError):
            with tracer.span("broken"):
                clocks.sim = 9.0
                raise RuntimeError("boom")
        (s,) = tracer.spans("broken")
        assert s.finished
        assert s.sim_end_ns == 9.0
        assert tracer.current_span is None

    def test_open_span_reports_unfinished(self, clocked):
        tracer, _ = clocked
        cm = tracer.span("open")
        cm.__enter__()
        (s,) = tracer.spans("open")
        assert not s.finished
        with pytest.raises(ValueError):
            _ = s.sim_duration_ns

    def test_events_record_point_in_time(self, clocked):
        tracer, clocks = clocked
        clocks.sim = 42.0
        with tracer.span("stage", lane="traverse"):
            tracer.event("tick", detail=1)
        (e,) = tracer.events("tick")
        assert e.sim_ns == 42.0
        assert e.lane == "traverse"  # inherited from the enclosing span
        assert e.attributes == {"detail": 1}

    def test_lanes_lists_spans_then_events(self, clocked):
        tracer, _ = clocked
        with tracer.span("a", lane="hashmap"):
            pass
        tracer.event("e", lane="watchdog")
        assert tracer.lanes() == ["hashmap", "watchdog"]


class TestModuleHelpers:
    def test_inactive_span_is_shared_noop(self):
        assert active_tracer() is None
        s = span("anything", lane="job", k=1)
        assert s is _NOOP
        with s as inner:
            inner.set_attribute("ignored", True)  # must not raise
        assert event("nothing") is None

    def test_activation_routes_helpers(self, clocked):
        tracer, _ = clocked
        with tracer.activate():
            assert active_tracer() is tracer
            with span("routed", lane="debruijn") as s:
                pass
            event("routed.event")
        assert active_tracer() is None
        assert tracer.spans("routed")[0] is s
        assert len(tracer.events("routed.event")) == 1

    def test_activation_restores_previous(self, clocked):
        tracer, _ = clocked
        other = Tracer()
        with tracer.activate():
            with other.activate():
                assert active_tracer() is other
            assert active_tracer() is tracer
