"""SLO objectives, burn rates, alert-rule parsing and evaluation."""

import pytest

from repro.errors import InputError
from repro.observability.metrics import MetricsRegistry
from repro.observability.slo import (
    AlertEvaluator,
    AlertRule,
    SloObjective,
    SloTracker,
)


class TestSloObjective:
    def test_from_manifest_defaults(self):
        slo = SloObjective.from_manifest("acme", {"latency_ms": 500})
        assert slo.tenant == "acme"
        assert slo.latency_ms == 500.0
        assert slo.quantile == 0.95
        assert slo.error_budget == 0.1

    @pytest.mark.parametrize(
        "spec",
        [
            {},  # missing latency_ms
            {"latency_ms": 0},
            {"latency_ms": -5},
            {"latency_ms": 100, "quantile": 1.5},
            {"latency_ms": 100, "error_budget": 0},
            {"latency_ms": 100, "surprise": 1},
            "not an object",
        ],
    )
    def test_bad_manifest_specs(self, spec):
        with pytest.raises(InputError):
            SloObjective.from_manifest("acme", spec)


class TestSloTracker:
    def test_burn_rate_counts_violations(self):
        tracker = SloTracker(
            [SloObjective("acme", latency_ms=100.0, error_budget=0.5)]
        )
        assert tracker.observe("acme", 50.0) is False
        assert tracker.observe("acme", 150.0) is True  # too slow
        assert tracker.observe("acme", 50.0, ok=False) is True  # failed
        # 2 violations / 3 jobs / 0.5 budget
        assert tracker.burn_rate("acme") == pytest.approx(2 / 3 / 0.5)

    def test_unknown_tenant_ignored(self):
        tracker = SloTracker()
        assert tracker.observe("ghost", 1e9) is False
        assert tracker.burn_rate("ghost") == 0.0

    def test_registry_counters_updated(self):
        registry = MetricsRegistry()
        tracker = SloTracker([SloObjective("acme", latency_ms=100.0)])
        tracker.observe("acme", 500.0, registry=registry)
        assert registry.counter("slo.jobs.acme").value == 1
        assert registry.counter("slo.violations.acme").value == 1
        assert registry.gauge("slo.burn_rate.acme").value == pytest.approx(
            1 / 0.1
        )

    def test_snapshot_shape(self):
        tracker = SloTracker([SloObjective("acme", latency_ms=100.0)])
        tracker.observe("acme", 10.0)
        snap = tracker.snapshot()
        assert snap["acme"]["jobs"] == 1
        assert snap["acme"]["violations"] == 0


class TestAlertRuleParsing:
    def test_threshold_rule(self):
        rule = AlertRule.parse("service.failed.total >= 1")
        assert rule.kind == "threshold"
        assert rule.subject == "service.failed.total"
        assert rule.op == ">="
        assert rule.threshold == 1.0

    def test_rate_rule(self):
        rule = AlertRule.parse("rate(service.shed.total) > 10")
        assert rule.kind == "rate"
        assert rule.subject == "service.shed.total"

    def test_burn_rate_rule(self):
        rule = AlertRule.parse("burn_rate(acme) > 2.5")
        assert rule.kind == "burn_rate"
        assert rule.subject == "acme"
        assert rule.threshold == 2.5

    @pytest.mark.parametrize(
        "expression",
        [
            "",
            "just-a-metric",
            "metric >",
            "metric > banana",
            "rate service.x > 1",  # rate without parens
            "(service.x) > 1",  # parens without rate
            "metric ~ 1",
        ],
    )
    def test_rejects_malformed(self, expression):
        with pytest.raises(InputError):
            AlertRule.parse(expression)

    def test_from_manifest_string_and_dict(self):
        plain = AlertRule.from_manifest("m > 1")
        assert plain.name == "m > 1"
        rich = AlertRule.from_manifest(
            {"name": "shed-storm", "expr": "rate(s) > 5", "severity": "page"}
        )
        assert rich.name == "shed-storm"
        assert rich.severity == "page"
        with pytest.raises(InputError):
            AlertRule.from_manifest({"expr": "m > 1", "oops": True})
        with pytest.raises(InputError):
            AlertRule.from_manifest({"name": "no-expr"})
        with pytest.raises(InputError):
            AlertRule.from_manifest(42)


class TestEdgeTriggering:
    def test_fires_once_until_cleared(self):
        registry = MetricsRegistry()
        rule = AlertRule.parse("depth > 2")
        registry.gauge("depth").set(5)
        assert rule.evaluate(registry) is not None
        assert rule.evaluate(registry) is None  # still high: no re-fire
        registry.gauge("depth").set(1)
        assert rule.evaluate(registry) is None  # cleared: re-arms
        registry.gauge("depth").set(9)
        assert rule.evaluate(registry) is not None  # fires again

    def test_rate_rule_first_evaluation_is_zero(self):
        registry = MetricsRegistry()
        registry.counter("shed").inc(100)
        rule = AlertRule.parse("rate(shed) > 5")
        assert rule.evaluate(registry) is None  # no previous sample
        registry.counter("shed").inc(10)
        fired = rule.evaluate(registry)
        assert fired is not None
        assert fired.value == pytest.approx(10.0)

    def test_missing_metric_reads_zero(self):
        rule = AlertRule.parse("nope < 1")
        fired = rule.evaluate(MetricsRegistry())
        assert fired is not None  # 0 < 1 holds
        assert fired.value == 0.0


class TestAlertEvaluator:
    def test_fanout_to_registry_flight_and_audit(self):
        from repro.observability.flightrec import FlightRecorder
        from repro.observability.spans import Tracer

        registry = MetricsRegistry()
        registry.counter("service.failed.total").inc()
        tracer = Tracer(sim_clock=lambda: 0.0)
        flight = FlightRecorder()
        audit_log = []
        evaluator = AlertEvaluator(
            [AlertRule.parse("service.failed.total >= 1", name="failures")],
            registry,
            tracer=tracer,
            flight=flight,
            audit=audit_log.append,
        )
        events = evaluator.evaluate(round_index=3, sim_ns=42.0)
        assert [e.name for e in events] == ["failures"]
        assert evaluator.fired == events
        assert registry.counter("alerts.fired.total").value == 1
        assert registry.counter("alerts.fired.failures").value == 1
        assert audit_log[0]["kind"] == "alert"
        assert audit_log[0]["round"] == 3
        assert flight.snapshot("x")["alerts"][0]["name"] == "failures"
        assert any(
            e.name == "alert.failures" for e in tracer.events()
        )

    def test_burn_rate_rule_with_tracker(self):
        registry = MetricsRegistry()
        tracker = SloTracker(
            [SloObjective("acme", latency_ms=10.0, error_budget=0.1)]
        )
        tracker.observe("acme", 100.0)  # violation -> burn rate 10
        evaluator = AlertEvaluator(
            [AlertRule.parse("burn_rate(acme) > 1", name="burn")],
            registry,
            slo=tracker,
        )
        events = evaluator.evaluate()
        assert [e.name for e in events] == ["burn"]
        assert events[0].value == pytest.approx(10.0)
