"""End-to-end session wiring: pipeline spans, sim clock, export."""

import pytest

from repro.assembly.pipeline import STAGE_NAMES, _sized_device, assemble_with_pim
from repro.observability.export import chrome_trace, validate_chrome_trace
from repro.observability.session import (
    ObservabilitySession,
    active_session,
    connect_ledger,
)
from repro.genome.reads import ReadSimulator
from repro.genome.reference import synthetic_chromosome


@pytest.fixture(scope="module")
def reads():
    reference = synthetic_chromosome(1200, seed=11)
    sim = ReadSimulator(read_length=70, seed=12)
    return sim.sample(reference, sim.reads_for_coverage(1200, 10.0))


def _traced_run(reads, **kwargs):
    session = ObservabilitySession()
    with session.activate():
        pim = _sized_device(reads, 15)
        result = assemble_with_pim(reads, 15, pim=pim, **kwargs)
    return session, pim, result


class TestSessionWiring:
    def test_platform_auto_connects_while_active(self, reads):
        session, pim, _ = _traced_run(reads)
        assert pim.stats._recorder is session

    def test_inactive_platform_stays_unconnected(self, reads):
        assert active_session() is None
        pim = _sized_device(reads, 15)
        assert pim.stats._recorder is None

    def test_connect_ledger_is_noop_without_session(self):
        class FakeLedger:
            def attach_recorder(self, recorder):
                raise AssertionError("must not be called")

        connect_ledger(FakeLedger())  # no active session -> no attach

    def test_sim_clock_matches_ledger_total(self, reads):
        session, pim, result = _traced_run(reads)
        assert session.sim_time_ns == pytest.approx(pim.stats.totals().time_ns)
        assert session.sim_time_ns == pytest.approx(result.total_time_ns)


class TestStageSpanAgreement:
    """The acceptance criterion: per-stage span durations on the
    simulated clock agree with ``StatsLedger.totals(stage)``."""

    @pytest.mark.parametrize("engine", ["scalar", "bulk"])
    def test_stage_spans_agree_with_ledger(self, reads, engine):
        session, pim, _ = _traced_run(reads, engine=engine)
        for stage in STAGE_NAMES:
            (stage_span,) = session.tracer.spans(f"stage.{stage}")
            assert stage_span.lane == stage
            assert stage_span.sim_duration_ns == pytest.approx(
                pim.stats.totals(stage).time_ns
            ), stage

    def test_trace_validates_and_has_stage_lanes(self, reads):
        session, _, _ = _traced_run(reads)
        doc = chrome_trace(session.tracer)
        assert validate_chrome_trace(doc) == []
        lane_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert set(STAGE_NAMES) <= lane_names

    def test_command_metrics_match_ledger(self, reads):
        session, pim, _ = _traced_run(reads)
        totals = pim.stats.totals()
        reg = session.registry
        assert reg.counter("pim.commands.total").value == totals.total_commands
        assert reg.counter("pim.time_ns.total").value == pytest.approx(
            totals.time_ns
        )
        for mnemonic, count in totals.commands.items():
            assert reg.counter(f"pim.commands.{mnemonic}").value == count


class TestExport:
    def test_export_writes_requested_artifacts(self, reads, tmp_path):
        session, pim, _ = _traced_run(reads)
        written = session.export(
            trace_path=tmp_path / "trace.json",
            metrics_path=tmp_path / "metrics.json",
            pim=pim,
        )
        assert len(written) == 2
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "metrics.json").exists()
        # occupancy snapshot landed in the gauges
        assert session.registry.gauge("pim.subarray.touched").value > 0

    def test_export_nothing_requested(self, reads):
        session, _, _ = _traced_run(reads)
        assert session.export() == []


class TestDisabledOverheadPath:
    def test_instrumented_run_works_without_session(self, reads):
        # the same instrumented code path, observability off
        result = assemble_with_pim(reads, 15)
        assert result.contigs
        assert active_session() is None
