"""Power timeline: conservation invariant, binning, lanes, gauges."""

import math
import random

import pytest

from repro.assembly.pipeline import _sized_device, assemble_with_pim
from repro.core.stats import StatsLedger
from repro.genome.reads import ReadSimulator
from repro.genome.reference import synthetic_chromosome
from repro.observability.power import (
    DEFAULT_POWER_LANE,
    PowerTimeline,
    current_lane,
    lane_scope,
)
from repro.observability.session import ObservabilitySession


@pytest.fixture(scope="module")
def reads():
    reference = synthetic_chromosome(900, seed=21)
    sim = ReadSimulator(read_length=70, seed=22)
    return sim.sample(reference, sim.reads_for_coverage(900, 8.0))


class TestConservation:
    """Timeline total energy == ledger total energy, *bit-exactly*."""

    def test_synthetic_stream_is_bit_exact(self):
        rng = random.Random(99)
        ledger = StatsLedger()
        timeline = PowerTimeline(bin_ns=50.0, p_background_w=0.0)
        ledger.attach_recorder(timeline)  # duck-typed Recorder
        for _ in range(2000):
            ledger.record(
                "AAP2",
                count=rng.randrange(1, 5),
                time_ns=rng.random() * 300.0,
                energy_nj=rng.random() * 7.0,
            )
        totals = ledger.totals()
        assert timeline.total_energy_nj == totals.energy_nj  # no approx!
        assert timeline.total_time_ns == totals.time_ns

    @pytest.mark.parametrize("engine", ["scalar", "bulk"])
    def test_end_to_end_both_engines(self, reads, engine):
        session = ObservabilitySession()
        with session.activate():
            pim = _sized_device(reads, 15)
            assemble_with_pim(reads, 15, pim=pim, engine=engine)
        totals = pim.stats.totals()
        assert session.power.total_energy_nj == totals.energy_nj
        assert session.power.total_time_ns == totals.time_ns
        # per-stage energies mirror the ledger's phase accounting
        for stage, energy in session.power.stage_energy_nj.items():
            assert energy == pim.stats.totals(stage).energy_nj

    def test_integral_matches_total(self, reads):
        session = ObservabilitySession(power_bin_ns=500.0)
        with session.activate():
            assemble_with_pim(reads, 15)
        total = session.power.total_energy_nj
        assert session.power.integral_nj() == pytest.approx(
            total, rel=1e-12, abs=1e-9
        )


class TestBinning:
    def test_event_spanning_many_bins_deposits_exactly(self):
        timeline = PowerTimeline(bin_ns=10.0, p_background_w=0.0)
        # 7 nJ over 95 ns -> 10 bins touched, last one partial
        timeline.on_command("AAP1", 1, 95.0, 7.0, None)
        assert timeline.integral_nj() == pytest.approx(7.0, abs=1e-12)
        assert timeline.total_energy_nj == 7.0

    def test_zero_time_event_lands_in_cursor_bin(self):
        timeline = PowerTimeline(bin_ns=10.0, p_background_w=0.0)
        timeline.on_command("AAP1", 1, 25.0, 1.0, None)
        timeline.on_command("LATCH_CLR", 1, 0.0, 0.5, None)
        assert timeline.total_energy_nj == 1.5
        assert timeline.integral_nj() == pytest.approx(1.5, abs=1e-12)

    def test_series_is_gap_free_and_includes_background(self):
        timeline = PowerTimeline(bin_ns=10.0, p_background_w=2.0)
        timeline.on_command("AAP1", 1, 10.0, 5.0, None)  # bin 0: 0.5 W
        timeline.on_command("NOP", 1, 35.0, 0.0, None)  # advance, no energy
        timeline.on_command("AAP1", 1, 5.0, 1.0, None)
        series = timeline.series()
        starts = [start for start, _ in series]
        assert starts == sorted(starts)
        # consecutive bins, no holes
        assert all(
            b - a == pytest.approx(10.0)
            for a, b in zip(starts, starts[1:])
        )
        # idle bins sit exactly at background power
        powers = dict(series)
        assert min(powers.values()) == pytest.approx(2.0)
        assert powers[starts[0]] == pytest.approx(2.0 + 5.0 / 10.0)


class TestLanes:
    def test_lane_scope_attributes_energy(self):
        timeline = PowerTimeline(bin_ns=10.0, p_background_w=0.0)
        with lane_scope("tenant-a"):
            assert current_lane() == "tenant-a"
            timeline.on_command("AAP1", 1, 10.0, 3.0, "hashmap",
                                lane=current_lane())
        timeline.on_command("AAP1", 1, 10.0, 2.0, "hashmap", lane=None)
        assert current_lane() is None
        assert timeline.lane_energy_nj["tenant-a"] == 3.0
        # without a lane the ledger phase is the fallback
        assert timeline.lane_energy_nj["hashmap"] == 2.0

    def test_lane_scopes_nest_and_restore(self):
        with lane_scope("outer"):
            with lane_scope("inner"):
                assert current_lane() == "inner"
            assert current_lane() == "outer"
        assert current_lane() is None

    def test_lane_sums_conserve_total(self):
        timeline = PowerTimeline(bin_ns=10.0, p_background_w=0.0)
        rng = random.Random(5)
        for i in range(500):
            timeline.on_command(
                "AAP2", 1, rng.random() * 40.0, rng.random() * 3.0,
                None, lane=f"tenant-{i % 3}",
            )
        lane_sum = math.fsum(timeline.lane_energy_nj.values())
        assert lane_sum == pytest.approx(
            timeline.total_energy_nj, rel=1e-12
        )
        assert set(timeline.lanes()) == {
            "tenant-0", "tenant-1", "tenant-2"
        }

    def test_default_lane_when_nothing_known(self):
        timeline = PowerTimeline(bin_ns=10.0)
        timeline.on_command("AAP1", 1, 1.0, 1.0, None)
        assert timeline.lanes() == [DEFAULT_POWER_LANE]


class TestGauges:
    def test_peak_at_least_average(self):
        timeline = PowerTimeline(bin_ns=10.0, p_background_w=2.0)
        timeline.on_command("AAP1", 1, 10.0, 50.0, None)  # hot bin
        timeline.on_command("AAP1", 1, 90.0, 1.0, None)  # cool tail
        assert timeline.peak_power_w() >= timeline.average_power_w()
        assert timeline.average_power_w() == pytest.approx(
            51.0 / 100.0 + 2.0
        )

    def test_thermal_proxy_between_background_and_peak(self):
        timeline = PowerTimeline(
            bin_ns=10.0, p_background_w=2.0, thermal_tau_ns=100.0
        )
        timeline.on_command("AAP1", 1, 50.0, 100.0, None)
        thermal = timeline.thermal_proxy_w()
        assert 2.0 < thermal <= timeline.peak_power_w()

    def test_top_mnemonics_ranked_by_energy(self):
        timeline = PowerTimeline(bin_ns=10.0, p_background_w=0.0)
        timeline.on_command("MEM_WR", 1, 1.0, 10.0, None)
        timeline.on_command("AAP1", 5, 1.0, 2.0, None)
        timeline.on_command("DPU", 1, 1.0, 30.0, None)
        top = timeline.top_mnemonics(2)
        assert [name for name, _ in top] == ["DPU", "MEM_WR"]

    def test_publish_gauges(self):
        from repro.observability.metrics import MetricsRegistry

        timeline = PowerTimeline(bin_ns=10.0, p_background_w=2.0)
        timeline.on_command("AAP1", 1, 10.0, 5.0, None, lane="t0")
        registry = MetricsRegistry()
        timeline.publish_gauges(registry)
        assert registry.gauge("power.peak_w").value == pytest.approx(2.5)
        assert registry.gauge("power.average_w").value == pytest.approx(2.5)
        assert registry.gauge("power.lane_energy_nj.t0").value == 5.0
        assert registry.gauge("power.thermal_proxy_w").value > 2.0

    def test_summary_shape(self):
        timeline = PowerTimeline(bin_ns=10.0)
        timeline.on_command("AAP1", 2, 10.0, 5.0, "hashmap")
        summary = timeline.summary()
        assert summary["events"] == 1
        assert summary["total_energy_nj"] == 5.0
        assert summary["stages"] == {"hashmap": 5.0}
        assert summary["mnemonics"]["AAP1"]["count"] == 2


class TestValidation:
    def test_rejects_nonpositive_bin(self):
        with pytest.raises(ValueError):
            PowerTimeline(bin_ns=0.0)

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError):
            PowerTimeline(thermal_tau_ns=-1.0)


class TestOffPathCost:
    """Telemetry off => the command hot path never touches this package."""

    def test_no_observability_allocations_when_disabled(self):
        import tracemalloc

        ledger = StatsLedger()
        assert ledger._recorder is None  # nothing attached
        # warm up interned strings / counters outside the trace window
        ledger.record("AAP2", count=1, time_ns=1.0, energy_nj=1.0)

        tracemalloc.start()
        try:
            for _ in range(2000):
                ledger.record("AAP2", count=1, time_ns=1.0, energy_nj=1.0)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        # match the package source, not this test file's own path
        observability = snapshot.filter_traces(
            [tracemalloc.Filter(True, "*/repro/observability/*")]
        )
        assert observability.statistics("filename") == []

    def test_recorder_branch_is_a_single_none_check(self):
        """The disabled path is `if self._recorder is not None` — no
        indirection through the observability package at all."""
        import inspect as _inspect

        from repro.core import stats as stats_module

        source = _inspect.getsource(stats_module.StatsLedger.record)
        assert "observability" not in source
        assert "_recorder is not None" in source
