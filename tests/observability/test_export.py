"""Chrome trace export, the schema validator, and the heatmap."""

import json

import pytest

from repro.observability.export import (
    LANE_ORDER,
    chrome_trace,
    format_subarray_heatmap,
    subarray_utilization,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
    write_metrics,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import Tracer


class SimClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _tracer_with_run():
    clock = SimClock()
    tracer = Tracer(sim_clock=clock)
    with tracer.span("stage.hashmap", lane="hashmap", k=21):
        clock.now = 100.0
        with tracer.span("scrub.table"):
            clock.now = 150.0
        tracer.event("resilience.quarantine", lane="resilience", subarray=[0, 0, 1])
        clock.now = 200.0
    with tracer.span("stage.traverse", lane="traverse"):
        clock.now = 300.0
    return tracer


class TestChromeTrace:
    def test_document_passes_own_validator(self):
        doc = chrome_trace(_tracer_with_run())
        assert validate_chrome_trace(doc) == []

    def test_lane_tids_follow_lane_order(self):
        doc = chrome_trace(_tracer_with_run())
        names = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        ordered = [lane for lane in LANE_ORDER if lane in names]
        assert [names[lane] for lane in ordered] == sorted(names[lane] for lane in ordered)

    def test_ts_is_simulated_microseconds(self):
        doc = chrome_trace(_tracer_with_run())
        begin = next(
            e
            for e in doc["traceEvents"]
            if e["ph"] == "B" and e["name"] == "scrub.table"
        )
        assert begin["ts"] == pytest.approx(100.0 / 1e3)
        assert begin["args"]["sim_ns"] == pytest.approx(50.0)

    def test_child_nests_inside_parent_pairs(self):
        doc = chrome_trace(_tracer_with_run())
        lane_stream = [
            e["name"]
            for e in doc["traceEvents"]
            if e["ph"] in ("B", "E") and e.get("tid") is not None
            and e["name"].startswith(("stage.hashmap", "scrub"))
        ]
        assert lane_stream == [
            "stage.hashmap",
            "scrub.table",
            "scrub.table",
            "stage.hashmap",
        ]

    def test_instant_events_carry_s_and_args(self):
        doc = chrome_trace(_tracer_with_run())
        (inst,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert inst["s"] == "t"
        assert inst["args"] == {"subarray": [0, 0, 1]}

    def test_unfinished_spans_are_dropped_and_counted(self):
        tracer = Tracer()
        open_cm = tracer.span("open")  # keep a ref: GC would close it
        open_cm.__enter__()
        with tracer.span("closed"):
            pass
        doc = chrome_trace(tracer)
        assert validate_chrome_trace(doc) == []
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "B"]
        assert names == ["closed"]
        assert doc["otherData"]["unfinished_spans_dropped"] == 1

    def test_write_and_validate_file_roundtrip(self, tmp_path):
        path = write_chrome_trace(tmp_path / "t.json", _tracer_with_run())
        assert validate_trace_file(path) == []
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ns"


class TestValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]

    def test_rejects_bad_phase_and_fields(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1},
                {"ph": "B", "pid": "one", "tid": 1, "name": "a", "ts": 0},
                {"ph": "B", "pid": 1, "tid": 1, "name": "", "ts": 0},
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("bad ph" in p for p in problems)
        assert any("invalid pid" in p for p in problems)
        assert any("missing name" in p for p in problems)

    def test_rejects_decreasing_ts(self):
        doc = {
            "traceEvents": [
                {"ph": "B", "pid": 1, "tid": 1, "name": "a", "ts": 10},
                {"ph": "E", "pid": 1, "tid": 1, "name": "a", "ts": 5},
            ]
        }
        assert any("decreases" in p for p in validate_chrome_trace(doc))

    def test_rejects_crossed_and_unclosed_pairs(self):
        crossed = {
            "traceEvents": [
                {"ph": "B", "pid": 1, "tid": 1, "name": "a", "ts": 0},
                {"ph": "B", "pid": 1, "tid": 1, "name": "b", "ts": 1},
                {"ph": "E", "pid": 1, "tid": 1, "name": "a", "ts": 2},
            ]
        }
        problems = validate_chrome_trace(crossed)
        assert any("closes B" in p for p in problems)
        unclosed = {
            "traceEvents": [
                {"ph": "B", "pid": 1, "tid": 1, "name": "a", "ts": 0},
            ]
        }
        assert any("unclosed" in p for p in validate_chrome_trace(unclosed))

    def test_rejects_stray_end(self):
        doc = {
            "traceEvents": [
                {"ph": "E", "pid": 1, "tid": 1, "name": "a", "ts": 0},
            ]
        }
        assert any("E without open B" in p for p in validate_chrome_trace(doc))


class TestMetricsWriter:
    def test_writes_snapshot_with_extras(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(2)
        path = write_metrics(
            tmp_path / "m.json", reg, extra={"subarray_heatmap": [{"bank": 0}]}
        )
        doc = json.loads(path.read_text())
        assert doc["metrics"]["jobs"]["value"] == 2
        assert doc["subarray_heatmap"] == [{"bank": 0}]


class TestHeatmap:
    def test_utilization_from_platform_memory(self):
        import numpy as np

        from repro.core.platform import PimAssembler

        pim = PimAssembler.small(subarrays=4)
        sub = pim.device.subarray_at((0, 0, 0))
        sub.write_row(0, np.ones(sub.cols, dtype=np.uint8))
        sub.write_row(3, np.ones(sub.cols, dtype=np.uint8))
        records = subarray_utilization(pim)
        assert len(records) == 1
        rec = records[0]
        assert (rec["bank"], rec["mat"], rec["subarray"]) == (0, 0, 0)
        assert rec["rows_used"] == 2
        assert rec["utilization"] == pytest.approx(2 / rec["data_rows"])

    def test_format_heatmap_table(self):
        records = [
            {
                "bank": 0,
                "mat": 0,
                "subarray": i,
                "rows_used": 10 * (i + 1),
                "data_rows": 100,
                "utilization": 0.1 * (i + 1),
            }
            for i in range(3)
        ]
        text = format_subarray_heatmap(records, limit=2)
        assert "0,0,0" in text and "0,0,1" in text
        assert "+1 more sub-arrays" in text
        assert "#" in text

    def test_format_empty(self):
        assert "no sub-array" in format_subarray_heatmap([])


class TestUnifiedFindings:
    """The span validator reports through the shared findings model."""

    def test_valid_file_yields_empty_report(self, tmp_path):
        from repro.observability.export import validate_trace_report

        path = write_chrome_trace(tmp_path / "t.json", _tracer_with_run())
        report = validate_trace_report(path)
        assert report.ok and report.exit_code == 0

    def test_problems_become_x001_findings(self, tmp_path):
        import json

        from repro.observability.export import validate_trace_report

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": "nope"}))
        report = validate_trace_report(path)
        assert report.rules() == {"X001"}
        assert report.exit_code == 1
        assert report.findings[0].source == str(path)

    def test_validate_cli_exit_codes(self, tmp_path, capsys):
        import json

        from repro.analysis.findings import EXIT_FINDINGS, EXIT_INPUT, EXIT_OK
        from repro.observability.validate import main

        good = write_chrome_trace(tmp_path / "good.json", _tracer_with_run())
        assert main([str(good)]) == EXIT_OK
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": "nope"}))
        assert main([str(bad)]) == EXIT_FINDINGS
        assert "INVALID" in capsys.readouterr().out
        assert main([]) == EXIT_INPUT
