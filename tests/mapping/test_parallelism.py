"""The Pd replication model (Fig. 10 trade-off)."""

import pytest

from repro.mapping.parallelism import PAPER_PD_VALUES, ParallelismModel


class TestScaling:
    def test_pd1_is_identity(self):
        model = ParallelismModel()
        assert model.speedup(1) == 1.0
        assert model.delay(10.0, 1) == 10.0
        assert model.power(1) == model.base_power_w

    def test_delay_decreases_with_pd(self):
        model = ParallelismModel()
        delays = [model.delay(10.0, pd) for pd in PAPER_PD_VALUES]
        assert delays == sorted(delays, reverse=True)

    def test_power_increases_with_pd(self):
        model = ParallelismModel()
        powers = [model.power(pd) for pd in PAPER_PD_VALUES]
        assert powers == sorted(powers)

    def test_speedup_sublinear(self):
        model = ParallelismModel()
        assert model.speedup(8) < 8.0

    def test_power_linear(self):
        model = ParallelismModel(power_per_replica_w=26.0, base_power_w=38.4)
        assert model.power(4) == pytest.approx(38.4 + 3 * 26.0)

    def test_rejects_bad_pd(self):
        model = ParallelismModel()
        with pytest.raises(ValueError):
            model.speedup(0)
        with pytest.raises(ValueError):
            model.delay(10.0, -1)

    def test_rejects_bad_delay(self):
        with pytest.raises(ValueError):
            ParallelismModel().delay(0.0, 2)


class TestOptimum:
    def test_paper_optimum_is_pd2(self):
        """'we determine the optimum performance ... where Pd ~= 2'."""
        model = ParallelismModel()
        assert model.optimum_pd(base_delay_s=30.0) == 2

    def test_edp_definition(self):
        model = ParallelismModel()
        edp = model.energy_delay_product(10.0, 2)
        assert edp == pytest.approx(model.power(2) * model.delay(10.0, 2) ** 2)

    def test_zero_overhead_prefers_max_pd(self):
        """Without replication overhead more parallelism always wins
        EDP (delay falls 1/pd, power grows ~linearly)."""
        model = ParallelismModel(replication_overhead=0.0, power_per_replica_w=26.0)
        assert model.optimum_pd(30.0) == 8

    def test_optimum_requires_candidates(self):
        with pytest.raises(ValueError):
            ParallelismModel().optimum_pd(10.0, candidates=())


class TestValidation:
    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            ParallelismModel(replication_overhead=-0.1)

    def test_rejects_bad_power(self):
        with pytest.raises(ValueError):
            ParallelismModel(base_power_w=0.0)
