"""Adjacency mapping and the Fig. 8 in-memory degree computation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.assembly.debruijn import build_graph_from_sequences
from repro.core import PimAssembler
from repro.genome.sequence import DnaSequence
from repro.mapping.adjacency import (
    adjacency_rows_for_chunk,
    degree_vectors_pim,
    planes_needed,
    wallace_column_sum,
)


class TestWallaceColumnSum:
    def test_single_row(self):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=16)
        row = np.array([1, 0, 1] + [0] * 13, dtype=np.uint8)
        assert (wallace_column_sum(pim, [row]) == row).all()

    @given(
        n_rows=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_numpy_sum(self, n_rows, seed):
        pim = PimAssembler.small(subarrays=1, rows=256, cols=16)
        rng = np.random.default_rng(seed)
        rows = [rng.integers(0, 2, 16).astype(np.uint8) for _ in range(n_rows)]
        result = wallace_column_sum(pim, rows)
        assert (result == np.sum(rows, axis=0)).all()

    def test_pads_short_rows(self):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=16)
        short = np.array([1, 1], dtype=np.uint8)
        result = wallace_column_sum(pim, [short, short])
        assert result[0] == 2 and result[1] == 2
        assert (result[2:] == 0).all()

    def test_rejects_empty(self):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=16)
        with pytest.raises(ValueError):
            wallace_column_sum(pim, [])

    def test_rejects_wide_rows(self):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=16)
        with pytest.raises(ValueError):
            wallace_column_sum(pim, [np.zeros(17, dtype=np.uint8)])

    def test_uses_carry_save_commands(self):
        """The reduction must actually run on TRA + latch sums."""
        pim = PimAssembler.small(subarrays=1, rows=128, cols=16)
        rng = np.random.default_rng(1)
        rows = [rng.integers(0, 2, 16).astype(np.uint8) for _ in range(9)]
        wallace_column_sum(pim, rows)
        cmds = pim.stats.totals().commands
        assert cmds.get("AAP3", 0) > 0  # carry cycles
        assert cmds.get("SUM", 0) > 0  # latch-assisted sums

    def test_scratch_exhaustion(self):
        pim = PimAssembler.small(subarrays=1, rows=16, cols=8)
        rows = [np.ones(8, dtype=np.uint8)] * 12
        with pytest.raises(MemoryError):
            wallace_column_sum(pim, rows)


class TestAdjacencyRows:
    def test_in_direction(self):
        g = build_graph_from_sequences([DnaSequence("ACGT")], 3)
        nodes = sorted(g.nodes())
        rows = adjacency_rows_for_chunk(g, nodes, "in")
        total = np.sum(rows, axis=0)
        for i, node in enumerate(nodes):
            assert total[i] == g.in_degree(node)

    def test_out_direction(self):
        g = build_graph_from_sequences([DnaSequence("ACGTAC")], 3)
        nodes = sorted(g.nodes())
        rows = adjacency_rows_for_chunk(g, nodes, "out")
        total = np.sum(rows, axis=0)
        for i, node in enumerate(nodes):
            assert total[i] == g.out_degree(node)

    def test_rejects_bad_direction(self):
        g = build_graph_from_sequences([DnaSequence("ACGT")], 3)
        with pytest.raises(ValueError):
            adjacency_rows_for_chunk(g, list(g.nodes()), "sideways")

    def test_chunk_restriction(self):
        g = build_graph_from_sequences([DnaSequence("ACGTTGCA")], 3)
        nodes = sorted(g.nodes())
        chunk = nodes[:2]
        rows = adjacency_rows_for_chunk(g, chunk, "in")
        assert all(r.size == 2 for r in rows)


class TestDegreeVectorsPim:
    @pytest.mark.parametrize("text", ["ACGTACGT", "AACCGGTT", "ACGTTGCAAC"])
    def test_matches_graph_degrees(self, text):
        g = build_graph_from_sequences([DnaSequence(text)], 3)
        pim = PimAssembler.small(subarrays=1, rows=256, cols=16)
        in_deg, out_deg = degree_vectors_pim(pim, g)
        for node in g.nodes():
            assert in_deg[node] == g.in_degree(node)
            assert out_deg[node] == g.out_degree(node)

    def test_chunking_over_row_width(self):
        """More vertices than row columns forces multiple chunks."""
        g = build_graph_from_sequences(
            [DnaSequence("ACGTACGTTGCAGGAATTCCGGATCCTTAA")], 4
        )
        pim = PimAssembler.small(subarrays=1, rows=256, cols=8)
        assert g.num_nodes > 8
        in_deg, out_deg = degree_vectors_pim(pim, g)
        for node in g.nodes():
            assert in_deg[node] == g.in_degree(node)
            assert out_deg[node] == g.out_degree(node)


class TestPlanesNeeded:
    def test_values(self):
        assert planes_needed(1) == 1
        assert planes_needed(3) == 2
        assert planes_needed(7) == 3
        assert planes_needed(8) == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            planes_needed(0)
