"""Interval-block graph partitioning across chips."""

import pytest

from repro.assembly.debruijn import build_graph_from_sequences
from repro.genome.reference import synthetic_chromosome
from repro.mapping.graph_partition import BlockId, IntervalBlockPartition


@pytest.fixture(scope="module")
def graph():
    return build_graph_from_sequences([synthetic_chromosome(3000, seed=61)], 9)


class TestPartitioning:
    def test_every_edge_in_exactly_one_block(self, graph):
        partition = IntervalBlockPartition.from_graph(graph, intervals=4)
        total = sum(len(partition.block_edges(b)) for b in partition.nonempty_blocks())
        assert total == graph.num_edges

    def test_block_index_consistency(self, graph):
        """Each edge's block is (interval(source), interval(target))."""
        partition = IntervalBlockPartition.from_graph(graph, intervals=4)
        for block in partition.nonempty_blocks():
            for edge in partition.block_edges(block):
                assert partition.vertex_interval(edge.source) == block.source_interval
                assert partition.vertex_interval(edge.target) == block.destination_interval

    def test_m_squared_block_space(self, graph):
        partition = IntervalBlockPartition.from_graph(graph, intervals=5)
        assert partition.num_blocks == 25
        for block in partition.nonempty_blocks():
            assert 0 <= block.source_interval < 5
            assert 0 <= block.destination_interval < 5

    def test_intervals_roughly_balanced(self, graph):
        """Hash partitioning spreads vertices uniformly."""
        partition = IntervalBlockPartition.from_graph(graph, intervals=4)
        sizes = partition.interval_sizes()
        assert sum(sizes) == graph.num_nodes
        mean = graph.num_nodes / 4
        assert all(abs(s - mean) / mean < 0.25 for s in sizes)

    def test_single_interval_degenerates(self, graph):
        partition = IntervalBlockPartition.from_graph(graph, intervals=1)
        assert partition.nonempty_blocks() == [BlockId(0, 0)]

    def test_rejects_bad_intervals(self):
        with pytest.raises(ValueError):
            IntervalBlockPartition(intervals=0)

    def test_block_id_validation(self):
        with pytest.raises(ValueError):
            BlockId(source_interval=-1, destination_interval=0)


class TestChipAssignment:
    def test_destination_major_allocation(self, graph):
        partition = IntervalBlockPartition.from_graph(graph, intervals=4)
        assignment = partition.chip_assignment(chips=4)
        for block, chip in assignment.items():
            assert chip == block.destination_interval % 4

    def test_load_balance_sums_to_edges(self, graph):
        partition = IntervalBlockPartition.from_graph(graph, intervals=4)
        loads = partition.load_balance()
        assert sum(loads) == graph.num_edges

    def test_fewer_chips_than_intervals(self, graph):
        partition = IntervalBlockPartition.from_graph(graph, intervals=8)
        assignment = partition.chip_assignment(chips=2)
        assert set(assignment.values()) <= {0, 1}

    def test_rejects_bad_chip_count(self, graph):
        partition = IntervalBlockPartition.from_graph(graph, intervals=2)
        with pytest.raises(ValueError):
            partition.chip_assignment(chips=0)
