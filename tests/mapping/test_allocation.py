"""The Ns = ceil(N/f) sub-array allocation rule."""

import pytest

from repro.dram.geometry import (
    BankGeometry,
    DeviceGeometry,
    MatGeometry,
    SubArrayGeometry,
)
from repro.mapping.allocation import (
    chips_needed,
    plan_allocation,
    subarrays_for_vertices,
    vertices_per_subarray,
)


PAPER_SUB = SubArrayGeometry()  # 1024 x 256


class TestFormula:
    def test_f_is_min_a_b(self):
        """f = min(a, b); for 1016 data rows x 256 cols, f = 256."""
        assert vertices_per_subarray(PAPER_SUB) == 256

    def test_wide_subarray(self):
        g = SubArrayGeometry(rows=64, cols=512, compute_rows=8)
        assert vertices_per_subarray(g) == 56  # data rows limit

    def test_ns_ceiling(self):
        assert subarrays_for_vertices(256, PAPER_SUB) == 1
        assert subarrays_for_vertices(257, PAPER_SUB) == 2
        assert subarrays_for_vertices(1024, PAPER_SUB) == 4

    def test_zero_vertices(self):
        assert subarrays_for_vertices(0, PAPER_SUB) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            subarrays_for_vertices(-1, PAPER_SUB)


class TestPlan:
    def small_device(self):
        return DeviceGeometry(
            bank=BankGeometry(
                mat=MatGeometry(
                    subarray=SubArrayGeometry(rows=64, cols=32, compute_rows=8),
                    subarrays_x=2, subarrays_y=2,
                ),
                mats_x=2, mats_y=2,
            ),
            num_banks=2,
        )

    def test_feasible_plan(self):
        device = self.small_device()
        plan = plan_allocation(100, device)
        assert plan.feasible
        assert plan.subarrays_needed == 4  # ceil(100/32)
        assert 0 < plan.utilisation <= 1.0

    def test_perfect_packing_utilisation(self):
        device = self.small_device()
        plan = plan_allocation(64, device)
        assert plan.utilisation == 1.0

    def test_infeasible_raises(self):
        device = self.small_device()
        capacity = device.num_subarrays * 32
        with pytest.raises(ValueError):
            plan_allocation(capacity + 1, device)

    def test_quarantine_shrinks_availability(self):
        """Graceful degradation: retired sub-arrays leave the pool."""
        device = self.small_device()
        plan = plan_allocation(100, device, quarantined=3)
        assert plan.subarrays_available == device.num_subarrays - 3
        assert plan.subarrays_quarantined == 3
        assert plan.feasible

    def test_quarantine_can_make_plan_infeasible(self):
        from repro.errors import CapacityError

        device = self.small_device()
        fits_exactly = device.num_subarrays * 32
        plan_allocation(fits_exactly, device)  # fine with all sub-arrays
        with pytest.raises(CapacityError):
            plan_allocation(fits_exactly, device, quarantined=1)

    def test_rejects_negative_quarantine(self):
        with pytest.raises(ValueError):
            plan_allocation(10, self.small_device(), quarantined=-1)


class TestChipsNeeded:
    def test_single_chip_for_small_graph(self):
        from repro.dram.geometry import default_geometry

        assert chips_needed(1000, default_geometry()) == 1

    def test_scales_with_graph(self):
        from repro.dram.geometry import default_geometry

        device = default_geometry()
        per_chip = device.num_subarrays * 256
        assert chips_needed(per_chip + 1, device) == 2

    def test_zero_vertices_one_chip(self):
        from repro.dram.geometry import default_geometry

        assert chips_needed(0, default_geometry()) == 1
