"""Shared multiplicative hashing for partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.mapping.hashing import kmer_partition, mix64


class TestMix64:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_stays_in_64_bits(self, value):
        assert 0 <= mix64(value) < 2**64

    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            mix64(-1)


class TestKmerPartition:
    @given(
        st.integers(min_value=0, max_value=2**62),
        st.integers(min_value=1, max_value=64),
    )
    def test_in_range(self, key, partitions):
        assert 0 <= kmer_partition(key, partitions) < partitions

    def test_uniformity(self):
        """Sequential keys must spread (the point of mixing)."""
        partitions = 16
        counts = [0] * partitions
        n = 16_000
        for key in range(n):
            counts[kmer_partition(key, partitions)] += 1
        mean = n / partitions
        assert all(abs(c - mean) / mean < 0.15 for c in counts)

    def test_single_partition(self):
        assert kmer_partition(999, 1) == 0

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            kmer_partition(1, 0)
