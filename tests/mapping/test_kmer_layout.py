"""The Fig. 6 correlated hash-table layout."""

import pytest

from repro.dram.geometry import SubArrayGeometry
from repro.mapping.kmer_layout import (
    COUNTER_BITS,
    KmerLayout,
    paper_layout,
    scaled_layout,
)


class TestPaperLayout:
    def test_fig6_row_budgets(self):
        layout = paper_layout()
        assert layout.kmer_rows == 980
        assert layout.value_rows == 32
        assert layout.temp_rows == 8

    def test_fits_data_rows(self):
        layout = paper_layout()
        total = layout.kmer_rows + layout.value_rows + layout.temp_rows
        assert total <= layout.geometry.data_rows

    def test_counter_capacity_covers_kmer_slots(self):
        layout = paper_layout()
        assert layout.value_capacity >= layout.kmer_rows
        assert layout.counters_per_row == 256 // COUNTER_BITS

    def test_max_kmer_is_128_bases(self):
        """'each row stores up to 128 bps' (2 bits per base)."""
        assert paper_layout().max_kmer_bases == 128

    def test_counter_max(self):
        assert paper_layout().counter_max == 255


class TestRowAddressing:
    def test_kmer_rows_first(self):
        layout = paper_layout()
        assert layout.kmer_row(0) == 0
        assert layout.kmer_row(979) == 979

    def test_value_region_follows(self):
        layout = paper_layout()
        assert layout.value_base == 980
        row, bit = layout.value_position(0)
        assert (row, bit) == (980, 0)

    def test_value_position_packing(self):
        layout = paper_layout()
        per_row = layout.counters_per_row
        row, bit = layout.value_position(per_row + 3)
        assert row == layout.value_base + 1
        assert bit == 3 * COUNTER_BITS

    def test_temp_region_last(self):
        layout = paper_layout()
        assert layout.temp_row(0) == 980 + 32
        assert layout.temp_row(7) == 980 + 32 + 7

    def test_bounds(self):
        layout = paper_layout()
        with pytest.raises(IndexError):
            layout.kmer_row(980)
        with pytest.raises(IndexError):
            layout.temp_row(8)
        with pytest.raises(IndexError):
            layout.value_position(-1)


class TestScaledLayout:
    @pytest.mark.parametrize("rows,cols", [(64, 16), (128, 32), (256, 64), (1024, 256)])
    def test_scales_to_any_geometry(self, rows, cols):
        geometry = SubArrayGeometry(rows=rows, cols=cols, compute_rows=8)
        layout = scaled_layout(geometry)
        assert layout.value_capacity >= layout.kmer_rows
        total = layout.kmer_rows + layout.value_rows + layout.temp_rows
        assert total <= geometry.data_rows

    def test_maximises_kmer_region(self):
        geometry = SubArrayGeometry(rows=1024, cols=256, compute_rows=8)
        layout = scaled_layout(geometry)
        # adding one more k-mer row must break a constraint
        with pytest.raises(ValueError):
            KmerLayout(
                geometry=geometry,
                kmer_rows=layout.kmer_rows + layout.value_rows + layout.temp_rows,
                value_rows=layout.value_rows,
                temp_rows=layout.temp_rows,
            )

    def test_rejects_too_narrow(self):
        with pytest.raises(ValueError):
            scaled_layout(SubArrayGeometry(rows=64, cols=4, compute_rows=8))


class TestValidation:
    def test_rejects_overflowing_layout(self):
        geometry = SubArrayGeometry(rows=64, cols=32, compute_rows=8)
        with pytest.raises(ValueError):
            KmerLayout(geometry=geometry, kmer_rows=60, value_rows=16, temp_rows=1)

    def test_rejects_undersized_value_region(self):
        geometry = SubArrayGeometry(rows=1024, cols=256, compute_rows=8)
        with pytest.raises(ValueError):
            KmerLayout(geometry=geometry, kmer_rows=980, value_rows=1, temp_rows=8)

    def test_rejects_counter_bits_not_dividing_row(self):
        geometry = SubArrayGeometry(rows=64, cols=30, compute_rows=8)
        with pytest.raises(ValueError):
            KmerLayout(
                geometry=geometry, kmer_rows=8, value_rows=4, temp_rows=1,
                counter_bits=8,
            )
