"""The chaos harness: disturbed runs keep every service promise."""

import pytest

from repro.service.chaos import (
    INJECTIONS,
    ChaosConfig,
    build_workload,
    run_chaos,
)


@pytest.fixture(scope="module")
def chaos_report(tmp_path_factory):
    """One full chaos run shared by the audit assertions below."""
    root = tmp_path_factory.mktemp("chaos")
    return run_chaos(root, ChaosConfig(seed=2020))


class TestWorkload:
    def test_plan_is_seed_deterministic(self):
        a = build_workload(ChaosConfig(seed=1))
        b = build_workload(ChaosConfig(seed=1))
        assert [(j.key, j.injection, j.kill_tick) for j in a] == [
            (j.key, j.injection, j.kill_tick) for j in b
        ]
        c = build_workload(ChaosConfig(seed=2))
        assert [(j.key, j.injection) for j in a] != [
            (j.key, j.injection) for j in c
        ]

    def test_plan_shape(self):
        config = ChaosConfig(tenants=2, jobs_per_tenant=3)
        plan = build_workload(config)
        assert len(plan) == 6
        assert {j.tenant for j in plan} == set(config.tenant_names())
        assert all(j.injection in INJECTIONS for j in plan)


class TestAudit:
    def test_no_violations(self, chaos_report):
        assert chaos_report.violations() == []

    def test_mixture_actually_disturbed_the_run(self, chaos_report):
        mix = chaos_report.summary()["injections"]
        disturbed = sum(v for k, v in mix.items() if k != "none")
        assert disturbed >= 3, f"tame scenario: {mix}"

    def test_exact_accounting(self, chaos_report):
        report = chaos_report.service_report
        total = (
            len(report.tickets)
            + len(report.shed)
            + len(chaos_report.submit_errors)
        )
        assert total == len(chaos_report.planned)

    def test_survivors_resumed_after_kills(self, chaos_report):
        by_key = {j.key: j for j in chaos_report.planned}
        killed_completions = [
            t
            for t in chaos_report.service_report.completed
            if by_key[f"{t.tenant}/{t.name}"].injection == "kill"
        ]
        assert all(t.resumed for t in killed_completions)

    def test_corrupt_inputs_are_typed_submit_errors(self, chaos_report):
        for key, type_name, message in chaos_report.submit_errors:
            assert type_name == "InputError"
            assert "corrupt" in message

    def test_fairness_bound_held(self, chaos_report):
        assert chaos_report.service_report.fairness_violations() == []

    def test_report_renders(self, chaos_report):
        assert "PASS" in str(chaos_report)


class TestOverload:
    def test_floods_end_in_typed_sheds_and_degraded_completions(
        self, tmp_path
    ):
        """Pure overload (no faults): more submissions than capacity must
        end as typed sheds plus completed (possibly degraded) jobs."""
        config = ChaosConfig(
            seed=7,
            tenants=2,
            jobs_per_tenant=5,
            max_queued=2,
            workers=1,
            degrade_engine_depth=2,
            weights={"none": 1},
        )
        report = run_chaos(tmp_path, config)
        assert report.violations() == []
        service_report = report.service_report
        assert service_report.shed, "overload scenario shed nothing"
        assert all(
            s.reason == "tenant-queue-full" for s in service_report.shed
        )
        assert len(service_report.completed) == len(service_report.tickets)
        assert any(t.degraded for t in service_report.tickets), (
            "deep backlog never triggered degradation"
        )

    def test_rerun_is_deterministic(self, tmp_path):
        config = ChaosConfig(seed=99, tenants=2, jobs_per_tenant=2)
        first = run_chaos(tmp_path / "one", config)
        second = run_chaos(tmp_path / "two", config)
        assert first.violations() == [] and second.violations() == []

        def fates(report):
            return sorted(
                (t.tenant, t.name, t.state, t.failure_kind)
                for t in report.service_report.tickets
            )

        assert fates(first) == fates(second)
        contigs = lambda r: {  # noqa: E731 - tiny local projection
            f"{t.tenant}/{t.name}": [
                (c.name, str(c.sequence)) for c in t.outcome.result.contigs
            ]
            for t in r.service_report.completed
        }
        assert contigs(first) == contigs(second)


class TestBitrotInjection:
    """Retention rot as a chaos kind: SECDED must carry jobs through."""

    def test_bitrot_jobs_complete_with_the_model_engaged(self, tmp_path):
        config = ChaosConfig(
            seed=7,
            tenants=2,
            jobs_per_tenant=2,
            max_queued=4,
            weights={"none": 1, "bitrot": 3},
        )
        report = run_chaos(tmp_path / "bitrot", config)
        assert report.violations() == []
        assert report.summary()["injections"]["bitrot"] >= 1

        by_key = {j.key: j for j in report.planned}
        survived = [
            t
            for t in report.service_report.completed
            if by_key[f"{t.tenant}/{t.name}"].injection == "bitrot"
        ]
        assert survived, "no bitrot job completed"
        for ticket in survived:
            integrity = ticket.outcome.result.integrity
            assert integrity is not None
            assert integrity.windows > 0
            assert integrity.words_uncorrectable == 0

    def test_default_mixture_leaves_bitrot_out(self):
        # weight 0 by default keeps every pre-existing seeded scenario
        # replaying byte-identically
        plan = build_workload(ChaosConfig(seed=1))
        assert all(j.injection != "bitrot" for j in plan)
