"""The AssemblyService: scheduling, retries, deadlines, degradation."""

import pytest

from repro.errors import AdmissionError, CircuitOpenError, StageTimeoutError
from repro.observability.session import ObservabilitySession
from repro.runtime.jobs import JobConfig
from repro.runtime.watchdog import Watchdog
from repro.service import AssemblyService, ServiceConfig, TenantQuota
from repro.service.service import COMPLETED, FAILED

from .conftest import K, baseline_contigs, contigs_of, make_reads


class ServiceKill(BaseException):
    """Simulated SIGKILL inside a worker thread."""


def kill_first_dispatch(kill_tick: int = 40):
    """Watchdog factory: first dispatch dies mid-stage, resumes run clean."""

    def factory(dispatch: int):
        if dispatch != 0:
            return None

        def bomb(tick: int) -> None:
            if tick >= kill_tick:
                raise ServiceKill(f"kill at tick {tick}")

        return Watchdog(on_tick=bomb)

    return factory


def kill_every_dispatch(kill_tick: int = 40):
    def factory(dispatch: int):
        def bomb(tick: int) -> None:
            if tick >= kill_tick:
                raise ServiceKill(f"kill at tick {tick}")

        return Watchdog(on_tick=bomb)

    return factory


def service(tmp_path, no_sleep, **overrides) -> AssemblyService:
    return AssemblyService(
        tmp_path / "svc", ServiceConfig(**overrides), sleep=no_sleep
    )


class TestHappyPath:
    def test_multi_tenant_batch_completes_bit_identical(
        self, tmp_path, no_sleep
    ):
        config = JobConfig(k=K, engine="bulk")
        svc = service(tmp_path, no_sleep, workers=2)
        jobs = {}
        for t, tenant in enumerate(("acme", "beta", "crux")):
            for i in range(2):
                reads = make_reads(seed=10 * t + i)
                jobs[f"{tenant}/job-{i}"] = reads
                svc.submit(tenant, f"job-{i}", reads, config)
        report = svc.drain()
        assert len(report.completed) == 6
        assert not report.failed and not report.shed
        assert report.fairness_violations() == []
        for ticket in report.tickets:
            key = f"{ticket.tenant}/{ticket.name}"
            assert contigs_of(ticket.outcome) == baseline_contigs(
                tmp_path, jobs[key], config
            )

    def test_in_flight_cap_serializes_a_tenant(self, tmp_path, no_sleep):
        svc = service(tmp_path, no_sleep, workers=2)
        config = JobConfig(k=K)
        svc.submit("solo", "j0", make_reads(seed=1), config)
        svc.submit("solo", "j1", make_reads(seed=2), config)
        report = svc.drain()
        assert len(report.completed) == 2
        # max_in_flight=1 (default): the grants cannot share a round
        rounds = [g.round for g in report.grants]
        assert len(rounds) == 2 and rounds[0] < rounds[1]

    def test_report_summary_is_printable(self, tmp_path, no_sleep):
        svc = service(tmp_path, no_sleep)
        svc.submit("t", "j", make_reads(), JobConfig(k=K))
        report = svc.drain()
        assert "1/1 completed" in str(report)
        assert report.summary()["jobs"] == 1


class TestAdmission:
    def test_queue_full_sheds_typed_and_is_recorded(self, tmp_path, no_sleep):
        svc = service(
            tmp_path,
            no_sleep,
            default_quota=TenantQuota(max_queued=1),
        )
        svc.submit("t", "j0", make_reads(seed=1), JobConfig(k=K))
        with pytest.raises(AdmissionError) as info:
            svc.submit("t", "j1", make_reads(seed=2), JobConfig(k=K))
        assert info.value.reason == "tenant-queue-full"
        report = svc.drain()
        assert len(report.shed) == 1
        assert report.shed[0].reason == "tenant-queue-full"
        assert len(report.completed) == 1

    def test_duplicate_job_name_is_refused(self, tmp_path, no_sleep):
        svc = service(tmp_path, no_sleep)
        svc.submit("t", "same", make_reads(seed=1), JobConfig(k=K))
        with pytest.raises(AdmissionError) as info:
            svc.submit("t", "same", make_reads(seed=2), JobConfig(k=K))
        assert info.value.reason == "duplicate-job"

    def test_oversized_payload_is_shed_before_loading(self, tmp_path, no_sleep):
        svc = service(
            tmp_path,
            no_sleep,
            default_quota=TenantQuota(max_input_bytes=10),
        )

        def loader():  # pragma: no cover - must never run
            raise AssertionError("oversized payload was loaded")

        with pytest.raises(AdmissionError) as info:
            svc.submit(
                "t", "big", loader, JobConfig(k=K), input_bytes=11
            )
        assert info.value.reason == "input-too-large"

    def test_invalid_deadline_is_an_input_error(self, tmp_path, no_sleep):
        from repro.errors import InputError

        svc = service(tmp_path, no_sleep)
        with pytest.raises(InputError):
            svc.submit(
                "t", "j", make_reads(), JobConfig(k=K), deadline_s=0
            )
        with pytest.raises(InputError):
            svc.submit(
                "t", "j", make_reads(), JobConfig(k=K), stage_timeout_s=-1
            )


class TestCrashContainment:
    def test_killed_job_resumes_and_matches_baseline(self, tmp_path, no_sleep):
        config = JobConfig(k=K, engine="bulk")
        reads = make_reads(seed=3)
        svc = service(tmp_path, no_sleep)
        ticket = svc.submit(
            "t",
            "killed",
            reads,
            config,
            watchdog_factory=kill_first_dispatch(),
        )
        report = svc.drain()
        assert ticket.state == COMPLETED
        assert ticket.resumed and ticket.dispatches == 2
        assert contigs_of(ticket.outcome) == baseline_contigs(
            tmp_path, reads, config
        )
        assert report.fairness_violations() == []

    def test_timeout_retries_then_completes(self, tmp_path, no_sleep):
        def factory(dispatch: int):
            if dispatch == 0:
                return Watchdog(stage_budget_s=1e-9, stride=1)
            return None

        svc = service(tmp_path, no_sleep)
        ticket = svc.submit(
            "t", "slow", make_reads(seed=4), JobConfig(k=K),
            watchdog_factory=factory,
        )
        svc.drain()
        assert ticket.state == COMPLETED
        assert ticket.resumed

    def test_unrecoverable_crash_fails_typed_after_capped_attempts(
        self, tmp_path, no_sleep
    ):
        svc = service(tmp_path, no_sleep, max_dispatches=3)
        ticket = svc.submit(
            "t",
            "doomed",
            make_reads(seed=5),
            JobConfig(k=K),
            watchdog_factory=kill_every_dispatch(),
        )
        svc.drain()
        assert ticket.state == FAILED
        assert ticket.failure_kind == "crash-exhausted"
        assert ticket.error_type == "ServiceKill"
        assert ticket.dispatches == 3


class TestDeadlines:
    def test_expired_deadline_is_typed_terminal(self, tmp_path, no_sleep):
        svc = service(tmp_path, no_sleep)
        ticket = svc.submit(
            "t", "late", make_reads(seed=6), JobConfig(k=K), deadline_s=1e-9
        )
        svc.drain()
        assert ticket.state == FAILED
        assert ticket.failure_kind == "deadline-exceeded"
        assert ticket.error_type == StageTimeoutError.__name__

    def test_generous_deadline_propagates_and_completes(
        self, tmp_path, no_sleep
    ):
        svc = service(tmp_path, no_sleep)
        ticket = svc.submit(
            "t",
            "fine",
            make_reads(seed=7),
            JobConfig(k=K),
            deadline_s=600.0,
            stage_timeout_s=600.0,
        )
        svc.drain()
        assert ticket.state == COMPLETED


class TestBreaker:
    def test_failing_tenant_trips_breaker_then_sheds(self, tmp_path, no_sleep):
        svc = service(
            tmp_path,
            no_sleep,
            workers=1,
            max_dispatches=1,
            breaker_threshold=2,
            breaker_cooldown_rounds=50,
        )
        for i in range(2):
            svc.submit(
                "flaky",
                f"bad-{i}",
                make_reads(seed=i),
                JobConfig(k=K),
                watchdog_factory=kill_every_dispatch(),
            )
        report = svc.drain()
        assert len(report.failed) == 2
        assert report.breaker_trips == 1
        assert svc.breaker("flaky").state == "open"
        with pytest.raises(CircuitOpenError) as info:
            svc.submit("flaky", "next", make_reads(seed=9), JobConfig(k=K))
        assert info.value.reason == "breaker-open"
        assert svc.report().shed[-1].reason == "breaker-open"

    def test_breaker_holds_queued_jobs_until_probe_succeeds(
        self, tmp_path, no_sleep
    ):
        svc = service(
            tmp_path,
            no_sleep,
            workers=1,
            max_dispatches=1,
            breaker_threshold=1,
            breaker_cooldown_rounds=3,
        )
        svc.submit(
            "t",
            "bad",
            make_reads(seed=1),
            JobConfig(k=K),
            watchdog_factory=kill_every_dispatch(),
        )
        good = svc.submit("t", "good", make_reads(seed=2), JobConfig(k=K))
        report = svc.drain()
        # the good job waited out the cooldown, then closed the breaker
        assert good.state == COMPLETED
        assert svc.breaker("t").state == "closed"
        bad = next(t for t in report.tickets if t.name == "bad")
        assert bad.finished_round + 3 <= max(g.round for g in report.grants)


class TestDegradation:
    def test_pressure_steps_bulk_down_to_scalar_same_contigs(
        self, tmp_path, no_sleep
    ):
        config = JobConfig(k=K, engine="bulk")
        svc = service(
            tmp_path, no_sleep, workers=1, degrade_engine_depth=2
        )
        reads = {i: make_reads(seed=20 + i) for i in range(3)}
        tickets = [
            svc.submit("t", f"j{i}", reads[i], config) for i in range(3)
        ]
        svc.drain()
        degraded = [t for t in tickets if "engine-scalar" in t.degraded]
        assert degraded, "queue pressure never degraded any job"
        for ticket in degraded:
            assert ticket.effective_config.engine == "scalar"
            assert ticket.state == COMPLETED
            # bit-identical to the *bulk* baseline: degradation trades
            # simulated speed, never results
            i = int(ticket.name[1:])
            assert contigs_of(ticket.outcome) == baseline_contigs(
                tmp_path, reads[i], config
            )

    def test_batch_reduction_under_pressure(self, tmp_path, no_sleep):
        config = JobConfig(k=K, batch_reads=8)
        svc = service(
            tmp_path, no_sleep, workers=1, degrade_batch_depth=2
        )
        tickets = [
            svc.submit("t", f"j{i}", make_reads(seed=30 + i), config)
            for i in range(3)
        ]
        svc.drain()
        reduced = [t for t in tickets if t.degraded]
        assert reduced
        assert all(
            t.effective_config.batch_reads == 2 for t in reduced
        )
        assert all(t.state == COMPLETED for t in tickets)

    def test_no_pressure_no_degradation(self, tmp_path, no_sleep):
        svc = service(
            tmp_path, no_sleep, workers=2, degrade_engine_depth=10
        )
        ticket = svc.submit(
            "t", "j", make_reads(), JobConfig(k=K, engine="bulk")
        )
        svc.drain()
        assert not ticket.degraded
        assert ticket.effective_config.engine == "bulk"


class TestObservability:
    def test_service_lane_metrics_and_events(self, tmp_path, no_sleep):
        session = ObservabilitySession()
        with session.activate():
            svc = service(
                tmp_path,
                no_sleep,
                default_quota=TenantQuota(max_queued=1),
            )
            svc.submit("t", "j0", make_reads(seed=1), JobConfig(k=K))
            with pytest.raises(AdmissionError):
                svc.submit("t", "j1", make_reads(seed=2), JobConfig(k=K))
            svc.drain()
        registry = session.registry
        assert registry.counter("service.admitted").value == 1
        assert registry.counter("service.shed.tenant-queue-full").value == 1
        assert registry.counter("service.completed").value == 1
        assert registry.gauge("service.queue_depth.total").value == 0
        latency = registry.histogram("service.latency_ms.t")
        assert latency.count == 1
        lanes = {e.lane for e in session.tracer.events()}
        assert lanes == {"service"}
        names = {e.name for e in session.tracer.events()}
        assert {"service.admit", "service.shed", "service.dispatch"} <= names
        assert session.tracer.spans("service.drain")

    def test_lane_order_includes_service(self):
        from repro.observability.export import LANE_ORDER

        assert "service" in LANE_ORDER


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_dispatches": 0},
            {"requeue_base_rounds": -1},
            {"degrade_engine_depth": 0},
            {"degrade_batch_depth": 0},
        ],
    )
    def test_service_config_rejects_nonsense(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)
