"""Bounded FIFOs and the round-robin arbiter's fairness bound."""

import pytest

from repro.service.queue import BoundedFifo, RoundRobinArbiter


class TestBoundedFifo:
    def test_fifo_order(self):
        q = BoundedFifo(3)
        q.push("a")
        q.push("b")
        q.push("c")
        assert q.peek() == "a"
        assert [q.pop(), q.pop(), q.pop()] == ["a", "b", "c"]

    def test_overflow_is_refused(self):
        q = BoundedFifo(1)
        q.push("a")
        assert q.full
        with pytest.raises(OverflowError):
            q.push("b")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedFifo(0)

    def test_requeue_goes_to_the_front(self):
        q = BoundedFifo(2)
        q.push("a")
        q.push("b")
        item = q.pop()
        q.requeue(item)
        assert q.peek() == "a"

    def test_requeue_may_transiently_exceed_capacity(self):
        # a dispatched job returning to a refilled queue must never be
        # dropped: it was already admitted once
        q = BoundedFifo(1)
        q.push("a")
        item = q.pop()
        q.push("b")
        q.requeue(item)
        assert len(q) == 2
        assert q.pop() == "a"

    def test_empty_peek_and_iteration(self):
        q = BoundedFifo(2)
        assert q.peek() is None
        q.push("x")
        assert list(q) == ["x"]


class TestRoundRobinArbiter:
    def test_cycles_through_requesting_tenants(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        grants = [arb.grant(["a", "b", "c"]) for _ in range(6)]
        assert grants == ["a", "b", "c", "a", "b", "c"]

    def test_skips_non_requesting_without_burning_turns(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        assert arb.grant(["b"]) == "b"
        assert arb.grant(["a", "c"]) == "c"
        assert arb.grant(["a", "c"]) == "a"

    def test_no_request_no_grant(self):
        arb = RoundRobinArbiter(["a"])
        assert arb.grant([]) is None
        assert RoundRobinArbiter().grant(["a"]) is None

    def test_register_is_idempotent_first_seen_order(self):
        arb = RoundRobinArbiter()
        arb.register("x")
        arb.register("y")
        arb.register("x")
        assert arb.slots == ("x", "y")

    def test_fairness_bound_holds_under_adversarial_requests(self):
        """No continuously-requesting tenant waits more than T grants,
        whatever the other tenants do."""
        import random

        rng = random.Random(7)
        tenants = ["a", "b", "c", "d"]
        arb = RoundRobinArbiter(tenants)
        waits = {t: 0 for t in tenants}
        for _ in range(500):
            # 'a' always requests; the rest flap adversarially
            requesting = ["a"] + [t for t in tenants[1:] if rng.random() < 0.6]
            granted = arb.grant(requesting)
            assert granted is not None
            for t in requesting:
                if t == granted:
                    waits[t] = 0
                else:
                    waits[t] += 1
            assert waits["a"] <= len(tenants), "fairness bound violated"
