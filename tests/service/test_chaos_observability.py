"""Chaos + observability: telemetry survives a deliberately hostile run.

A seeded chaos scenario runs under an active ObservabilitySession with
per-tenant SLOs and alert rules.  The assertions below are the PR's
acceptance criteria: per-tenant power attribution sums to the service
total, kills/timeouts leave flight dumps behind, the telemetry file
validates, and at least one alert fires deterministically.
"""

import math

import pytest

from repro.observability.flightrec import FLIGHT_FILENAME
from repro.observability.session import ObservabilitySession
from repro.observability.slo import AlertRule, SloObjective
from repro.observability.validate import validate_exposition_file
from repro.service.chaos import ChaosConfig, run_chaos


@pytest.fixture(scope="module")
def observed_chaos(tmp_path_factory):
    root = tmp_path_factory.mktemp("chaos-obs")
    config = ChaosConfig(seed=2020)
    session = ObservabilitySession()
    slos = [
        SloObjective(tenant, latency_ms=600_000.0)
        for tenant in config.tenant_names()
    ]
    rules = [
        AlertRule.parse("service.completed >= 1", name="progress"),
        AlertRule.parse("service.breaker.trips >= 100", name="meltdown"),
    ]
    telemetry = root / "telemetry.prom"
    report = run_chaos(
        root,
        config,
        session=session,
        slos=slos,
        alert_rules=rules,
        telemetry_path=telemetry,
    )
    return report, session, telemetry


class TestChaosTelemetry:
    def test_no_violations_with_session_attached(self, observed_chaos):
        report, _, _ = observed_chaos
        assert report.violations() == []

    def test_lane_sums_conserve_service_total(self, observed_chaos):
        """Per-tenant energy attribution sums to the timeline total.

        fsum tolerance, not bit-exact: lanes accumulate in a different
        order than the global total.
        """
        report, session, _ = observed_chaos
        lane_sum = math.fsum(session.power.lane_energy_nj.values())
        assert lane_sum == pytest.approx(
            session.power.total_energy_nj, rel=1e-9
        )
        # every tenant that completed work owns a lane
        tenants = {t.tenant for t in report.service_report.completed}
        assert tenants <= set(session.power.lanes())

    def test_timeline_integral_conserves(self, observed_chaos):
        _, session, _ = observed_chaos
        assert session.power.integral_nj() == pytest.approx(
            session.power.total_energy_nj, rel=1e-9, abs=1e-6
        )
        assert session.power.total_energy_nj > 0

    def test_kills_and_timeouts_leave_flight_dumps(self, observed_chaos):
        report, session, _ = observed_chaos
        disturbed = [
            job
            for job in report.planned
            if job.injection in ("kill", "timeout")
        ]
        assert disturbed, "seed produced a tame scenario"
        dumps = list(
            (report.root / "service").glob(f"*/*/{FLIGHT_FILENAME}")
        )
        assert dumps, "no flight dump survived the chaos run"
        assert session.flight.dumps >= len(dumps) > 0

    def test_progress_alert_fires_deterministically(self, observed_chaos):
        report, _, _ = observed_chaos
        names = [event.name for event in report.alert_events]
        assert "progress" in names
        assert "meltdown" not in names

    def test_telemetry_file_validates(self, observed_chaos):
        _, _, telemetry = observed_chaos
        assert telemetry.is_file()
        assert validate_exposition_file(telemetry) == []
        text = telemetry.read_text()
        assert "alerts_fired_progress 1" in text
        assert "slo_burn_rate" in text

    def test_slo_counters_cover_every_finished_job(self, observed_chaos):
        report, session, _ = observed_chaos
        finished = len(report.service_report.completed) + len(
            report.service_report.failed
        )
        observed = sum(
            session.registry.counter(f"slo.jobs.{t}").value
            for t in {j.tenant for j in report.planned}
        )
        assert observed == finished
