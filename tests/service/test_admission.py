"""Admission control: every shed is typed, every reason is stable."""

import pytest

from repro.errors import AdmissionError, ReproError
from repro.service.admission import AdmissionController, TenantQuota


class TestTenantQuota:
    def test_defaults(self):
        quota = TenantQuota()
        assert quota.max_queued == 8
        assert quota.max_in_flight == 1
        assert quota.max_input_bytes is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queued": 0},
            {"max_in_flight": 0},
            {"max_input_bytes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestAdmissionController:
    def check(self, controller, tenant="acme", **overrides):
        kwargs = {
            "input_bytes": 10,
            "tenant_queued": 0,
            "total_queued": 0,
        }
        kwargs.update(overrides)
        return controller.check(tenant, **kwargs)

    def test_admits_within_quota(self):
        controller = AdmissionController()
        quota = self.check(controller)
        assert quota == TenantQuota()

    def test_explicit_quota_wins_over_default(self):
        controller = AdmissionController(
            quotas={"big": TenantQuota(max_queued=100)}
        )
        assert controller.quota_for("big").max_queued == 100
        assert controller.quota_for("small").max_queued == 8

    @pytest.mark.parametrize(
        "overrides,reason",
        [
            ({"tenant": ""}, "tenant-unknown"),
            ({"tenant": "a b"}, "tenant-unknown"),
            ({"tenant_queued": 8}, "tenant-queue-full"),
            ({"total_queued": 64}, "service-queue-full"),
            (
                {"known_names": {"dup"}, "name": "dup"},
                "duplicate-job",
            ),
        ],
    )
    def test_shed_reasons(self, overrides, reason):
        controller = AdmissionController()
        with pytest.raises(AdmissionError) as info:
            self.check(controller, **overrides)
        assert info.value.reason == reason
        assert isinstance(info.value, ReproError)

    def test_input_size_cap(self):
        controller = AdmissionController(
            default_quota=TenantQuota(max_input_bytes=100)
        )
        self.check(controller, input_bytes=100)
        with pytest.raises(AdmissionError) as info:
            self.check(controller, input_bytes=101)
        assert info.value.reason == "input-too-large"
        assert info.value.tenant == "acme"

    def test_size_unlimited_by_default(self):
        controller = AdmissionController()
        self.check(controller, input_bytes=10**12)

    def test_global_cap_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_total_queued=0)
