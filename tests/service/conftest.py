"""Shared helpers for the service-layer tests."""

import random

import pytest

from repro.genome.sequence import DnaSequence
from repro.runtime.jobs import JobConfig, JobRunner

K = 11


def make_reads(seed: int = 11, genome_bp: int = 250):
    rng = random.Random(seed)
    genome = "".join(rng.choice("ACGT") for _ in range(genome_bp))
    return [
        DnaSequence(genome[i : i + 50]) for i in range(0, genome_bp - 50, 11)
    ]


def contigs_of(outcome):
    return [(c.name, str(c.sequence)) for c in outcome.result.contigs]


def baseline_contigs(tmp_path, reads, config: JobConfig):
    """One undisturbed serial run of the same job."""
    runner = JobRunner(
        tmp_path / "baseline" / f"b{abs(hash(str(reads))) % 10**8}",
        config,
        sleep=lambda _s: None,
    )
    return contigs_of(runner.run(reads))


@pytest.fixture()
def no_sleep():
    return lambda _s: None
