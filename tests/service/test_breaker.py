"""The per-tenant circuit breaker: trip, cool down, probe, recover."""

import pytest

from repro.errors import AdmissionError, CircuitOpenError
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def tripped(breaker, at_round=0):
    for _ in range(breaker.failure_threshold):
        breaker.on_failure(at_round)
    assert breaker.state == OPEN
    return breaker


class TestTrip:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker("t", failure_threshold=3, cooldown_rounds=4)
        assert breaker.on_failure(0) is False
        assert breaker.on_failure(0) is False
        assert breaker.on_failure(0) is True
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker("t", failure_threshold=2, cooldown_rounds=4)
        breaker.on_failure(0)
        breaker.on_success()
        breaker.on_failure(1)
        assert breaker.state == CLOSED

    def test_open_sheds_submissions_typed(self):
        breaker = tripped(
            CircuitBreaker("t", failure_threshold=1, cooldown_rounds=4)
        )
        with pytest.raises(CircuitOpenError) as info:
            breaker.check_submission(1)
        assert isinstance(info.value, AdmissionError)
        assert info.value.reason == "breaker-open"
        assert info.value.retry_after_rounds == 3

    def test_open_holds_dispatch_during_cooldown(self):
        breaker = tripped(
            CircuitBreaker("t", failure_threshold=1, cooldown_rounds=4)
        )
        assert not breaker.allows_dispatch(1)
        assert not breaker.allows_dispatch(3)


class TestHalfOpen:
    def test_cooldown_elapses_into_single_probe(self):
        breaker = tripped(
            CircuitBreaker("t", failure_threshold=1, cooldown_rounds=4)
        )
        assert breaker.allows_dispatch(4)
        assert breaker.state == HALF_OPEN
        breaker.on_dispatch()
        # only one probe outstanding at a time
        assert not breaker.allows_dispatch(4)

    def test_probe_success_closes(self):
        breaker = tripped(
            CircuitBreaker("t", failure_threshold=1, cooldown_rounds=2)
        )
        assert breaker.allows_dispatch(2)
        breaker.on_dispatch()
        breaker.on_success()
        assert breaker.state == CLOSED
        assert breaker.allows_dispatch(2)

    def test_probe_failure_reopens_fresh_cooldown(self):
        breaker = tripped(
            CircuitBreaker("t", failure_threshold=1, cooldown_rounds=2)
        )
        assert breaker.allows_dispatch(5)
        breaker.on_dispatch()
        assert breaker.on_failure(5) is True
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert breaker.retry_after(5) == 2
        assert not breaker.allows_dispatch(6)
        assert breaker.allows_dispatch(7)


class TestValidation:
    def test_parameters_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker("t", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("t", cooldown_rounds=0)
