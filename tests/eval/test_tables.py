"""Table rendering of the experiment artefacts."""

import pytest

from repro.eval.execution import run_all
from repro.eval.memory_wall import run_memory_wall_study
from repro.eval.tables import (
    format_execution,
    format_memory_wall,
    format_speedups,
    format_throughput,
    format_tradeoff,
)
from repro.eval.throughput import run_throughput_sweep
from repro.eval.tradeoffs import run_tradeoff_sweep
from repro.eval.workloads import chr14_workload
from repro.platforms import assembly_platforms


class TestFormatters:
    def test_throughput_table(self):
        text = format_throughput(run_throughput_sweep())
        assert "P-A" in text and "Ambit" in text and "Tbit/s" in text

    def test_execution_table(self):
        results = run_all(assembly_platforms(), chr14_workload(16))
        text = format_execution(results)
        assert "hashmap" in text and "k=16" in text
        for name in ("GPU", "P-A", "Ambit", "D3", "D1"):
            assert name in text

    def test_execution_empty(self):
        assert "no results" in format_execution([])

    def test_speedups(self):
        results = run_all(assembly_platforms(), chr14_workload(16))
        text = format_speedups(results)
        assert "GPU/P-A" in text and "x" in text

    def test_speedups_missing_baseline(self):
        results = run_all(assembly_platforms(), chr14_workload(16))
        with pytest.raises(KeyError):
            format_speedups(results, baseline="TPU")

    def test_tradeoff_table(self):
        text = format_tradeoff(run_tradeoff_sweep())
        assert "optimum Pd" in text
        assert "delay(s)" in text

    def test_memory_wall_table(self):
        text = format_memory_wall(run_memory_wall_study())
        assert "MBR@k=16" in text and "RUR@k=32" in text
