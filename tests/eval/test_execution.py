"""The Fig. 9 execution model: times, stages, power, trends."""

import pytest

from repro.eval.execution import (
    ExecutionModel,
    MappingConfig,
    StageResult,
    run_all,
)
from repro.eval.workloads import chr14_workload
from repro.platforms import assembly_platforms, make_platform


@pytest.fixture(scope="module")
def results16():
    model = ExecutionModel(chr14_workload(16))
    return {p.name: model.run(p) for p in assembly_platforms()}


@pytest.fixture(scope="module")
def results32():
    model = ExecutionModel(chr14_workload(32))
    return {p.name: model.run(p) for p in assembly_platforms()}


class TestShapes:
    def test_pa_is_fastest(self, results16):
        pa = results16["P-A"].total_time_s
        assert all(
            r.total_time_s >= pa for r in results16.values()
        )

    def test_gpu_speedup_about_5x_at_k16(self, results16):
        ratio = results16["GPU"].total_time_s / results16["P-A"].total_time_s
        assert 4.0 < ratio < 6.5

    def test_hashmap_speedup_52x_at_k16(self, results16):
        """Paper: '~5.2x compared with GPU platform when k=16'."""
        ratio = (
            results16["GPU"].stage("hashmap").time_s
            / results16["P-A"].stage("hashmap").time_s
        )
        assert ratio == pytest.approx(5.2, rel=0.1)

    def test_hashmap_speedup_98x_at_k32(self, results32):
        """Paper: '~9.8x' at k=32."""
        ratio = (
            results32["GPU"].stage("hashmap").time_s
            / results32["P-A"].stage("hashmap").time_s
        )
        assert ratio == pytest.approx(9.8, rel=0.1)

    def test_pim_baseline_slowdowns(self, results16, results32):
        """Paper averages: Ambit 2.9x, D3 2.5x, D1 2.8x slower."""
        for name, target in (("Ambit", 2.9), ("D3", 2.5), ("D1", 2.8)):
            ratios = []
            for res in (results16, results32):
                ratios.append(res[name].total_time_s / res["P-A"].total_time_s)
            avg = sum(ratios) / len(ratios)
            assert avg == pytest.approx(target, rel=0.25), name

    def test_gpu_hashmap_dominates(self, results16):
        """Paper: hashmap >60% of GPU time."""
        gpu = results16["GPU"]
        assert gpu.stage("hashmap").time_s / gpu.total_time_s > 0.6

    def test_gpu_time_grows_with_k(self, results16, results32):
        assert results32["GPU"].total_time_s > results16["GPU"].total_time_s

    def test_time_axis_scale(self, results32):
        """Fig. 9a's axis tops out around 200 s."""
        assert 100 < results32["GPU"].total_time_s < 260


class TestPower:
    def test_pa_power_about_38w(self, results16):
        """Paper: 'on average 38.4W'."""
        assert results16["P-A"].average_power_w == pytest.approx(38.4, rel=0.05)

    def test_gpu_power_ratio_75x(self, results16):
        """Paper: '~7.5x compared with the GPU platform'."""
        ratio = (
            results16["GPU"].average_power_w / results16["P-A"].average_power_w
        )
        assert ratio == pytest.approx(7.5, rel=0.1)

    def test_best_pim_power_ratio_28x(self, results16):
        """Paper: '~2.8x lower power vs. the best PIM platform'."""
        best = min(
            results16[n].average_power_w for n in ("Ambit", "D1", "D3")
        )
        ratio = best / results16["P-A"].average_power_w
        assert ratio == pytest.approx(2.8, rel=0.1)

    def test_pa_lowest_power(self, results16):
        pa = results16["P-A"].average_power_w
        assert all(r.average_power_w >= pa for r in results16.values())


class TestMemoryWallInputs:
    def test_pa_mbr_under_16_percent(self, results16, results32):
        assert results16["P-A"].memory_bottleneck_ratio < 0.16
        assert results32["P-A"].memory_bottleneck_ratio <= 0.17

    def test_gpu_mbr_rises_to_70_percent(self, results32):
        assert results32["GPU"].memory_bottleneck_ratio == pytest.approx(
            0.70, abs=0.05
        )

    def test_pa_has_lowest_mbr(self, results16):
        pa = results16["P-A"].memory_bottleneck_ratio
        assert all(
            r.memory_bottleneck_ratio >= pa for r in results16.values()
        )

    def test_pa_rur_about_65_percent(self, results16):
        assert results16["P-A"].resource_utilisation_ratio == pytest.approx(
            0.65, abs=0.04
        )

    def test_pim_rur_above_45_percent(self, results16):
        for name in ("Ambit", "D1", "D3"):
            assert results16[name].resource_utilisation_ratio > 0.45

    def test_gpu_rur_lowest(self, results16):
        gpu = results16["GPU"].resource_utilisation_ratio
        assert all(
            r.resource_utilisation_ratio >= gpu for r in results16.values()
        )


class TestMechanics:
    def test_stage_lookup(self, results16):
        r = results16["P-A"]
        assert r.stage("hashmap").name == "hashmap"
        with pytest.raises(KeyError):
            r.stage("scaffold")

    def test_run_all_order(self):
        platforms = assembly_platforms()
        results = run_all(platforms, chr14_workload(16))
        assert [r.platform for r in results] == [p.name for p in platforms]

    def test_stage_result_validation(self):
        with pytest.raises(ValueError):
            StageResult(name="x", time_s=-1.0, transfer_s=0.0, power_w=1.0)

    def test_mapping_config_validation(self):
        with pytest.raises(ValueError):
            MappingConfig(chips=0)
        with pytest.raises(ValueError):
            MappingConfig(scan_overhead=0.0)

    def test_pd_speeds_up_pa(self):
        w = chr14_workload(16)
        pd1 = ExecutionModel(w, MappingConfig(parallelism_degree=1))
        pd4 = ExecutionModel(w, MappingConfig(parallelism_degree=4))
        pa = make_platform("P-A")
        assert pd4.run(pa).total_time_s < pd1.run(pa).total_time_s

    def test_more_chips_speed_up(self):
        w = chr14_workload(16)
        few = ExecutionModel(w, MappingConfig(chips=5))
        many = ExecutionModel(w, MappingConfig(chips=20))
        pa = make_platform("P-A")
        assert many.run(pa).total_time_s < few.run(pa).total_time_s

    def test_unsupported_platform_type(self):
        class Fake:
            pass

        with pytest.raises(TypeError):
            ExecutionModel(chr14_workload(16)).run(Fake())

    def test_lookup_seconds_in_dram(self):
        model = ExecutionModel(chr14_workload(16))
        pa = make_platform("P-A")
        one = model.lookup_seconds(pa, 1e6)
        two = model.lookup_seconds(pa, 2e6)
        assert two == pytest.approx(2 * one)
        assert one > 0

    def test_lookup_seconds_bandwidth(self):
        model = ExecutionModel(chr14_workload(16))
        g = make_platform("GPU")
        assert model.lookup_seconds(g, 1e9) == pytest.approx(
            g.query_ns(16), rel=1e-6
        )

    def test_lookup_seconds_validation(self):
        model = ExecutionModel(chr14_workload(16))
        with pytest.raises(ValueError):
            model.lookup_seconds(make_platform("P-A"), -1.0)
        with pytest.raises(TypeError):
            model.lookup_seconds(object(), 1.0)

    def test_energy_consistency(self, results16):
        r = results16["P-A"]
        assert r.total_energy_j == pytest.approx(
            sum(s.power_w * s.time_s for s in r.stages)
        )
