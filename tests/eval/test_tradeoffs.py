"""Fig. 10 power/delay trade-off sweep."""

import pytest

from repro.eval.tradeoffs import TradeoffStudy, run_tradeoff_sweep
from repro.mapping.parallelism import PAPER_PD_VALUES


@pytest.fixture(scope="module")
def sweep():
    return run_tradeoff_sweep()


class TestSweep:
    def test_covers_paper_grid(self, sweep):
        assert {p.k for p in sweep.points} == {16, 32}
        for k in (16, 32):
            assert [p.pd for p in sweep.series(k)] == list(PAPER_PD_VALUES)

    def test_delay_monotone_decreasing(self, sweep):
        for k in (16, 32):
            delays = [p.delay_s for p in sweep.series(k)]
            assert delays == sorted(delays, reverse=True)

    def test_power_monotone_increasing(self, sweep):
        for k in (16, 32):
            powers = [p.power_w for p in sweep.series(k)]
            assert powers == sorted(powers)

    def test_power_independent_of_k(self, sweep):
        """Fig. 10 shows one power curve: power is set by Pd."""
        for pd in PAPER_PD_VALUES:
            p16 = next(p for p in sweep.series(16) if p.pd == pd)
            p32 = next(p for p in sweep.series(32) if p.pd == pd)
            assert p16.power_w == pytest.approx(p32.power_w)

    def test_optimum_is_pd2(self, sweep):
        """Paper: 'the optimum performance ... where Pd ~= 2'."""
        assert sweep.optimum_pd(16) == 2
        assert sweep.optimum_pd(32) == 2

    def test_base_power_near_38w(self, sweep):
        base = next(p for p in sweep.series(16) if p.pd == 1)
        assert base.power_w == pytest.approx(38.4, rel=0.05)

    def test_power_axis_scale(self, sweep):
        """Fig. 10's power axis tops out around 300 W at Pd=8."""
        top = next(p for p in sweep.series(16) if p.pd == 8)
        assert 150 < top.power_w < 320

    def test_energy_property(self, sweep):
        point = sweep.series(16)[0]
        assert point.energy_j == pytest.approx(point.delay_s * point.power_w)

    def test_missing_k_raises(self, sweep):
        with pytest.raises(KeyError):
            sweep.optimum_pd(26)


class TestStudyConfig:
    def test_custom_grid(self):
        study = TradeoffStudy(k_values=(22,), pd_values=(1, 2))
        sweep = study.run()
        assert {p.k for p in sweep.points} == {22}
        assert [p.pd for p in sweep.series(22)] == [1, 2]
