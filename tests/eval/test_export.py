"""CSV export of experiment artefacts."""

import csv

import pytest

from repro.eval.execution import run_all
from repro.eval.export import (
    export_execution,
    export_memory_wall,
    export_reliability,
    export_throughput,
    export_tradeoff,
)
from repro.eval.memory_wall import run_memory_wall_study
from repro.eval.reliability import run_reliability_table
from repro.eval.throughput import run_throughput_sweep
from repro.eval.tradeoffs import run_tradeoff_sweep
from repro.eval.workloads import chr14_workload
from repro.platforms import assembly_platforms


def read_csv(path):
    with open(path, newline="") as stream:
        return list(csv.reader(stream))


class TestWriters:
    def test_throughput_csv(self, tmp_path):
        path = export_throughput(run_throughput_sweep(), tmp_path / "f.csv")
        rows = read_csv(path)
        assert rows[0] == ["platform", "operation", "vector_bits", "bits_per_second"]
        assert len(rows) == 1 + 7 * 2 * 3  # platforms x ops x lengths
        assert any(r[0] == "P-A" for r in rows[1:])

    def test_reliability_csv(self, tmp_path):
        table = run_reliability_table(trials=2000)
        path = export_reliability(table, tmp_path / "t.csv")
        rows = read_csv(path)
        assert len(rows) == 6  # header + 5 levels
        assert rows[1][0] == "5.0"

    def test_execution_csv(self, tmp_path):
        results = run_all(assembly_platforms(), chr14_workload(16))
        path = export_execution(results, tmp_path / "e.csv")
        rows = read_csv(path)
        assert len(rows) == 1 + 5 * 3  # platforms x stages
        stages = {r[2] for r in rows[1:]}
        assert stages == {"hashmap", "debruijn", "traverse"}

    def test_tradeoff_csv(self, tmp_path):
        path = export_tradeoff(run_tradeoff_sweep(), tmp_path / "p.csv")
        rows = read_csv(path)
        assert len(rows) == 1 + 2 * 4  # k values x Pd values

    def test_memory_wall_csv(self, tmp_path):
        path = export_memory_wall(run_memory_wall_study(), tmp_path / "m.csv")
        rows = read_csv(path)
        assert len(rows) == 1 + 5 * 2
        for row in rows[1:]:
            assert 0.0 <= float(row[2]) <= 1.0  # mbr
            assert 0.0 <= float(row[3]) <= 1.0  # rur

    def test_creates_parent_directories(self, tmp_path):
        nested = tmp_path / "a" / "b" / "f.csv"
        export_tradeoff(run_tradeoff_sweep(), nested)
        assert nested.exists()

    def test_values_roundtrip(self, tmp_path):
        sweep = run_throughput_sweep()
        path = export_throughput(sweep, tmp_path / "f.csv")
        rows = read_csv(path)
        first = sweep.points[0]
        assert float(rows[1][3]) == pytest.approx(
            first.bits_per_second, rel=1e-5
        )
