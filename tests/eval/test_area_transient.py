"""Area study (Section II-B) and the Fig. 3a transient study."""

import pytest

from repro.dram.geometry import SubArrayGeometry
from repro.eval.area_report import run_area_study
from repro.eval.transient import run_transient_study


class TestAreaStudy:
    def test_within_paper_claim(self):
        study = run_area_study()
        assert study.within_claim
        assert study.report.overhead_percent == pytest.approx(4.98, abs=0.05)

    def test_breakdown_lines(self):
        lines = run_area_study().breakdown_lines()
        text = "\n".join(lines)
        assert "12800" in text  # SA add-ons
        assert "51 rows" in text
        assert "%" in text

    def test_custom_geometry(self):
        study = run_area_study(SubArrayGeometry(rows=512, cols=256))
        assert study.report.overhead_percent > 4.98  # fewer rows to amortise


class TestTransientStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_transient_study()

    def test_four_patterns(self, study):
        assert set(study.waveforms) == {"00", "01", "10", "11"}

    def test_all_patterns_correct(self, study):
        assert study.all_patterns_correct

    def test_expected_rails(self, study):
        assert study.expected_bl("00") == study.vdd
        assert study.expected_bl("11") == study.vdd
        assert study.expected_bl("01") == 0.0
        assert study.expected_bl("10") == 0.0

    def test_summary_rows(self, study):
        rows = study.summary_rows()
        assert len(rows) == 4
        for pattern, final, expected in rows:
            assert abs(final - expected) < 0.02
