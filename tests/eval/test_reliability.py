"""Table I harness: rows, orderings, formatting."""

import pytest

from repro.dram.variation import TABLE_I_LEVELS
from repro.eval.reliability import format_table, run_reliability_table


@pytest.fixture(scope="module")
def table():
    return run_reliability_table(trials=10_000)


class TestTable:
    def test_covers_all_levels(self, table):
        assert {row.variation_percent for row in table.rows} == set(TABLE_I_LEVELS)

    def test_ordering_holds_at_every_level(self, table):
        """Two-row activation never worse than TRA — the headline."""
        assert table.all_orderings_hold

    def test_row_lookup(self, table):
        row = table.row(10.0)
        assert row.variation_percent == 10.0
        with pytest.raises(KeyError):
            table.row(99.0)

    def test_paper_reference_values_attached(self, table):
        row = table.row(10.0)
        assert row.paper_tra == 0.18
        assert row.paper_two_row == 0.00

    def test_clean_at_five_percent(self, table):
        row = table.row(5.0)
        assert row.tra_error_percent < 0.1
        assert row.two_row_error_percent < 0.1

    def test_monotone_degradation(self, table):
        tra = [table.row(l).tra_error_percent for l in TABLE_I_LEVELS]
        two = [table.row(l).two_row_error_percent for l in TABLE_I_LEVELS]
        assert tra == sorted(tra)
        assert two == sorted(two)

    def test_reproducible(self):
        a = run_reliability_table(trials=3000, seed=5)
        b = run_reliability_table(trials=3000, seed=5)
        assert [r.tra_error_percent for r in a.rows] == [
            r.tra_error_percent for r in b.rows
        ]


class TestFormatting:
    def test_renders_all_rows(self, table):
        text = format_table(table)
        for level in TABLE_I_LEVELS:
            assert f"{level:.0f}%" in text
        assert "TRA" in text and "2-Row" in text
