"""Table I harness: rows, orderings, formatting."""

import pytest

from repro.dram.variation import TABLE_I_LEVELS
from repro.eval.reliability import format_table, run_reliability_table


@pytest.fixture(scope="module")
def table():
    return run_reliability_table(trials=10_000)


class TestTable:
    def test_covers_all_levels(self, table):
        assert {row.variation_percent for row in table.rows} == set(TABLE_I_LEVELS)

    def test_ordering_holds_at_every_level(self, table):
        """Two-row activation never worse than TRA — the headline."""
        assert table.all_orderings_hold

    def test_row_lookup(self, table):
        row = table.row(10.0)
        assert row.variation_percent == 10.0
        with pytest.raises(KeyError):
            table.row(99.0)

    def test_paper_reference_values_attached(self, table):
        row = table.row(10.0)
        assert row.paper_tra == 0.18
        assert row.paper_two_row == 0.00

    def test_clean_at_five_percent(self, table):
        row = table.row(5.0)
        assert row.tra_error_percent < 0.1
        assert row.two_row_error_percent < 0.1

    def test_monotone_degradation(self, table):
        tra = [table.row(l).tra_error_percent for l in TABLE_I_LEVELS]
        two = [table.row(l).two_row_error_percent for l in TABLE_I_LEVELS]
        assert tra == sorted(tra)
        assert two == sorted(two)

    def test_reproducible(self):
        a = run_reliability_table(trials=3000, seed=5)
        b = run_reliability_table(trials=3000, seed=5)
        assert [r.tra_error_percent for r in a.rows] == [
            r.tra_error_percent for r in b.rows
        ]


class TestFormatting:
    def test_renders_all_rows(self, table):
        text = format_table(table)
        for level in TABLE_I_LEVELS:
            assert f"{level:.0f}%" in text
        assert "TRA" in text and "2-Row" in text


class TestIntegritySweep:
    """The data-at-rest sweep: constant rot rate, varying cadence."""

    @pytest.fixture(scope="class")
    def points(self):
        from repro.eval.reliability import run_integrity_sweep

        # one cadence, small workload: baseline + secded + off = 3 runs
        return run_integrity_sweep(
            intervals=(1e-4,), genome_bp=200, coverage=8
        )

    def test_shape(self, points):
        assert [(p.retention_interval_s, p.ecc) for p in points] == [
            (1e-4, "secded"),
            (1e-4, "off"),
        ]

    def test_rot_landed_and_work_was_charged(self, points):
        for p in points:
            assert p.flips_injected > 0
            assert p.windows > 0
            assert p.time_ns > 0 and p.energy_nj > 0

    def test_protected_arm_holds_contigs(self, points):
        protected = next(p for p in points if p.ecc == "secded")
        assert protected.contigs_intact
        assert protected.words_corrected > 0

    def test_ablated_arm_never_repairs(self, points):
        ablated = next(p for p in points if p.ecc == "off")
        assert ablated.words_corrected == 0
        assert ablated.words_uncorrectable == 0

    def test_format_renders_every_point(self, points):
        from repro.eval.reliability import format_integrity_sweep

        text = format_integrity_sweep(points)
        assert "secded" in text and "off" in text
        assert len(text.splitlines()) == len(points) + 1
