"""Machine-generated evaluation report and claim checks."""

import pytest

from repro.eval.reporting import (
    ClaimCheck,
    collect_claims,
    generate_report,
    write_report,
)


@pytest.fixture(scope="module")
def claims():
    return collect_claims()


class TestClaims:
    def test_every_quoted_claim_holds(self, claims):
        failing = [c.claim for c in claims if not c.holds]
        assert not failing, f"claims failing: {failing}"

    def test_covers_all_experiment_families(self, claims):
        text = " ".join(c.claim for c in claims)
        for token in (
            "XNOR throughput",
            "two-row",
            "area",
            "transient",
            "hashmap",
            "power",
            "parallelism",
            "memory-bottleneck",
            "utilisation",
        ):
            assert token in text, token

    def test_claim_row_rendering(self):
        check = ClaimCheck(
            claim="x", paper_value="1", measured_value="2", holds=False
        )
        assert "NO" in check.row()
        good = ClaimCheck(
            claim="x", paper_value="1", measured_value="1", holds=True
        )
        assert "yes" in good.row()

    def test_claim_row_is_well_formed_markdown(self):
        check = ClaimCheck(
            claim="speedup", paper_value="11x", measured_value="11.2x", holds=True
        )
        row = check.row()
        assert row.startswith("|") and row.endswith("|")
        cells = [c.strip() for c in row.strip("|").split("|")]
        assert cells == ["speedup", "11x", "11.2x", "yes"]


class TestClaimTableFormatting:
    def test_every_claim_renders_a_well_formed_row(self, claims):
        for check in claims:
            row = check.row()
            assert row.count("|") == 5  # 4 cells -> 5 separators
            cells = [c.strip() for c in row.strip("|").split("|")]
            assert cells[0] == check.claim
            assert cells[3] in ("yes", "NO")


class TestReport:
    def test_report_contains_every_section(self):
        report = generate_report()
        for heading in (
            "Claim checks",
            "Fig. 3b",
            "Table I",
            "Fig. 9",
            "Fig. 10",
            "Fig. 11",
            "Area overhead",
        ):
            assert heading in report

    def test_report_summarises_pass_count(self):
        report = generate_report()
        assert "/14 claims hold" in report

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "sub" / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# PIM-Assembler")
