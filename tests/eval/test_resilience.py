"""The resilience ablation study (variation x policy sweep)."""

import pytest

from repro.eval.resilience import (
    ResilienceWorkload,
    format_resilience_study,
    run_resilience_study,
)


@pytest.fixture(scope="module")
def quick_study():
    """One variation level, the two ends of the policy ladder."""
    return run_resilience_study(
        variation_levels=(15.0,),
        policies=("off", "detect-retry-remap"),
    )


class TestResilienceStudy:
    def test_off_corrupts_protected_recovers(self, quick_study):
        off = quick_study.point(15.0, "off")
        protected = quick_study.point(15.0, "detect-retry-remap")
        assert not off.identical_to_baseline
        assert protected.identical_to_baseline
        assert quick_study.strongest_policy_always_exact

    def test_overhead_is_accounted(self, quick_study):
        off = quick_study.point(15.0, "off")
        protected = quick_study.point(15.0, "detect-retry-remap")
        assert off.verify_time_ns == 0.0 and off.detected == 0
        assert protected.corrected > 0
        assert protected.verify_time_ns > 0
        assert 0 < protected.verify_time_fraction < 1
        assert protected.time_ns > off.time_ns  # retries + checks cost time

    def test_point_lookup_normalises_policy_name(self, quick_study):
        from repro.core.resilience import PolicyLevel

        point = quick_study.point(15.0, PolicyLevel.DETECT_RETRY_REMAP)
        assert point.policy == "detect-retry-remap"
        with pytest.raises(KeyError):
            quick_study.point(99.0, "off")

    def test_formatting_mentions_every_point(self, quick_study):
        text = format_resilience_study(quick_study)
        assert "baseline" in text
        assert "detect-retry-remap" in text
        assert text.count("15%") == len(quick_study.points)

    def test_workload_is_reproducible(self):
        a = ResilienceWorkload().materialise()
        b = ResilienceWorkload().materialise()
        assert str(a[0]) == str(b[0])
        assert [str(r.sequence) for r in a[1]] == [
            str(r.sequence) for r in b[1]
        ]
