"""Workload models: micro-benchmark vectors and the chr14 op counts."""

import pytest

from repro.assembly.hashmap import SoftwareKmerCounter
from repro.eval.workloads import (
    MICROBENCH_VECTOR_BITS,
    AssemblyWorkload,
    MicrobenchWorkload,
    chr14_workload,
    scaled_workload,
)
from repro.genome import ReadSimulator, synthetic_chromosome


class TestMicrobench:
    def test_paper_vector_lengths(self):
        assert MICROBENCH_VECTOR_BITS == (2**27, 2**28, 2**29)

    def test_validation(self):
        with pytest.raises(ValueError):
            MicrobenchWorkload(vector_bits=())
        with pytest.raises(ValueError):
            MicrobenchWorkload(vector_bits=(0,))


class TestChr14Counts:
    def test_paper_parameters(self):
        w = chr14_workload(16)
        assert w.read_count == 45_711_162
        assert w.read_length == 101
        assert w.genome_length == 88_000_000

    def test_kmers_per_read(self):
        assert chr14_workload(16).kmers_per_read == 86
        assert chr14_workload(32).kmers_per_read == 70

    def test_total_kmers_scale(self):
        w = chr14_workload(16)
        assert w.total_kmers == 45_711_162 * 86

    def test_coverage_is_about_52x(self):
        assert chr14_workload(16).coverage == pytest.approx(52.5, rel=0.02)

    def test_memory_footprint_matches_paper(self):
        """'total memory requirement ~9.2GB' — reads dominate; our
        full-footprint estimate must land in the same range."""
        w = chr14_workload(16)
        assert 1.0e9 < w.reads_bytes < 1.3e9  # 2-bit packed reads
        assert 1e9 < w.total_bytes < 15e9

    def test_unique_kmers_bounded_by_genome(self):
        for k in (16, 22, 26, 32):
            w = chr14_workload(k)
            assert 0 < w.unique_kmers <= w.genome_length

    def test_unique_kmers_grow_with_k(self):
        """Longer k-mers resolve repeats -> more distinct keys."""
        uniques = [chr14_workload(k).unique_kmers for k in (16, 22, 26, 32)]
        assert uniques == sorted(uniques)

    def test_duplicate_fraction_is_high(self):
        """~50x coverage -> the vast majority of queries are hits."""
        w = chr14_workload(16)
        assert w.duplicate_fraction > 0.95

    def test_small_k_bounded_by_keyspace(self):
        w = AssemblyWorkload(
            genome_length=10_000, read_count=100, read_length=50, k=4
        )
        assert w.unique_kmers <= 4**4

    def test_graph_size(self):
        w = chr14_workload(16)
        assert w.graph_edges == w.unique_kmers
        assert w.graph_nodes <= w.graph_edges

    def test_validation(self):
        with pytest.raises(ValueError):
            AssemblyWorkload(k=1)
        with pytest.raises(ValueError):
            AssemblyWorkload(k=200)
        with pytest.raises(ValueError):
            AssemblyWorkload(read_count=0)


class TestScaledWorkload:
    def test_scaling(self):
        w = scaled_workload(1e-4, k=16)
        assert w.read_count == int(45_711_162 * 1e-4)
        assert w.k == 16

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            scaled_workload(0.0, 16)
        with pytest.raises(ValueError):
            scaled_workload(1.5, 16)


class TestModelAgainstFunctionalRun:
    """The analytic op-count formulas must track a real small run."""

    def test_total_kmers_exact(self):
        genome = synthetic_chromosome(5000, seed=71)
        sim = ReadSimulator(read_length=60, seed=72)
        reads = sim.sample(genome, 300)
        w = AssemblyWorkload(
            genome_length=5000, read_count=300, read_length=60, k=15
        )
        actual = sum(r.sequence.kmer_count(15) for r in reads)
        assert actual == w.total_kmers

    def test_unique_kmers_within_20_percent(self):
        genome = synthetic_chromosome(20_000, seed=73)
        sim = ReadSimulator(read_length=80, seed=74)
        count = sim.reads_for_coverage(20_000, 40)
        reads = sim.sample(genome, count)
        counter = SoftwareKmerCounter(16)
        counter.add_reads(reads)
        w = AssemblyWorkload(
            genome_length=20_000, read_count=count, read_length=80, k=16
        )
        actual_unique = len(counter)
        assert abs(actual_unique - w.unique_kmers) / actual_unique < 0.20
