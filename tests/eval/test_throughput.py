"""Fig. 3b throughput sweep and the headline ratios."""

import pytest

from repro.eval.throughput import (
    FIG3B_PLATFORMS,
    headline_ratios,
    run_throughput_sweep,
)
from repro.eval.workloads import MicrobenchWorkload


@pytest.fixture(scope="module")
def sweep():
    return run_throughput_sweep()


class TestSweep:
    def test_covers_all_platforms_and_ops(self, sweep):
        platforms = {p.platform for p in sweep.points}
        assert platforms == set(FIG3B_PLATFORMS)
        ops = {p.operation for p in sweep.points}
        assert ops == {"xnor", "add"}

    def test_covers_three_vector_lengths(self, sweep):
        lengths = {p.vector_bits for p in sweep.points}
        assert lengths == {2**27, 2**28, 2**29}

    def test_series_lookup(self, sweep):
        series = sweep.series("P-A", "xnor")
        assert len(series) == 3
        assert all(p.platform == "P-A" for p in series)

    def test_average_requires_data(self, sweep):
        with pytest.raises(KeyError):
            sweep.average_bps("TPU", "xnor")

    def test_custom_workload(self):
        small = run_throughput_sweep(workload=MicrobenchWorkload(vector_bits=(1024,)))
        assert {p.vector_bits for p in small.points} == {1024}


class TestHeadlineRatios:
    def test_paper_values(self, sweep):
        ratios = headline_ratios(sweep)
        assert ratios["xnor_vs_cpu"] == pytest.approx(8.4, rel=0.02)
        assert ratios["xnor_vs_ambit"] == pytest.approx(2.33, rel=0.02)
        assert ratios["xnor_vs_d1"] == pytest.approx(1.9, rel=0.02)
        assert ratios["xnor_vs_d3"] == pytest.approx(3.7, rel=0.02)

    def test_pim_average_near_2_3(self, sweep):
        """Abstract: '2.3x higher throughput ... compared with ...
        recent processing-in-DRAM platforms' (averaged)."""
        ratios = headline_ratios(sweep)
        assert 2.0 < ratios["xnor_vs_pim_avg"] < 3.0
