"""Fig. 11 memory-wall study: MBR and RUR bars."""

import pytest

from repro.eval.memory_wall import (
    FIG11_K_VALUES,
    MemoryWallPoint,
    run_memory_wall_study,
)


@pytest.fixture(scope="module")
def study():
    return run_memory_wall_study()


class TestCoverage:
    def test_platforms_and_ks(self, study):
        assert set(study.platforms()) == {"GPU", "P-A", "Ambit", "D3", "D1"}
        ks = {p.k for p in study.points}
        assert ks == set(FIG11_K_VALUES)

    def test_point_lookup(self, study):
        point = study.point("P-A", 16)
        assert point.platform == "P-A"
        with pytest.raises(KeyError):
            study.point("P-A", 22)


class TestPaperShape:
    def test_pa_mbr_annotations(self, study):
        """Fig. 11a annotates P-A at ~9% (k=16) and ~16% (k=32)."""
        assert study.point("P-A", 16).mbr_percent == pytest.approx(9.0, abs=3.0)
        assert study.point("P-A", 32).mbr_percent == pytest.approx(16.0, abs=3.0)

    def test_gpu_mbr_70_percent_at_k32(self, study):
        assert study.point("GPU", 32).mbr_percent == pytest.approx(70.0, abs=5.0)

    def test_pa_lowest_mbr(self, study):
        for k in FIG11_K_VALUES:
            pa = study.point("P-A", k).mbr
            for name in study.platforms():
                assert study.point(name, k).mbr >= pa

    def test_mbr_grows_with_k(self, study):
        for name in study.platforms():
            assert study.point(name, 32).mbr >= study.point(name, 16).mbr

    def test_pa_highest_rur(self, study):
        """'PIM-Assembler has the highest RUR with up to ~65% when k=16'."""
        for k in FIG11_K_VALUES:
            pa = study.point("P-A", k).rur
            for name in study.platforms():
                assert study.point(name, k).rur <= pa
        assert study.point("P-A", 16).rur_percent == pytest.approx(65.0, abs=4.0)

    def test_pim_rur_above_45_percent_at_k16(self, study):
        """'PIM solutions give a higher ratio (>45%) compared to the GPU'."""
        for name in ("P-A", "Ambit", "D3", "D1"):
            assert study.point(name, 16).rur_percent > 45.0

    def test_gpu_rur_lowest(self, study):
        for k in FIG11_K_VALUES:
            gpu = study.point("GPU", k).rur
            for name in study.platforms():
                assert study.point(name, k).rur >= gpu


class TestValidation:
    def test_point_bounds(self):
        with pytest.raises(ValueError):
            MemoryWallPoint(platform="x", k=16, mbr=1.5, rur=0.5)
        with pytest.raises(ValueError):
            MemoryWallPoint(platform="x", k=16, mbr=0.5, rur=-0.1)

    def test_percent_properties(self):
        p = MemoryWallPoint(platform="x", k=16, mbr=0.25, rur=0.5)
        assert p.mbr_percent == 25.0
        assert p.rur_percent == 50.0
