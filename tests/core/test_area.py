"""Area-overhead model: the paper's ~5% claim."""

import pytest

from repro.core.area import AreaModel, AreaParameters
from repro.dram.geometry import SubArrayGeometry


class TestPaperNumbers:
    def test_sa_addon_count(self):
        """~50 transistors per SA x 256 bit lines."""
        report = AreaModel().report()
        assert report.sa_transistors == 50 * 256

    def test_mrd_count(self):
        """2 extra transistors per compute-row WL driver x 8 rows."""
        report = AreaModel().report()
        assert report.mrd_transistors == 16

    def test_total_is_51_rows(self):
        """Paper: '51 DRAM rows (51x256 transistors) per sub-array'."""
        report = AreaModel().report()
        assert report.equivalent_rows == 51
        assert report.total_transistors == 51 * 256

    def test_overhead_is_about_five_percent(self):
        report = AreaModel().report()
        assert report.overhead_percent == pytest.approx(4.98, abs=0.02)
        assert report.overhead_fraction == pytest.approx(51 / 1024)


class TestScaling:
    def test_smaller_subarray_higher_overhead(self):
        small = AreaModel(geometry=SubArrayGeometry(rows=256, cols=256))
        assert small.report().overhead_percent > AreaModel().report().overhead_percent

    def test_fewer_addon_transistors_fewer_rows(self):
        lean = AreaModel(params=AreaParameters(sa_addon_transistors=25))
        assert lean.report().equivalent_rows < 51

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            AreaParameters(sa_addon_transistors=-1)
