"""The AAP instruction set: addressing and locality validation."""

import pytest

from repro.core.isa import (
    AapCompute2,
    AapCompute3,
    AapCopy,
    DpuOp,
    RowAddress,
    SAOp,
)


def addr(row, subarray=0):
    return RowAddress(bank=0, mat=0, subarray=subarray, row=row)


class TestRowAddress:
    def test_with_row(self):
        assert addr(3).with_row(9) == addr(9)

    def test_subarray_key(self):
        a = RowAddress(bank=1, mat=2, subarray=3, row=4)
        assert a.subarray_key == (1, 2, 3)

    def test_same_subarray(self):
        assert addr(1).same_subarray(addr(2))
        assert not addr(1).same_subarray(addr(1, subarray=1))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            RowAddress(bank=-1, mat=0, subarray=0, row=0)

    def test_ordering(self):
        assert addr(1) < addr(2)


class TestAapCopy:
    def test_valid_within_subarray(self):
        AapCopy(src=addr(0), des=addr(5))

    def test_rejects_cross_subarray(self):
        with pytest.raises(ValueError):
            AapCopy(src=addr(0), des=addr(0, subarray=1))

    def test_mnemonic(self):
        assert AapCopy(src=addr(0), des=addr(1)).mnemonic == "AAP1"


class TestAapCompute2:
    def test_valid(self):
        instr = AapCompute2(src1=addr(0), src2=addr(1), des=addr(2))
        assert instr.op is SAOp.XNOR2

    def test_rejects_same_source_row(self):
        with pytest.raises(ValueError):
            AapCompute2(src1=addr(0), src2=addr(0), des=addr(2))

    def test_rejects_cross_subarray(self):
        with pytest.raises(ValueError):
            AapCompute2(src1=addr(0), src2=addr(1, subarray=1), des=addr(2))


class TestAapCompute3:
    def test_valid(self):
        AapCompute3(src1=addr(0), src2=addr(1), src3=addr(2), des=addr(3))

    def test_rejects_duplicate_sources(self):
        with pytest.raises(ValueError):
            AapCompute3(src1=addr(0), src2=addr(0), src3=addr(2), des=addr(3))

    def test_rejects_cross_subarray_destination(self):
        with pytest.raises(ValueError):
            AapCompute3(
                src1=addr(0), src2=addr(1), src3=addr(2),
                des=addr(3, subarray=1),
            )


class TestDpuOp:
    def test_valid_kinds(self):
        for kind in DpuOp.VALID_KINDS:
            DpuOp(subarray=(0, 0, 0), kind=kind)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            DpuOp(subarray=(0, 0, 0), kind="fft")
