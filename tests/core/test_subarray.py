"""Functional sub-array state and operations."""

import numpy as np
import pytest

from repro.core.isa import SAOp
from repro.core.subarray import SubArray
from repro.dram.geometry import SubArrayGeometry


@pytest.fixture
def sub():
    return SubArray(SubArrayGeometry(rows=32, cols=16, compute_rows=8))


def bits(rng, n=16):
    return rng.integers(0, 2, n).astype(np.uint8)


class TestRowAddressing:
    def test_compute_row_mapping(self, sub):
        assert sub.compute_row(1) == 24
        assert sub.compute_row(8) == 31

    def test_compute_row_bounds(self, sub):
        with pytest.raises(ValueError):
            sub.compute_row(0)
        with pytest.raises(ValueError):
            sub.compute_row(9)

    def test_is_compute_row(self, sub):
        assert not sub.is_compute_row(23)
        assert sub.is_compute_row(24)


class TestMemoryBehaviour:
    def test_write_read_roundtrip(self, sub, rng):
        data = bits(rng)
        sub.write_row(3, data)
        assert (sub.read_row(3) == data).all()

    def test_read_returns_copy(self, sub, rng):
        data = bits(rng)
        sub.write_row(0, data)
        out = sub.read_row(0)
        out[:] = 0
        assert (sub.read_row(0) == data).all()

    def test_rowclone(self, sub, rng):
        data = bits(rng)
        sub.write_row(1, data)
        sub.rowclone(1, 7)
        assert (sub.read_row(7) == data).all()

    def test_read_rows_block(self, sub, rng):
        a, b = bits(rng), bits(rng)
        sub.write_row(4, a)
        sub.write_row(5, b)
        block = sub.read_rows(4, 6)
        assert (block[0] == a).all() and (block[1] == b).all()

    def test_read_rows_bounds(self, sub):
        with pytest.raises(IndexError):
            sub.read_rows(0, 33)

    def test_row_bounds(self, sub, rng):
        with pytest.raises(IndexError):
            sub.write_row(32, bits(rng))
        with pytest.raises(IndexError):
            sub.read_row(-1)

    def test_rejects_wrong_width(self, sub):
        with pytest.raises(ValueError):
            sub.write_row(0, np.zeros(15, dtype=np.uint8))

    def test_rejects_non_binary(self, sub):
        with pytest.raises(ValueError):
            sub.write_row(0, np.full(16, 3, dtype=np.uint8))

    def test_clear(self, sub, rng):
        sub.write_row(2, bits(rng))
        sub.clear()
        assert sub.snapshot().sum() == 0


class TestComputeBehaviour:
    def test_compute2_xnor(self, sub, rng):
        a, b = bits(rng), bits(rng)
        sub.write_row(0, a)
        sub.write_row(1, b)
        out = sub.compute2(0, 1, 2, SAOp.XNOR2)
        assert (out == (1 - (a ^ b))).all()
        assert (sub.read_row(2) == out).all()

    def test_tra_carry_majority(self, sub, rng):
        rows = [bits(rng) for _ in range(3)]
        for i, r in enumerate(rows):
            sub.write_row(i, r)
        out = sub.tra_carry(0, 1, 2, 3)
        expected = ((rows[0].astype(int) + rows[1] + rows[2]) >= 2).astype(np.uint8)
        assert (out == expected).all()

    def test_tra_rejects_duplicate_rows(self, sub):
        with pytest.raises(ValueError):
            sub.tra_carry(0, 0, 1, 2)

    def test_sum_cycle_uses_latch(self, sub, rng):
        a, b, c = bits(rng), bits(rng), bits(rng)
        sub.write_row(0, a)
        sub.write_row(1, b)
        sub.sa.load_latch(c)
        out = sub.sum_cycle(0, 1, 2)
        assert (out == (a ^ b ^ c)).all()

    def test_full_adder_sequence(self, sub, rng):
        """Sum-then-carry on one bit plane matches integer addition."""
        a, b, cin = bits(rng), bits(rng), bits(rng)
        sub.write_row(0, a)
        sub.write_row(1, b)
        sub.write_row(2, cin)
        sub.sa.load_latch(cin)
        s = sub.sum_cycle(0, 1, 3)
        c = sub.tra_carry(0, 1, 2, 4)
        total = a.astype(int) + b + cin
        assert (s == total % 2).all()
        assert (c == (total >= 2)).all()
