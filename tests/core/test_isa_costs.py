"""Mnemonic registry <-> cost-table completeness, and the new commands.

The verifier, the replayer and both schedulers all key on command
mnemonics; a mnemonic priced in one table but missing from another is
exactly the kind of silent drift rule V008/C001 exists to catch, so
the registry itself is pinned here.
"""

import numpy as np
import pytest

from repro.core.energy import EnergyParameters
from repro.core.isa import ALL_MNEMONICS, LatchClear, RowInit
from repro.core.timing import (
    DEFAULT_TIMING,
    command_cost_table,
    command_latency_table,
)

ENERGY = EnergyParameters()


def test_every_mnemonic_has_a_latency():
    table = command_latency_table(DEFAULT_TIMING)
    assert set(table) == set(ALL_MNEMONICS)


def test_every_mnemonic_has_an_energy():
    table = command_cost_table(DEFAULT_TIMING, ENERGY)
    assert set(table) == set(ALL_MNEMONICS)
    for mnemonic, (latency, energy) in table.items():
        assert latency >= 0.0, mnemonic
        assert energy >= 0.0, mnemonic


def test_registry_has_no_duplicates():
    assert len(ALL_MNEMONICS) == len(set(ALL_MNEMONICS))


def test_row_init_costs_one_rowclone():
    latencies = command_latency_table(DEFAULT_TIMING)
    assert latencies["ROW_INIT"] == latencies["AAP1"]


def test_latch_clear_is_free():
    latencies = command_latency_table(DEFAULT_TIMING)
    costs = command_cost_table(DEFAULT_TIMING, ENERGY)
    assert latencies["LATCH_CLR"] == 0.0
    assert costs["LATCH_CLR"] == (0.0, 0.0)


def test_row_init_validates_fill_value():
    from repro.core.isa import RowAddress

    addr = RowAddress(0, 0, 0, 3)
    assert RowInit(des=addr, value=1).mnemonic == "ROW_INIT"
    with pytest.raises(ValueError):
        RowInit(des=addr, value=2)


def test_latch_clear_carries_its_subarray():
    instr = LatchClear(subarray=(0, 1, 2))
    assert instr.mnemonic == "LATCH_CLR"
    assert instr.subarray == (0, 1, 2)


# ----- replay of the new mnemonics -------------------------------------------


def test_row_init_replays_the_fill_value(small_pim):
    from repro.core.isa import RowAddress
    from repro.core.trace import CommandTrace, replay

    ctrl = small_pim.controller
    trace = CommandTrace()
    ctrl.attach_trace(trace)
    addr = RowAddress(0, 0, 0, 5)
    with small_pim.phase("test"):
        ctrl.init_row(addr, 1)
    ctrl.attach_trace(None)
    assert [e.mnemonic for e in trace] == ["ROW_INIT"]
    assert trace[0].payload == (1,)

    from repro.core.platform import PimAssembler

    replica = PimAssembler.small(subarrays=4, rows=64, cols=32)
    with replica.phase("replay"):
        replay(trace, replica.controller)
    assert bool(replica.device.subarray_at((0, 0, 0)).read_row(5).all())


def test_latch_clear_replays(small_pim):
    from repro.core.trace import CommandTrace, replay

    ctrl = small_pim.controller
    trace = CommandTrace()
    ctrl.attach_trace(trace)
    with small_pim.phase("test"):
        ctrl.clear_latch((0, 0, 0))
    ctrl.attach_trace(None)
    assert [e.mnemonic for e in trace] == ["LATCH_CLR"]

    from repro.core.platform import PimAssembler

    replica = PimAssembler.small(subarrays=4, rows=64, cols=32)
    with replica.phase("replay"):
        replay(trace, replica.controller)  # must not raise


def test_ledger_folds_row_init_into_aap1(small_pim):
    from repro.core.isa import RowAddress

    ctrl = small_pim.controller
    with small_pim.phase("test"):
        ctrl.init_row(RowAddress(0, 0, 0, 5), 1)
    totals = small_pim.stats.totals()
    assert totals.commands.get("AAP1") == 1
    assert "ROW_INIT" not in totals.commands
    assert totals.time_ns == DEFAULT_TIMING.t_aap
