"""Logic-level reconfigurable SA: truth tables, latch, control signals."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.isa import SAOp
from repro.core.sense_amplifier import (
    CONTROL_SIGNALS,
    SenseAmplifierArray,
    full_adder_reference,
    reference_compute2,
)

bit_rows = st.integers(min_value=1, max_value=64).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
    )
)


class TestControlSignals:
    def test_all_functions_present(self):
        assert set(CONTROL_SIGNALS) == {"write_read", "xnor2", "carry", "sum"}

    def test_memory_mode_disables_mux(self):
        assert CONTROL_SIGNALS["write_read"]["Enmux"] == 0

    def test_xnor_mode_enables_mux_path(self):
        signals = CONTROL_SIGNALS["xnor2"]
        assert signals["Enm"] == 0 and signals["Enx"] == 1
        assert signals["Enmux"] == 1

    def test_carry_uses_memory_sense_path(self):
        assert CONTROL_SIGNALS["carry"]["Enm"] == 1
        assert CONTROL_SIGNALS["carry"]["Enx"] == 0


class TestCompute2:
    @pytest.mark.parametrize("op", list(SAOp))
    def test_matches_reference_on_exhaustive_pairs(self, op):
        sa = SenseAmplifierArray(columns=4)
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        assert (sa.compute2(a, b, op) == reference_compute2(a, b, op)).all()

    @given(data=bit_rows, op=st.sampled_from(list(SAOp)))
    def test_matches_reference_property(self, data, op):
        a_list, b_list = data
        a = np.array(a_list, dtype=np.uint8)
        b = np.array(b_list, dtype=np.uint8)
        sa = SenseAmplifierArray(columns=a.size)
        assert (sa.compute2(a, b, op) == reference_compute2(a, b, op)).all()

    def test_rejects_wrong_width(self):
        sa = SenseAmplifierArray(columns=8)
        with pytest.raises(ValueError):
            sa.compute2(np.zeros(4, dtype=np.uint8), np.zeros(8, dtype=np.uint8),
                        SAOp.XNOR2)

    def test_rejects_non_binary(self):
        sa = SenseAmplifierArray(columns=2)
        with pytest.raises(ValueError):
            sa.compute2(np.array([0, 2]), np.array([0, 1]), SAOp.XNOR2)


class TestAdditionPath:
    def test_carry_is_majority_and_latches(self):
        sa = SenseAmplifierArray(columns=4)
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 0, 1], dtype=np.uint8)
        c = np.array([1, 1, 1, 0], dtype=np.uint8)
        maj = sa.carry(a, b, c)
        _, expected_carry = full_adder_reference(a, b, c)
        assert (maj == expected_carry).all()
        assert (sa.latch == expected_carry).all()

    def test_sum_with_latch_is_full_adder_sum(self):
        sa = SenseAmplifierArray(columns=4)
        a = np.array([0, 1, 1, 0], dtype=np.uint8)
        b = np.array([1, 1, 0, 0], dtype=np.uint8)
        carry_in = np.array([1, 0, 1, 0], dtype=np.uint8)
        sa.load_latch(carry_in)
        s = sa.sum_with_latch(a, b)
        expected_sum, _ = full_adder_reference(a, b, carry_in)
        assert (s == expected_sum).all()

    @given(data=bit_rows)
    def test_ripple_bit_is_exact(self, data):
        """One sum+carry pair == one full-adder stage, any width."""
        a_list, b_list = data
        a = np.array(a_list, dtype=np.uint8)
        b = np.array(b_list, dtype=np.uint8)
        c = np.roll(a, 1)  # arbitrary carry-in pattern
        sa = SenseAmplifierArray(columns=a.size)
        sa.load_latch(c)
        s = sa.sum_with_latch(a, b)
        maj = sa.carry(a, b, c)
        exp_s, exp_c = full_adder_reference(a, b, c)
        assert (s == exp_s).all() and (maj == exp_c).all()

    def test_clear_latch(self):
        sa = SenseAmplifierArray(columns=3)
        sa.load_latch(np.array([1, 1, 1], dtype=np.uint8))
        sa.clear_latch()
        assert sa.latch.sum() == 0

    def test_latch_is_copied_out(self):
        sa = SenseAmplifierArray(columns=2)
        view = sa.latch
        view[:] = 1
        assert sa.latch.sum() == 0

    def test_rejects_zero_columns(self):
        with pytest.raises(ValueError):
            SenseAmplifierArray(columns=0)
