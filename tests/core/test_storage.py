"""The columnar packed bit-plane store: pack boundary and field access.

Property tests for the invariants everything else leans on: LSB-first
round-tripping at ragged widths, the tail-bits-are-zero rule, chunked
many-query kernels matching their one-shot results, bit-field
gather/scatter, and snapshot restoration across the old-unpacked /
new-packed journal format boundary.
"""

import numpy as np
import pytest

from repro.core.storage import (
    BitPlaneStore,
    col_mask,
    compare_many_packed,
    hamming_many_packed,
    pack_rows,
    popcount_words,
    unpack_rows,
    width_mask,
    words_for,
)


RAGGED_WIDTHS = [1, 7, 63, 64, 65, 100, 128, 200, 256, 300]


class TestPackRoundTrip:
    @pytest.mark.parametrize("cols", RAGGED_WIDTHS)
    def test_unpack_pack_identity(self, cols):
        rng = np.random.default_rng(cols)
        bits = rng.integers(0, 2, size=(17, cols), dtype=np.uint8)
        packed = pack_rows(bits)
        assert packed.shape == (17, words_for(cols))
        assert packed.dtype == np.uint64
        np.testing.assert_array_equal(unpack_rows(packed, cols), bits)

    @pytest.mark.parametrize("cols", RAGGED_WIDTHS)
    def test_pack_unpack_identity_on_words(self, cols):
        """pack(unpack(x)) == x for any tail-clean word image."""
        rng = np.random.default_rng(1000 + cols)
        words = rng.integers(
            0, 1 << 63, size=(9, words_for(cols)), dtype=np.uint64
        )
        words &= col_mask(cols)  # the invariant every stored word obeys
        np.testing.assert_array_equal(
            pack_rows(unpack_rows(words, cols)), words
        )

    def test_lsb_first_layout(self):
        bits = np.zeros(128, dtype=np.uint8)
        bits[0] = 1  # column 0 -> word 0, bit 0
        bits[65] = 1  # column 65 -> word 1, bit 1
        packed = pack_rows(bits)
        assert packed[0] == np.uint64(1)
        assert packed[1] == np.uint64(2)

    @pytest.mark.parametrize("cols", [1, 63, 65, 100, 300])
    def test_tail_bits_are_zero(self, cols):
        bits = np.ones((4, cols), dtype=np.uint8)
        packed = pack_rows(bits)
        np.testing.assert_array_equal(packed & ~col_mask(cols), 0)

    def test_wrong_word_count_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            unpack_rows(np.zeros(3, dtype=np.uint64), 100)


class TestMasks:
    def test_col_mask_tail(self):
        mask = col_mask(100)
        assert mask.shape == (2,)
        assert mask[0] == np.uint64(0xFFFFFFFFFFFFFFFF)
        assert mask[1] == np.uint64((1 << 36) - 1)

    def test_width_mask_subset_of_col_mask(self):
        for width in (1, 63, 64, 65, 99):
            wm = width_mask(100, width)
            np.testing.assert_array_equal(wm & ~col_mask(100), 0)
            assert popcount_words(wm, axis=None).sum() == width

    def test_width_mask_full_when_none_or_wide(self):
        np.testing.assert_array_equal(width_mask(100, None), col_mask(100))
        np.testing.assert_array_equal(width_mask(100, 100), col_mask(100))
        np.testing.assert_array_equal(width_mask(100, 500), col_mask(100))


class TestPackedKernels:
    def _case(self, seed, q=37, n=23, cols=200):
        rng = np.random.default_rng(seed)
        queries = rng.integers(0, 2, size=(q, cols), dtype=np.uint8)
        block = rng.integers(0, 2, size=(n, cols), dtype=np.uint8)
        # plant exact matches so both branches are exercised
        block[3] = queries[5]
        block[7] = queries[5]
        return queries, block, cols

    @pytest.mark.parametrize("width", [None, 64, 100, 111])
    def test_compare_matches_unpacked_reference(self, width):
        queries, block, cols = self._case(7)
        w = cols if width is None else width
        expected = (
            block[None, :, :w] == queries[:, None, :w]
        ).all(axis=2)
        got = compare_many_packed(
            pack_rows(queries), pack_rows(block), width_mask(cols, width)
        )
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("width", [None, 64, 100, 111])
    def test_hamming_matches_unpacked_reference(self, width):
        queries, block, cols = self._case(11)
        w = cols if width is None else width
        expected = (
            block[None, :, :w] != queries[:, None, :w]
        ).sum(axis=2)
        got = hamming_many_packed(
            pack_rows(queries), pack_rows(block), width_mask(cols, width)
        )
        np.testing.assert_array_equal(got, expected)

    def test_chunked_equals_one_shot(self):
        """Large-Q regression: a tiny chunk budget changes nothing."""
        queries, block, cols = self._case(13, q=211, n=17)
        qw, bw = pack_rows(queries), pack_rows(block)
        mask = width_mask(cols, 111)
        np.testing.assert_array_equal(
            compare_many_packed(qw, bw, mask, chunk_bytes=256),
            compare_many_packed(qw, bw, mask),
        )
        np.testing.assert_array_equal(
            hamming_many_packed(qw, bw, mask, chunk_bytes=256),
            hamming_many_packed(qw, bw, mask),
        )

    def test_unpacked_kernels_chunk_identically(self):
        from repro.core.bitplane import compare_many, hamming_many

        queries, block, cols = self._case(17, q=101, n=13)
        np.testing.assert_array_equal(
            compare_many(queries, block, 111, chunk_bytes=64),
            compare_many(queries, block, 111),
        )
        np.testing.assert_array_equal(
            hamming_many(queries, block, 111, chunk_bytes=64),
            hamming_many(queries, block, 111),
        )


class TestStoreBasics:
    def test_growth_preserves_contents(self):
        store = BitPlaneStore(rows=8, cols=100)
        rng = np.random.default_rng(0)
        written = []
        for i in range(9):  # forces several capacity doublings
            slot = store.new_slot(f"s{i}")
            bits = rng.integers(0, 2, size=100, dtype=np.uint8)
            store.write_row(slot, 3, bits)
            written.append((slot, bits))
        for slot, bits in written:
            np.testing.assert_array_equal(store.read_row(slot, 3), bits)

    def test_footprint_is_one_eighth_for_aligned_cols(self):
        store = BitPlaneStore(rows=64, cols=256)
        assert store.slot_nbytes * 8 == store.unpacked_slot_nbytes

    def test_copy_row_and_clear(self):
        store = BitPlaneStore(rows=4, cols=65)
        slot = store.new_slot()
        bits = np.ones(65, dtype=np.uint8)
        store.write_row(slot, 0, bits)
        store.copy_row(slot, 0, 2)
        np.testing.assert_array_equal(store.read_row(slot, 2), bits)
        store.clear_slot(slot)
        assert not store.tensor[slot].any()

    def test_slot_bounds_checked(self):
        store = BitPlaneStore(rows=4, cols=64)
        with pytest.raises(IndexError):
            store.read_row(0, 0)


class TestBitFields:
    def test_gather_scatter_round_trip(self):
        store = BitPlaneStore(rows=8, cols=256)
        for i in range(3):
            store.new_slot(f"s{i}")
        rng = np.random.default_rng(42)
        n = 200
        slots = rng.integers(0, 3, size=n)
        rows = rng.integers(0, 8, size=n)
        # 8-bit fields at byte-aligned offsets: duplicates allowed as
        # long as (slot, row, offset) triples are unique
        triples = rng.permutation(3 * 8 * 32)[:n]
        slots = triples // (8 * 32)
        rows = (triples // 32) % 8
        offsets = (triples % 32) * 8
        values = rng.integers(0, 256, size=n)
        store.write_fields(slots, rows, offsets, 8, values)
        np.testing.assert_array_equal(
            store.read_fields(slots, rows, offsets, 8), values
        )

    def test_fields_sharing_a_word_do_not_clobber(self):
        store = BitPlaneStore(rows=2, cols=128)
        store.new_slot()
        slots = np.zeros(8, dtype=np.int64)
        rows = np.zeros(8, dtype=np.int64)
        offsets = np.arange(8) * 8  # all in word 0
        values = np.arange(8) + 1
        store.write_fields(slots, rows, offsets, 8, values)
        np.testing.assert_array_equal(
            store.read_fields(slots, rows, offsets, 8), values
        )

    def test_straddling_fields(self):
        store = BitPlaneStore(rows=2, cols=256)
        store.new_slot()
        offsets = np.array([60, 124])  # 10-bit fields across word seams
        slots = np.zeros(2, dtype=np.int64)
        rows = np.zeros(2, dtype=np.int64)
        values = np.array([0b1010110011, 0b0111001101])
        store.write_fields(slots, rows, offsets, 10, values)
        np.testing.assert_array_equal(
            store.read_fields(slots, rows, offsets, 10), values
        )
        # neighbouring bits stay clear
        total_set = popcount_words(store.tensor[0], axis=None).sum()
        assert total_set == sum(int(v).bit_count() for v in values)

    def test_scatter_respects_prior_contents(self):
        store = BitPlaneStore(rows=1, cols=64)
        store.new_slot()
        store.write_row(0, 0, np.ones(64, dtype=np.uint8))
        store.write_fields(
            np.array([0]), np.array([0]), np.array([8]), 8, np.array([0])
        )
        row = store.read_row(0, 0)
        assert not row[8:16].any()
        assert row[:8].all() and row[16:].all()


class TestSnapshotFormats:
    def _platform(self):
        from repro.core.platform import PimAssembler

        pim = PimAssembler.small(subarrays=2, rows=16, cols=100)
        rng = np.random.default_rng(3)
        for key in list(pim.device.subarray_keys(limit=2)):
            sub = pim.device.subarray_at(key)
            for row in (0, 5, 11):
                sub.write_row(
                    row, rng.integers(0, 2, size=100, dtype=np.uint8)
                )
        return pim

    def test_state_dict_is_fixed_point(self):
        from repro.core.platform import PimAssembler

        pim = self._platform()
        snapshot = pim.state_dict()
        assert snapshot["format"] == 2
        restored = PimAssembler.from_state(snapshot)
        assert restored.state_dict() == snapshot

    def test_v1_unpacked_entries_restore_bit_identical(self):
        """A format-1 journal (MSB-first packbits of uint8 bits) must
        land in packed storage with identical row contents."""
        import base64

        from repro.core.platform import PimAssembler

        pim = self._platform()
        snapshot = pim.state_dict()
        legacy = dict(snapshot)
        legacy.pop("format")
        legacy["subarrays"] = []
        for entry in snapshot["subarrays"]:
            sub = pim.device.subarray_at(tuple(entry["key"]))
            legacy["subarrays"].append(
                {
                    "key": entry["key"],
                    "bits": base64.b64encode(
                        np.packbits(sub.snapshot())
                    ).decode("ascii"),
                    "latch": entry["latch"],
                }
            )
        restored = PimAssembler.from_state(legacy)
        for entry in snapshot["subarrays"]:
            key = tuple(entry["key"])
            np.testing.assert_array_equal(
                restored.device.subarray_at(key).snapshot(),
                pim.device.subarray_at(key).snapshot(),
            )
        # and a re-snapshot of the restored platform is format 2
        assert restored.state_dict()["format"] == 2


class TestConversionCounters:
    def test_boundary_churn_is_counted_per_label(self):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        with registry.activate():
            store = BitPlaneStore(rows=4, cols=64)
            slot = store.new_slot("bank0")
            store.write_row(slot, 0, np.ones(64, dtype=np.uint8))
            store.read_rows(slot, 0, 3)
        snap = registry.snapshot()
        assert snap["storage.pack_rows"]["value"] == 1
        assert snap["storage.pack_rows.bank0"]["value"] == 1
        assert snap["storage.unpack_rows"]["value"] == 3
        assert snap["storage.bytes"]["value"] == store.nbytes
        assert snap["storage.slots"]["value"] == 1.0
