"""Fault injection: Table I error rates inside the functional simulator."""

import numpy as np
import pytest

from repro.assembly import PimKmerCounter, SoftwareKmerCounter
from repro.core import PimAssembler
from repro.core.faults import FaultModel
from repro.genome import synthetic_chromosome


def faulty_pim(model, **kwargs):
    pim = PimAssembler.small(**kwargs)
    pim.controller.faults = model
    return pim


class TestFaultModel:
    def test_zero_rate_is_transparent(self, rng):
        model = FaultModel()
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        assert model.corrupt(bits, "compute2") is bits
        assert not model.enabled

    def test_rate_one_flips_everything(self):
        model = FaultModel(compute2_rate=1.0)
        bits = np.zeros(32, dtype=np.uint8)
        assert model.corrupt(bits, "compute2").all()
        assert model.injected_faults == 32

    def test_statistical_rate(self):
        model = FaultModel(compute2_rate=0.1, seed=3)
        bits = np.zeros(100_000, dtype=np.uint8)
        flipped = model.corrupt(bits, "compute2").sum()
        assert 0.08 * bits.size < flipped < 0.12 * bits.size

    def test_sum_rate_defaults_to_compute2(self):
        model = FaultModel(compute2_rate=0.25)
        assert model.sum_rate == 0.25

    def test_mechanism_specific_rates(self):
        model = FaultModel(compute2_rate=0.0, tra_rate=1.0)
        bits = np.zeros(8, dtype=np.uint8)
        assert not model.corrupt(bits, "compute2").any()
        assert model.corrupt(bits, "tra").all()

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            FaultModel().corrupt(np.zeros(4, dtype=np.uint8), "quantum")

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultModel(compute2_rate=1.5)

    def test_copy_rate_mechanism(self):
        model = FaultModel(copy_rate=1.0)
        assert model.enabled
        assert model.rate_for("copy") == 1.0
        bits = np.zeros(16, dtype=np.uint8)
        assert model.corrupt(bits, "copy").all()
        assert not FaultModel().corrupt(bits, "copy").any()

    def test_rate_for_unknown_mechanism(self):
        from repro.errors import FaultConfigError

        with pytest.raises(FaultConfigError):
            FaultModel().rate_for("quantum")

    def test_decide_is_seed_deterministic(self):
        """Two models with the same seed draw identical fault events."""
        a = FaultModel(compute2_rate=0.3, seed=42)
        b = FaultModel(compute2_rate=0.3, seed=42)
        assert (a.decide(1000, 0.3) == b.decide(1000, 0.3)).all()
        assert (a.decide((4, 8), 0.5) == b.decide((4, 8), 0.5)).all()
        c = FaultModel(compute2_rate=0.3, seed=43)
        assert (a.decide(1000, 0.3) != c.decide(1000, 0.3)).any()

    def test_decide_accepts_per_element_rates(self):
        model = FaultModel(seed=1)
        rates = np.array([0.0, 0.0, 1.0, 1.0])
        fired = model.decide(4, rates)
        assert not fired[:2].any() and fired[2:].all()

    def test_corrupt_is_seed_deterministic(self):
        bits = np.zeros(256, dtype=np.uint8)
        a = FaultModel(compute2_rate=0.1, seed=9).corrupt(bits, "compute2")
        b = FaultModel(compute2_rate=0.1, seed=9).corrupt(bits, "compute2")
        assert (a == b).all()

    def test_corrupt_scale_derates(self):
        """The retry path's derated re-execution flips fewer bits."""
        bits = np.zeros(100_000, dtype=np.uint8)
        full = FaultModel(compute2_rate=0.2, seed=3).corrupt(bits, "compute2")
        derated = FaultModel(compute2_rate=0.2, seed=3).corrupt(
            bits, "compute2", scale=0.1
        )
        assert 0 < derated.sum() < full.sum()

    def test_decide_split_draw_equals_concatenated_draw(self):
        """decide(a+b) == decide(a) ++ decide(b) at one seed — the
        stream-equivalence rule the bulk engine's batching relies on."""
        whole = FaultModel(seed=21).decide(100, 0.4)
        model = FaultModel(seed=21)
        split = np.concatenate([model.decide(60, 0.4), model.decide(40, 0.4)])
        assert (whole == split).all()

    def test_decide_2d_draw_equals_row_major_rows(self):
        """decide((n, w)) == n consecutive decide(w) draws, row-major."""
        block = FaultModel(seed=33).decide((5, 16), 0.25)
        model = FaultModel(seed=33)
        rows = np.vstack([model.decide(16, 0.25) for _ in range(5)])
        assert (block == rows).all()

    def test_corrupt_block_equals_per_row_corrupt(self, rng):
        """One (rows, cols) corruption draw is bit-identical to
        corrupting each row in order (same seed, same flips)."""
        block = rng.integers(0, 2, (8, 32)).astype(np.uint8)
        batched_model = FaultModel(compute2_rate=0.15, seed=5)
        batched = batched_model.corrupt_block(block, "compute2")
        rowwise_model = FaultModel(compute2_rate=0.15, seed=5)
        rowwise = np.vstack(
            [rowwise_model.corrupt(row, "compute2") for row in block]
        )
        assert (batched == rowwise).all()
        assert batched_model.injected_faults == rowwise_model.injected_faults

    def test_corrupt_block_zero_rate_is_identity(self, rng):
        """Zero-rate mechanisms must not draw: the stream stays aligned."""
        block = rng.integers(0, 2, (4, 16)).astype(np.uint8)
        model = FaultModel(compute2_rate=0.5, seed=2)
        assert model.corrupt_block(block, "copy") is block
        # the skipped draw left the stream untouched
        ref = FaultModel(compute2_rate=0.5, seed=2)
        assert (model.decide(64, 0.5) == ref.decide(64, 0.5)).all()

    def test_from_variation_matches_table1(self):
        """Rates derived from the Monte Carlo track Table I: clean at
        +/-5%, TRA markedly worse at +/-10%."""
        clean = FaultModel.from_variation(5.0)
        assert clean.compute2_rate < 0.001
        assert clean.tra_rate < 0.001
        stressed = FaultModel.from_variation(10.0)
        assert stressed.tra_rate > 5 * max(stressed.compute2_rate, 1e-6)


class TestFunctionalImpact:
    def test_zero_faults_identical_tables(self):
        ref = synthetic_chromosome(300, seed=601)
        pim = faulty_pim(FaultModel(), subarrays=4, rows=256, cols=64)
        counter = PimKmerCounter(pim, 9)
        counter.add_sequence(ref)
        software = SoftwareKmerCounter(9)
        software.add_sequence(ref)
        assert counter.counts() == software.counts()

    def test_heavy_faults_corrupt_the_table(self):
        # k=6 gives many duplicate queries, whose matches the faulty
        # scans can miss (a missed match re-inserts the k-mer).
        ref = synthetic_chromosome(300, seed=602)
        model = FaultModel(compute2_rate=0.02, seed=7)
        pim = faulty_pim(model, subarrays=4, rows=256, cols=64)
        counter = PimKmerCounter(pim, 6)
        counter.add_sequence(ref)
        software = SoftwareKmerCounter(6)
        software.add_sequence(ref)
        assert counter.counts() != software.counts()

    def test_table1_two_row_rate_is_harmless_at_10pct(self):
        """The paper's reliability argument, end to end: at +/-10%
        variation the two-row mechanism's error rate leaves the k-mer
        table intact, while TRA's rate would not be."""
        ref = synthetic_chromosome(300, seed=603)
        model = FaultModel.from_variation(10.0, seed=11)
        # apply ONLY the two-row (compute2) rate, as the hashmap scan
        # is a pure two-row-activation workload
        scan_model = FaultModel(compute2_rate=model.compute2_rate, seed=11)
        pim = faulty_pim(scan_model, subarrays=4, rows=256, cols=64)
        counter = PimKmerCounter(pim, 9)
        counter.add_sequence(ref)
        software = SoftwareKmerCounter(9)
        software.add_sequence(ref)
        assert counter.counts() == software.counts()

    def test_tra_faults_break_degree_sums(self, rng):
        from repro.mapping import wallace_column_sum

        rows = [rng.integers(0, 2, 32).astype(np.uint8) for _ in range(9)]
        clean_pim = PimAssembler.small(subarrays=1, rows=256, cols=32)
        clean = wallace_column_sum(clean_pim, rows)
        faulty = faulty_pim(
            FaultModel(tra_rate=0.2, seed=13), subarrays=1, rows=256, cols=32
        )
        corrupted = wallace_column_sum(faulty, rows)
        assert (clean == np.sum(rows, axis=0)).all()
        assert (corrupted != clean).any()
