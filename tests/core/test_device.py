"""Device hierarchy: navigation, validation, DPU and GRB plumbing."""

import numpy as np
import pytest

from repro.core.device import Device
from repro.core.dpu import Dpu
from repro.core.isa import RowAddress
from repro.core.mat import GlobalRowBuffer
from repro.dram.geometry import (
    BankGeometry,
    DeviceGeometry,
    MatGeometry,
    SubArrayGeometry,
)


def tiny_device():
    return Device(
        DeviceGeometry(
            bank=BankGeometry(
                mat=MatGeometry(
                    subarray=SubArrayGeometry(rows=32, cols=16, compute_rows=8),
                    subarrays_x=2,
                    subarrays_y=1,
                ),
                mats_x=2,
                mats_y=1,
            ),
            num_banks=2,
        )
    )


class TestNavigation:
    def test_subarray_at_address(self):
        device = tiny_device()
        addr = RowAddress(bank=1, mat=1, subarray=1, row=0)
        sub = device.subarray_at(addr)
        assert sub.geometry.rows == 32

    def test_subarray_at_key(self):
        device = tiny_device()
        assert device.subarray_at((0, 0, 0)) is device.subarray_at((0, 0, 0))

    def test_distinct_subarrays_are_distinct_state(self):
        device = tiny_device()
        a = device.subarray_at((0, 0, 0))
        b = device.subarray_at((0, 0, 1))
        a.write_row(0, np.ones(16, dtype=np.uint8))
        assert b.read_row(0).sum() == 0

    def test_bank_bounds(self):
        with pytest.raises(IndexError):
            tiny_device().bank(2)

    def test_validate_address(self):
        device = tiny_device()
        with pytest.raises(IndexError):
            device.validate_address(RowAddress(bank=0, mat=0, subarray=0, row=32))
        with pytest.raises(IndexError):
            device.validate_address(RowAddress(bank=0, mat=2, subarray=0, row=0))

    def test_subarray_keys_enumeration(self):
        device = tiny_device()
        keys = list(device.subarray_keys())
        assert len(keys) == device.num_subarrays == 8
        assert keys[0] == (0, 0, 0)
        assert len(list(device.subarray_keys(limit=3))) == 3


class TestGlobalRowBuffer:
    def test_load_read(self):
        grb = GlobalRowBuffer(width=8)
        data = np.ones(8, dtype=np.uint8)
        grb.load(data)
        assert (grb.read() == data).all()
        assert grb.valid

    def test_read_before_load(self):
        with pytest.raises(RuntimeError):
            GlobalRowBuffer(width=4).read()

    def test_invalidate(self):
        grb = GlobalRowBuffer(width=4)
        grb.load(np.zeros(4, dtype=np.uint8))
        grb.invalidate()
        assert not grb.valid

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            GlobalRowBuffer(width=4).load(np.zeros(5, dtype=np.uint8))


class TestDpu:
    def test_and_reduce(self):
        dpu = Dpu(width=8)
        assert dpu.and_reduce(np.ones(8, dtype=np.uint8)) == 1
        assert dpu.and_reduce(np.array([1, 1, 0, 1], dtype=np.uint8)) == 0

    def test_or_reduce(self):
        dpu = Dpu(width=8)
        assert dpu.or_reduce(np.zeros(4, dtype=np.uint8)) == 0
        assert dpu.or_reduce(np.array([0, 1], dtype=np.uint8)) == 1

    def test_popcount(self):
        assert Dpu(width=8).popcount(np.array([1, 0, 1, 1], dtype=np.uint8)) == 3

    def test_masked_and_reduce(self):
        dpu = Dpu(width=8)
        bits = np.array([1, 1, 0, 0], dtype=np.uint8)
        mask = np.array([1, 1, 0, 0], dtype=np.uint8)
        assert dpu.masked_and_reduce(bits, mask) == 1
        assert dpu.masked_and_reduce(bits, np.ones(4, dtype=np.uint8)) == 0

    def test_masked_empty_mask_is_vacuous_true(self):
        dpu = Dpu(width=4)
        assert dpu.masked_and_reduce(
            np.zeros(4, dtype=np.uint8), np.zeros(4, dtype=np.uint8)
        ) == 1

    def test_scalar_add_masks_to_width(self):
        assert Dpu().scalar_add(200, 100, bits=8) == 44

    def test_rejects_wide_input(self):
        with pytest.raises(ValueError):
            Dpu(width=4).and_reduce(np.zeros(8, dtype=np.uint8))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Dpu(width=4).popcount(np.zeros((2, 2), dtype=np.uint8))
