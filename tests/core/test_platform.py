"""The PimAssembler facade: allocation, PIM ops, bulk vectors, stats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PimAssembler


class TestAllocation:
    def test_bump_allocator_advances(self, small_pim):
        a = small_pim.allocate_row()
        b = small_pim.allocate_row()
        assert b.row == a.row + 1
        assert small_pim.rows_in_use((0, 0, 0)) == 2

    def test_allocation_exhaustion(self):
        pim = PimAssembler.small(subarrays=1, rows=16, cols=8)
        for _ in range(8):  # 16 rows - 8 compute rows
            pim.allocate_row()
        with pytest.raises(MemoryError):
            pim.allocate_row()

    def test_independent_subarrays(self, small_pim):
        small_pim.allocate_row((0, 0, 0))
        b = small_pim.allocate_row((0, 0, 1))
        assert b.row == 0


class TestStoreAndRead:
    def test_roundtrip_with_padding(self, small_pim, rng):
        data = rng.integers(0, 2, 20).astype(np.uint8)
        a = small_pim.store_row(data)
        assert (small_pim.read_row(a, bits=20) == data).all()
        assert (small_pim.read_row(a)[20:] == 0).all()

    def test_rejects_oversized(self, small_pim):
        with pytest.raises(ValueError):
            small_pim.store_row(np.zeros(33, dtype=np.uint8))

    def test_mem_insert_overwrites(self, small_pim, rng):
        a = small_pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        new = rng.integers(0, 2, 32).astype(np.uint8)
        small_pim.mem_insert(a, new)
        assert (small_pim.read_row(a) == new).all()


class TestPimXnorCompare:
    def test_xnor(self, small_pim, rng):
        a_bits = rng.integers(0, 2, 32).astype(np.uint8)
        b_bits = rng.integers(0, 2, 32).astype(np.uint8)
        a = small_pim.store_row(a_bits)
        b = small_pim.store_row(b_bits)
        out = small_pim.pim_xnor(a, b)
        assert (out == (1 - (a_bits ^ b_bits))).all()

    def test_compare_equal(self, small_pim, rng):
        bits = rng.integers(0, 2, 32).astype(np.uint8)
        a = small_pim.store_row(bits)
        b = small_pim.store_row(bits)
        assert small_pim.pim_compare(a, b)

    def test_compare_valid_bits(self, small_pim):
        a = small_pim.store_row(np.array([1] * 8 + [0] * 24, dtype=np.uint8))
        b = small_pim.store_row(np.array([1] * 8 + [1] * 24, dtype=np.uint8))
        assert small_pim.pim_compare(a, b, valid_bits=8)
        assert not small_pim.pim_compare(a, b)

    def test_compare_rejects_bad_valid_bits(self, small_pim, rng):
        a = small_pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        with pytest.raises(ValueError):
            small_pim.pim_compare(a, a, valid_bits=0)


class TestWordColumns:
    def test_store_read_roundtrip(self, small_pim, rng):
        values = rng.integers(0, 2**7, 10)
        words = small_pim.store_word_columns(values, bits=7)
        assert (small_pim.read_word_columns(words) == values).all()

    def test_rejects_value_overflow(self, small_pim):
        with pytest.raises(ValueError):
            small_pim.store_word_columns([256], bits=8)

    def test_rejects_too_many_words(self, small_pim):
        with pytest.raises(ValueError):
            small_pim.store_word_columns(list(range(33)), bits=8)

    def test_pim_add_carry_out(self, small_pim):
        wa = small_pim.store_word_columns([255], bits=8)
        wb = small_pim.store_word_columns([255], bits=8)
        ws = small_pim.pim_add(wa, wb)
        assert ws.bits == 9
        assert small_pim.read_word_columns(ws)[0] == 510


class TestBulkXnor:
    @given(n=st.integers(min_value=1, max_value=700))
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_lengths(self, n):
        pim = PimAssembler.small(subarrays=4, rows=128, cols=32)
        rng = np.random.default_rng(n)
        a = rng.integers(0, 2, n).astype(np.uint8)
        b = rng.integers(0, 2, n).astype(np.uint8)
        assert (pim.bulk_xnor(a, b) == (1 - (a ^ b))).all()

    def test_rejects_mismatched_lengths(self, small_pim):
        with pytest.raises(ValueError):
            small_pim.bulk_xnor(np.zeros(4, dtype=np.uint8),
                                np.zeros(5, dtype=np.uint8))

    def test_rejects_empty(self, small_pim):
        with pytest.raises(ValueError):
            small_pim.bulk_xnor(np.zeros(0, dtype=np.uint8),
                                np.zeros(0, dtype=np.uint8))


class TestStats:
    def test_phase_context(self, small_pim, rng):
        with small_pim.phase("hashmap"):
            small_pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        assert small_pim.stats.totals("hashmap").total_commands == 1

    def test_reset(self, small_pim, rng):
        small_pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        small_pim.reset_stats()
        assert small_pim.stats.totals().total_commands == 0

    def test_every_op_charges_time_and_energy(self, small_pim, rng):
        a = small_pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        b = small_pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        small_pim.pim_xnor(a, b)
        totals = small_pim.stats.totals()
        assert totals.time_ns > 0
        assert totals.energy_nj > 0


class TestLazyInstantiation:
    def test_default_device_is_cheap(self):
        """Constructing the full 1-GiB device must not allocate it."""
        pim = PimAssembler()
        assert pim.geometry.num_subarrays == 32768
        bank = pim.device.bank(0)
        assert bank.instantiated_mats == 0

    def test_touching_one_subarray_instantiates_one(self):
        pim = PimAssembler()
        pim.allocate_row((3, 17, 5))
        assert pim.device.bank(3).instantiated_mats == 0  # allocator only
        pim.store_row(np.zeros(256, dtype=np.uint8), (3, 17, 5))
        assert pim.device.bank(3).instantiated_mats == 1
        assert pim.device.bank(3).mat(17).instantiated_subarrays == 1
