"""Resilience subsystem: detect → retry → remap, and its accounting."""

import numpy as np
import pytest

from repro.core import PimAssembler
from repro.core.faults import FaultModel
from repro.core.isa import RowAddress, SAOp
from repro.core.resilience import (
    VERIFY_AAP_CYCLES,
    VERIFY_DPU_OPS,
    PolicyLevel,
    ResilienceEngine,
    ResilienceLedger,
    ResiliencePolicy,
    recommended_policy,
    spare_rows_needed,
)
from repro.core.stats import StatsLedger
from repro.errors import (
    AllocationError,
    FaultConfigError,
    ReproError,
    SubarrayQuarantinedError,
    UncorrectableFaultError,
)


def store(pim, bits, key=(0, 0, 0)):
    addr = pim.allocate_row(key)
    pim.controller.write_row(addr, bits)
    return addr


class TestPolicy:
    def test_named_levels(self):
        for name in ("off", "detect", "detect-retry", "detect-retry-remap"):
            policy = ResiliencePolicy.named(name)
            assert policy.level.value == name

    def test_named_accepts_level_and_policy(self):
        policy = ResiliencePolicy.named(PolicyLevel.DETECT)
        assert ResiliencePolicy.named(policy) is policy
        stronger = ResiliencePolicy.named(policy, max_retries=9)
        assert stronger.max_retries == 9 and stronger.level is PolicyLevel.DETECT

    def test_unknown_name_raises_typed_error(self):
        with pytest.raises(FaultConfigError):
            ResiliencePolicy.named("self-healing")
        with pytest.raises(ValueError):  # typed error is still a ValueError
            ResiliencePolicy.named("self-healing")

    def test_ladder_properties(self):
        off = ResiliencePolicy.named("off")
        assert not off.detect and not off.retry and not off.remap
        detect = ResiliencePolicy.named("detect")
        assert detect.detect and not detect.retry
        retry = ResiliencePolicy.named("detect-retry")
        assert retry.detect and retry.retry and not retry.remap
        remap = ResiliencePolicy.named("detect-retry-remap")
        assert remap.detect and remap.retry and remap.remap

    def test_validation(self):
        with pytest.raises(FaultConfigError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(FaultConfigError):
            ResiliencePolicy(restage_derate=0.0)
        with pytest.raises(FaultConfigError):
            ResiliencePolicy(quarantine_threshold=0)

    def test_recommended_policy_scales_with_variation(self):
        mild = recommended_policy(5.0)
        harsh = recommended_policy(20.0, residual_target=1e-9)
        assert harsh.level is PolicyLevel.DETECT_RETRY_REMAP
        assert harsh.max_retries >= mild.max_retries

    def test_spare_rows_budget(self):
        none_needed = spare_rows_needed(256, 128, residency_s=0.0)
        assert none_needed == 0
        some = spare_rows_needed(256, 4096, residency_s=3600.0)
        assert some >= 0

    def test_spare_rows_rejects_bad_geometry(self):
        with pytest.raises(FaultConfigError):
            spare_rows_needed(0, 128, residency_s=1.0)


class TestLedger:
    def test_phase_attribution_mirrors_stats(self):
        stats = StatsLedger()
        ledger = ResilienceLedger(stats)
        ledger.bump("detected")
        with stats.phase("hashmap"):
            ledger.bump("detected", 2)
            ledger.bump_float("verify_time_ns", 5.0)
        assert ledger.counts().detected == 3
        assert ledger.counts("hashmap").detected == 2
        assert ledger.counts("hashmap").verify_time_ns == 5.0
        assert ledger.phases() == ["hashmap"]

    def test_counts_subtraction(self):
        ledger = ResilienceLedger()
        ledger.bump("corrected", 5)
        before = ledger.counts()
        ledger.bump("corrected", 2)
        delta = ledger.counts() - before
        assert delta.corrected == 2


class TestEngineEscalation:
    def test_quarantine_threshold(self):
        engine = ResilienceEngine(
            ResiliencePolicy.named("detect-retry-remap", quarantine_threshold=2)
        )
        key = (0, 0, 1)
        engine.note_uncorrected(key, row=3)
        assert not engine.is_quarantined(key)
        assert engine.is_weak_row(key, 3)
        engine.note_uncorrected(key, row=4)
        assert engine.is_quarantined(key)
        assert engine.failures(key) == 2
        report = engine.report()
        assert report.quarantined_subarrays == (key,)
        assert (key, 3) in report.weak_rows

    def test_no_escalation_below_remap(self):
        engine = ResilienceEngine(ResiliencePolicy.named("detect-retry"))
        key = (0, 0, 0)
        for _ in range(10):
            engine.note_uncorrected(key, row=1)
        assert not engine.is_quarantined(key)
        assert not engine.weak_rows
        assert engine.counts().uncorrected == 10

    def test_report_clean_flag(self):
        engine = ResilienceEngine(ResiliencePolicy.named("detect"))
        engine.note_detected()
        engine.note_corrected()
        assert engine.report().clean
        engine.note_uncorrected((0, 0, 0))
        assert not engine.report().clean


class TestVerifiedExecution:
    def faulty_pim(self, **fault_kwargs):
        pim = PimAssembler.small(subarrays=4, rows=64, cols=32)
        pim.controller.faults = FaultModel(**fault_kwargs)
        return pim

    def test_clean_op_charges_verification(self):
        """Detection costs VRF cycles even when nothing ever faults."""
        pim = PimAssembler.small(subarrays=1, rows=64, cols=32)
        engine = pim.protect("detect")
        a = store(pim, np.ones(32, dtype=np.uint8))
        b = store(pim, np.zeros(32, dtype=np.uint8))
        des = pim.allocate_row()
        pim.controller.compute2(a, b, des, SAOp.XNOR2)
        assert pim.stats.command_count("VRF_AAP") == VERIFY_AAP_CYCLES
        assert pim.stats.command_count("VRF_DPU") == VERIFY_DPU_OPS
        counts = engine.counts()
        assert counts.verified_ops == 1
        assert counts.verify_time_ns > 0
        assert counts.detected == 0

    def test_off_engine_charges_nothing(self):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=32)
        pim.protect("off")
        a = store(pim, np.ones(32, dtype=np.uint8))
        b = store(pim, np.zeros(32, dtype=np.uint8))
        pim.controller.compute2(a, b, pim.allocate_row(), SAOp.XNOR2)
        assert pim.stats.command_count("VRF_AAP") == 0

    def test_retry_corrects_certain_fault(self):
        """rate=1 with derate<1: the first retry runs at rate<1 and can
        eventually pass; with many retries correction is near-certain."""
        pim = self.faulty_pim(compute2_rate=1.0, seed=5)
        engine = pim.protect(
            ResiliencePolicy.named(
                "detect-retry", max_retries=64, restage_derate=0.05
            )
        )
        a = store(pim, np.ones(32, dtype=np.uint8))
        b = store(pim, np.ones(32, dtype=np.uint8))
        des = pim.allocate_row()
        result = pim.controller.compute2(a, b, des, SAOp.XNOR2)
        assert (result == 1).all()  # XNOR of equal rows
        assert (pim.controller.read_row(des) == 1).all()
        counts = engine.counts()
        assert counts.detected >= 1
        assert counts.corrected == 1
        assert counts.retries >= 1
        assert counts.uncorrected == 0

    def test_detect_without_retry_keeps_corruption(self):
        pim = self.faulty_pim(compute2_rate=1.0, seed=5)
        engine = pim.protect("detect")
        a = store(pim, np.ones(32, dtype=np.uint8))
        b = store(pim, np.ones(32, dtype=np.uint8))
        des = pim.allocate_row()
        result = pim.controller.compute2(a, b, des, SAOp.XNOR2)
        assert (result == 0).all()  # rate=1 flips every bit, kept as-is
        assert engine.counts().detected == 1
        assert engine.counts().uncorrected == 1
        assert engine.counts().corrected == 0

    def test_uncorrectable_raises_when_asked(self):
        pim = self.faulty_pim(compute2_rate=1.0, seed=5)
        pim.protect(
            ResiliencePolicy.named(
                "detect-retry",
                max_retries=0,
                raise_on_uncorrected=True,
            )
        )
        a = store(pim, np.ones(32, dtype=np.uint8))
        b = store(pim, np.ones(32, dtype=np.uint8))
        with pytest.raises(UncorrectableFaultError) as excinfo:
            pim.controller.compute2(a, b, pim.allocate_row(), SAOp.XNOR2)
        assert excinfo.value.subarray_key == (0, 0, 0)
        assert excinfo.value.mechanism == "compute2"
        assert isinstance(excinfo.value, ReproError)

    def test_remap_marks_weak_row_and_quarantines(self):
        pim = self.faulty_pim(tra_rate=1.0, seed=5)
        engine = pim.protect(
            ResiliencePolicy.named(
                "detect-retry-remap",
                max_retries=0,
                quarantine_threshold=2,
            )
        )
        rows = [store(pim, np.ones(32, dtype=np.uint8)) for _ in range(3)]
        for _ in range(2):
            des = pim.allocate_row()
            pim.controller.tra_carry(rows[0], rows[1], rows[2], des)
            assert engine.is_weak_row((0, 0, 0), des.row)
        assert engine.is_quarantined((0, 0, 0))

    def test_scrub_row_detects_drift(self):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=32)
        pim.protect("detect")
        bits = np.ones(32, dtype=np.uint8)
        addr = store(pim, bits)
        assert pim.controller.scrub_row(addr, bits)
        flipped = bits.copy()
        flipped[0] = 0
        pim.device.subarray_at(addr).write_row(addr.row, flipped)
        assert not pim.controller.scrub_row(addr, bits)
        assert pim.stats.command_count("VRF_AAP") == 2 * VERIFY_AAP_CYCLES

    def test_sum_cycle_verified_too(self):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=32)
        pim.protect("detect")
        a = store(pim, np.ones(32, dtype=np.uint8))
        b = store(pim, np.zeros(32, dtype=np.uint8))
        pim.controller.clear_latch((0, 0, 0))
        pim.controller.sum_cycle(a, b, pim.allocate_row())
        assert pim.stats.command_count("VRF_AAP") == VERIFY_AAP_CYCLES


class TestDegradedAllocation:
    def test_quarantined_subarray_refuses_allocation(self):
        pim = PimAssembler.small(subarrays=4, rows=64, cols=32)
        engine = pim.protect("detect-retry-remap")
        engine.quarantine((0, 0, 1))
        with pytest.raises(SubarrayQuarantinedError):
            pim.allocate_row((0, 0, 1))
        pim.allocate_row((0, 0, 0))  # others still fine

    def test_usable_keys_exclude_quarantined(self):
        pim = PimAssembler.small(subarrays=4, rows=64, cols=32)
        engine = pim.protect("detect-retry-remap")
        assert len(pim.usable_subarray_keys()) == 4
        engine.quarantine((0, 0, 2))
        usable = pim.usable_subarray_keys()
        assert len(usable) == 3 and (0, 0, 2) not in usable

    def test_allocator_skips_weak_rows(self):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=32)
        engine = pim.protect("detect-retry-remap")
        first = pim.allocate_row()
        engine.note_uncorrected((0, 0, 0), row=first.row + 1)
        skipped = pim.allocate_row()
        assert skipped.row == first.row + 2

    def test_exhaustion_is_typed(self):
        pim = PimAssembler.small(subarrays=1, rows=16, cols=32)
        data_rows = pim.geometry.bank.mat.subarray.data_rows
        for _ in range(data_rows):
            pim.allocate_row()
        with pytest.raises(AllocationError):
            pim.allocate_row()
        with pytest.raises(MemoryError):  # typed error is still a MemoryError
            pim.allocate_row()
