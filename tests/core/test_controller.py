"""Controller: command execution, accounting, compound sequences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PimAssembler
from repro.core.isa import RowAddress, SAOp


def addr(pim, row, subarray=0):
    return RowAddress(bank=0, mat=0, subarray=subarray, row=row)


def store(pim, bits, subarray=(0, 0, 0)):
    return pim.store_row(np.asarray(bits, dtype=np.uint8), subarray)


class TestBasicCommands:
    def test_copy_moves_data_and_charges(self, small_pim, rng):
        pim = small_pim
        data = rng.integers(0, 2, 32).astype(np.uint8)
        src = store(pim, data)
        des = pim.allocate_row()
        before = pim.stats.command_count("AAP1")
        pim.controller.copy(src, des)
        assert (pim.controller.read_row(des) == data).all()
        assert pim.stats.command_count("AAP1") == before + 1

    def test_copy_rejects_cross_subarray(self, small_pim):
        pim = small_pim
        src = pim.allocate_row((0, 0, 0))
        des = pim.allocate_row((0, 0, 1))
        with pytest.raises(ValueError):
            pim.controller.copy(src, des)

    def test_compute2_all_ops(self, small_pim, rng):
        pim = small_pim
        a = rng.integers(0, 2, 32).astype(np.uint8)
        b = rng.integers(0, 2, 32).astype(np.uint8)
        ra, rb = store(pim, a), store(pim, b)
        des = pim.allocate_row()
        expectations = {
            SAOp.XNOR2: 1 - (a ^ b),
            SAOp.XOR2: a ^ b,
            SAOp.AND2: a & b,
            SAOp.OR2: a | b,
            SAOp.NOR2: 1 - (a | b),
            SAOp.NAND2: 1 - (a & b),
        }
        for op, expected in expectations.items():
            out = pim.controller.compute2(ra, rb, des, op)
            assert (out == expected).all(), op

    def test_tra_carry(self, small_pim, rng):
        pim = small_pim
        rows = [rng.integers(0, 2, 32).astype(np.uint8) for _ in range(3)]
        addrs = [store(pim, r) for r in rows]
        des = pim.allocate_row()
        out = pim.controller.tra_carry(*addrs, des)
        expected = (np.sum(rows, axis=0) >= 2).astype(np.uint8)
        assert (out == expected).all()

    def test_validate_address_bounds(self, small_pim):
        pim = small_pim
        bad = RowAddress(bank=0, mat=0, subarray=0, row=9999)
        with pytest.raises(IndexError):
            pim.controller.read_row(bad)

    def test_write_read_row_roundtrip(self, small_pim, rng):
        pim = small_pim
        data = rng.integers(0, 2, 32).astype(np.uint8)
        a = pim.allocate_row()
        pim.controller.write_row(a, data)
        assert (pim.controller.read_row(a) == data).all()
        assert pim.stats.command_count("MEM_WR") == 1
        assert pim.stats.command_count("MEM_RD") == 1


class TestDpuPath:
    def test_dpu_match(self, small_pim, rng):
        pim = small_pim
        data = rng.integers(0, 2, 32).astype(np.uint8)
        a, b = store(pim, data), store(pim, data)
        des = pim.allocate_row()
        pim.controller.xnor_rows(a, b, des)
        assert pim.controller.dpu_match(des)

    def test_dpu_match_with_mask(self, small_pim):
        pim = small_pim
        a = store(pim, [1] * 16 + [0] * 16)
        b = store(pim, [1] * 16 + [1] * 16)
        des = pim.allocate_row()
        pim.controller.xnor_rows(a, b, des)
        mask = np.zeros(32, dtype=np.uint8)
        mask[:16] = 1
        assert pim.controller.dpu_match(des, mask)  # first 16 agree
        assert not pim.controller.dpu_match(des)  # full row differs

    def test_dpu_popcount(self, small_pim):
        pim = small_pim
        a = store(pim, [1, 0, 1, 1] + [0] * 28)
        assert pim.controller.dpu_popcount(a) == 3

    def test_dpu_scalar_add_wraps(self, small_pim):
        result = small_pim.controller.dpu_scalar_add((0, 0, 0), 255, 1, bits=8)
        assert result == 0


class TestCompareScan:
    def test_finds_first_match(self, small_pim, rng):
        pim = small_pim
        rows = [rng.integers(0, 2, 32).astype(np.uint8) for _ in range(5)]
        for r in rows:
            store(pim, r)
        temp = store(pim, rows[3])
        hit = pim.controller.compare_scan(temp, start_row=0, n_rows=5)
        assert hit == 3

    def test_no_match_returns_none(self, small_pim, rng):
        pim = small_pim
        for _ in range(4):
            store(pim, rng.integers(0, 2, 32).astype(np.uint8))
        temp = store(pim, np.ones(32, dtype=np.uint8))
        # all-ones row is unlikely; force distinctness
        assert pim.controller.compare_scan(temp, 0, 4) is None

    def test_charges_per_scanned_row(self, small_pim, rng):
        pim = small_pim
        rows = [rng.integers(0, 2, 32).astype(np.uint8) for _ in range(4)]
        for r in rows:
            store(pim, r)
        temp = store(pim, rows[1])
        before = pim.stats.command_count("AAP2")
        pim.controller.compare_scan(temp, 0, 4)
        # scan stops at row 1 -> scanned 2 rows -> 2 compute AAPs
        assert pim.stats.command_count("AAP2") == before + 2

    def test_valid_bits_masks_comparison(self, small_pim):
        pim = small_pim
        stored = store(pim, [1] * 8 + [0] * 24)
        temp = store(pim, [1] * 8 + [1] * 24)
        assert pim.controller.compare_scan(temp, stored.row, 1, valid_bits=8) == 0
        assert pim.controller.compare_scan(temp, stored.row, 1) is None

    def test_empty_scan(self, small_pim, rng):
        pim = small_pim
        temp = store(pim, rng.integers(0, 2, 32).astype(np.uint8))
        assert pim.controller.compare_scan(temp, 0, 0) is None


class TestRippleAdd:
    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=16),
        st.lists(st.integers(0, 255), min_size=1, max_size=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_integer_addition(self, xs, ys):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=16)
        n = min(len(xs), len(ys), 16)
        va = np.array(xs[:n])
        vb = np.array(ys[:n])
        wa = pim.store_word_columns(va, bits=8)
        wb = pim.store_word_columns(vb, bits=8)
        ws = pim.pim_add(wa, wb)
        assert (pim.read_word_columns(ws)[:n] == va + vb).all()

    def test_cycle_count_is_2m(self, small_pim):
        """An m-plane ripple add issues exactly m SUM + m AAP3."""
        pim = small_pim
        wa = pim.store_word_columns([5, 9], bits=4)
        wb = pim.store_word_columns([3, 7], bits=4)
        pim.pim_add(wa, wb)
        assert pim.stats.command_count("SUM") == 4
        assert pim.stats.command_count("AAP3") == 4

    def test_mixed_widths_zero_extend(self, small_pim):
        pim = small_pim
        wa = pim.store_word_columns([15], bits=4)
        wb = pim.store_word_columns([1], bits=1)
        ws = pim.pim_add(wa, wb)
        assert pim.read_word_columns(ws)[0] == 16


class TestGangExecution:
    def test_gang_compute2_charges_one_slot(self, small_pim, rng):
        pim = small_pim
        ops = []
        expected = []
        for s in range(3):
            a = rng.integers(0, 2, 32).astype(np.uint8)
            b = rng.integers(0, 2, 32).astype(np.uint8)
            ra = store(pim, a, (0, 0, s))
            rb = store(pim, b, (0, 0, s))
            des = pim.allocate_row((0, 0, s))
            ops.append((ra, rb, des))
            expected.append(1 - (a ^ b))
        t_before = pim.stats.totals().time_ns
        results = pim.controller.gang_compute2(ops, SAOp.XNOR2)
        elapsed = pim.stats.totals().time_ns - t_before
        assert elapsed == pytest.approx(pim.controller.timing.t_aap)
        for got, exp in zip(results, expected):
            assert (got == exp).all()

    def test_gang_rejects_same_subarray(self, small_pim, rng):
        pim = small_pim
        a = store(pim, rng.integers(0, 2, 32).astype(np.uint8))
        b = store(pim, rng.integers(0, 2, 32).astype(np.uint8))
        d1, d2 = pim.allocate_row(), pim.allocate_row()
        with pytest.raises(ValueError):
            pim.controller.gang_compute2([(a, b, d1), (a, b, d2)])

    def test_gang_rejects_empty(self, small_pim):
        with pytest.raises(ValueError):
            small_pim.controller.gang_compute2([])

    def test_gang_copy_rejects_empty(self, small_pim):
        with pytest.raises(ValueError):
            small_pim.controller.gang_copy([])

    def test_gang_copy_rejects_same_subarray(self, small_pim, rng):
        pim = small_pim
        src = store(pim, rng.integers(0, 2, 32).astype(np.uint8))
        d1, d2 = pim.allocate_row(), pim.allocate_row()
        with pytest.raises(ValueError):
            pim.controller.gang_copy([(src, d1), (src, d2)])

    def test_gang_compute2_routes_through_fault_injection(self, rng):
        """Ganged compute2 must corrupt exactly like the single op."""
        from repro.core.faults import FaultModel

        pim = PimAssembler.small(subarrays=4, rows=64, cols=32)
        pim.controller.faults = FaultModel(compute2_rate=1.0, seed=17)
        ops = []
        clean = []
        for s in range(3):
            a = rng.integers(0, 2, 32).astype(np.uint8)
            b = rng.integers(0, 2, 32).astype(np.uint8)
            ra = store(pim, a, (0, 0, s))
            rb = store(pim, b, (0, 0, s))
            ops.append((ra, rb, pim.allocate_row((0, 0, s))))
            clean.append(1 - (a ^ b))
        results = pim.controller.gang_compute2(ops, SAOp.XNOR2)
        for got, exp in zip(results, clean):
            # rate=1 flips every bit of every member's output
            assert (got == 1 - exp).all()
        # the corrupted result must also be what memory holds
        for (_, _, des), exp in zip(ops, clean):
            stored = pim.device.subarray_at(des).read_row(des.row)
            assert (stored == 1 - exp).all()
        assert pim.controller.faults.injected_faults == 3 * 32

    def test_gang_copy_routes_through_fault_injection(self, rng):
        from repro.core.faults import FaultModel

        pim = PimAssembler.small(subarrays=4, rows=64, cols=32)
        pim.controller.faults = FaultModel(copy_rate=1.0, seed=17)
        data = rng.integers(0, 2, 32).astype(np.uint8)
        pairs = []
        for s in range(2):
            src = store(pim, data, (0, 0, s))
            pairs.append((src, pim.allocate_row((0, 0, s))))
        pim.controller.gang_copy(pairs)
        for _, des in pairs:
            stored = pim.device.subarray_at(des).read_row(des.row)
            assert (stored == 1 - data).all()

    def test_gang_copy_clean_without_copy_rate(self, rng):
        """Default fault models leave RowClone transfers untouched."""
        from repro.core.faults import FaultModel

        pim = PimAssembler.small(subarrays=4, rows=64, cols=32)
        pim.controller.faults = FaultModel(compute2_rate=0.5, seed=17)
        data = rng.integers(0, 2, 32).astype(np.uint8)
        src = store(pim, data, (0, 0, 0))
        des = pim.allocate_row((0, 0, 0))
        pim.controller.gang_copy([(src, des)])
        assert (pim.device.subarray_at(des).read_row(des.row) == data).all()

    def test_gang_copy(self, small_pim, rng):
        pim = small_pim
        pairs = []
        datas = []
        for s in range(2):
            data = rng.integers(0, 2, 32).astype(np.uint8)
            src = store(pim, data, (0, 0, s))
            des = pim.allocate_row((0, 0, s))
            pairs.append((src, des))
            datas.append((des, data))
        pim.controller.gang_copy(pairs)
        for des, data in datas:
            assert (pim.controller.read_row(des) == data).all()


class TestCompress3to2:
    def test_matches_full_adder(self, small_pim, rng):
        pim = small_pim
        rows = [rng.integers(0, 2, 32).astype(np.uint8) for _ in range(3)]
        addrs = [store(pim, r) for r in rows]
        s_des, c_des = pim.allocate_row(), pim.allocate_row()
        pim.controller.compress_3to2(*addrs, s_des, c_des)
        total = np.sum(rows, axis=0)
        assert (pim.controller.read_row(s_des) == total % 2).all()
        assert (pim.controller.read_row(c_des) == (total >= 2)).all()
