"""Cycle/energy ledger: recording, phases, merging."""

import pytest

from repro.core.stats import StatsLedger
from repro.errors import PhaseActiveError, ReproError


class TestRecording:
    def test_record_accumulates(self):
        ledger = StatsLedger()
        ledger.record("AAP1", time_ns=85.0, energy_nj=0.06)
        ledger.record("AAP1", time_ns=85.0, energy_nj=0.06)
        totals = ledger.totals()
        assert totals.time_ns == pytest.approx(170.0)
        assert totals.energy_nj == pytest.approx(0.12)
        assert totals.commands["AAP1"] == 2

    def test_count_parameter(self):
        ledger = StatsLedger()
        ledger.record("AAP2", time_ns=85.0, energy_nj=0.5, count=10)
        assert ledger.command_count("AAP2") == 10
        assert ledger.totals().time_ns == pytest.approx(85.0)

    def test_rejects_bad_values(self):
        ledger = StatsLedger()
        with pytest.raises(ValueError):
            ledger.record("X", time_ns=-1.0, energy_nj=0.0)
        with pytest.raises(ValueError):
            ledger.record("X", time_ns=0.0, energy_nj=0.0, count=0)

    def test_unit_conversions(self):
        ledger = StatsLedger()
        ledger.record("X", time_ns=2e9, energy_nj=3e9)
        assert ledger.totals().time_s == pytest.approx(2.0)
        assert ledger.totals().energy_j == pytest.approx(3.0)

    def test_average_power(self):
        ledger = StatsLedger()
        ledger.record("X", time_ns=100.0, energy_nj=50.0)
        # 50 nJ / 100 ns = 0.5 W
        assert ledger.totals().average_power_w() == pytest.approx(0.5)
        assert ledger.totals().average_power_w(2.0) == pytest.approx(2.5)


class TestPhases:
    def test_phase_attribution(self):
        ledger = StatsLedger()
        with ledger.phase("hashmap"):
            ledger.record("AAP1", 85.0, 0.06)
        ledger.record("AAP1", 85.0, 0.06)
        assert ledger.totals("hashmap").time_ns == pytest.approx(85.0)
        assert ledger.totals().time_ns == pytest.approx(170.0)

    def test_nested_phases(self):
        ledger = StatsLedger()
        with ledger.phase("outer"):
            with ledger.phase("inner"):
                ledger.record("X", 10.0, 1.0)
        assert ledger.totals("outer").time_ns == 10.0
        assert ledger.totals("inner").time_ns == 10.0

    def test_phase_list(self):
        ledger = StatsLedger()
        with ledger.phase("b"):
            ledger.record("X", 1.0, 0.0)
        with ledger.phase("a"):
            ledger.record("X", 1.0, 0.0)
        assert ledger.phases() == ["a", "b"]

    def test_current_phase_restored_after_exception(self):
        ledger = StatsLedger()
        with pytest.raises(RuntimeError):
            with ledger.phase("x"):
                raise RuntimeError("boom")
        assert ledger.current_phase is None

    def test_rejects_reserved_name(self):
        ledger = StatsLedger()
        with pytest.raises(ValueError):
            with ledger.phase("total"):
                pass


class TestMergeReset:
    def test_merge(self):
        a, b = StatsLedger(), StatsLedger()
        with a.phase("p"):
            a.record("X", 1.0, 2.0)
        with b.phase("p"):
            b.record("X", 3.0, 4.0)
        a.merge(b)
        assert a.totals("p").time_ns == pytest.approx(4.0)
        assert a.totals().energy_nj == pytest.approx(6.0)

    def test_merge_refuses_open_phase_on_target(self):
        a, b = StatsLedger(), StatsLedger()
        with a.phase("p"):
            with pytest.raises(PhaseActiveError) as excinfo:
                a.merge(b)
        assert "'p'" in str(excinfo.value)

    def test_merge_refuses_open_phase_on_source(self):
        a, b = StatsLedger(), StatsLedger()
        with b.phase("q"):
            with pytest.raises(PhaseActiveError):
                a.merge(b)

    def test_phase_active_error_is_typed_and_runtime(self):
        # catchable both as the library family and as the historical builtin
        assert issubclass(PhaseActiveError, ReproError)
        assert issubclass(PhaseActiveError, RuntimeError)
        ledger = StatsLedger()
        with ledger.phase("p"):
            with pytest.raises(RuntimeError):
                ledger.state_dict()

    def test_merge_after_phases_close_succeeds(self):
        a, b = StatsLedger(), StatsLedger()
        with a.phase("p"):
            a.record("X", 1.0, 1.0)
        with b.phase("p"):
            b.record("X", 1.0, 1.0)
        a.merge(b)
        assert a.totals("p").total_commands == 2

    def test_reset(self):
        ledger = StatsLedger()
        ledger.record("X", 1.0, 1.0)
        ledger.reset()
        assert ledger.totals().total_commands == 0

    def test_summary_mentions_phases(self):
        ledger = StatsLedger()
        with ledger.phase("hashmap"):
            ledger.record("AAP1", 85.0, 0.06)
        text = ledger.summary()
        assert "hashmap" in text and "total" in text


class TestSummaryFormatting:
    def test_summary_lines_carry_units_and_values(self):
        ledger = StatsLedger()
        with ledger.phase("hashmap"):
            ledger.record("AAP1", time_ns=85_000.0, energy_nj=0.5, count=2)
        lines = ledger.summary().splitlines()
        # total first, then phases alphabetically
        assert lines[0].split(":")[0].strip() == "total"
        assert lines[1].split(":")[0].strip() == "hashmap"
        for line in lines:
            assert "us" in line and "nJ" in line and "cmds" in line
        # 85_000 ns renders as 85.000 us with 2 commands
        assert "85.000 us" in lines[1]
        assert "2 cmds" in lines[1]

    def test_summary_empty_ledger_still_reports_total(self):
        lines = StatsLedger().summary().splitlines()
        assert len(lines) == 1
        assert "total" in lines[0]
        assert "0.000 us" in lines[0]


class TestElapsed:
    def test_elapsed_matches_totals(self):
        ledger = StatsLedger()
        with ledger.phase("hashmap"):
            ledger.record("X", 10.0, 1.0)
        ledger.record("Y", 5.0, 1.0)
        assert ledger.elapsed_ns() == ledger.totals().time_ns == 15.0
        assert ledger.elapsed_ns("hashmap") == 10.0
        assert ledger.elapsed_ns("missing") == 0.0


class TestRecorderHook:
    def test_events_forward_with_current_phase(self):
        seen = []

        class Sink:
            def on_command(self, command, count, time_ns, energy_nj, phase):
                seen.append((command, count, time_ns, energy_nj, phase))

        ledger = StatsLedger()
        ledger.attach_recorder(Sink())
        with ledger.phase("traverse"):
            ledger.record("SUM", time_ns=7.0, energy_nj=0.2, count=3)
        ledger.record("MEM_RD", time_ns=1.0, energy_nj=0.1)
        assert seen == [
            ("SUM", 3, 7.0, 0.2, "traverse"),
            ("MEM_RD", 1, 1.0, 0.1, None),
        ]
