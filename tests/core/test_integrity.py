"""Data-at-rest integrity: SECDED codec, rot injector, scrub engine.

The acceptance property at the bottom is the headline claim of the
subsystem: at a rot rate where the ECC-off ablation provably corrupts
the assembled contigs, running with SECDED + scrub produces contigs,
stored rows and resilience state bit-identical to a zero-fault run —
on both execution engines — with every repair charged through the
ledger.
"""

import itertools

import numpy as np
import pytest

from repro.core.energy import EnergyParameters
from repro.core.integrity import (
    IntegrityConfig,
    IntegrityCounts,
    IntegrityEngine,
    _correct_word,
    _encode_word,
    decode_secded,
    encode_secded,
    scrub_planes,
)
from repro.core.resilience import ResilienceEngine
from repro.core.stats import StatsLedger
from repro.core.storage import BitPlaneStore
from repro.core.timing import TimingParameters
from repro.errors import FaultConfigError, UncorrectableFaultError


def _random_words(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**64, size=n, dtype=np.uint64)


class TestCodec:
    """SECDED(72,64): the vectorised codec against exhaustive flips."""

    def test_vector_encoder_matches_scalar_reference(self):
        words = _random_words(512, seed=1)
        vec = encode_secded(words)
        ref = np.array([_encode_word(int(w)) for w in words], dtype=np.uint8)
        assert np.array_equal(vec, ref)

    def test_clean_planes_scrub_clean(self):
        words = _random_words(256, seed=2).reshape(4, 8, 8)
        code = encode_secded(words)
        before = words.copy()
        corrected, uncorrectable = scrub_planes(words, code)
        assert not corrected.any()
        assert not uncorrectable.any()
        assert np.array_equal(words, before)

    def test_every_single_data_bit_is_corrected(self):
        base = _random_words(1, seed=3)[0]
        words = np.full(64, base, dtype=np.uint64)
        words ^= np.uint64(1) << np.arange(64, dtype=np.uint64)
        code = encode_secded(np.full(64, base, dtype=np.uint64))
        corrected, uncorrectable = scrub_planes(words, code)
        assert corrected.all()
        assert not uncorrectable.any()
        assert (words == base).all()

    def test_every_single_code_bit_is_corrected(self):
        base = _random_words(1, seed=4)[0]
        words = np.full(8, base, dtype=np.uint64)
        clean = encode_secded(words)
        code = clean ^ (np.uint8(1) << np.arange(8, dtype=np.uint8))
        corrected, uncorrectable = scrub_planes(words, code)
        assert corrected.all()
        assert not uncorrectable.any()
        assert (words == base).all()
        assert np.array_equal(code, clean)  # byte re-encoded back

    def test_all_double_bit_flips_are_detected(self):
        """Every C(72,2) pair of stored-bit flips is uncorrectable —
        and never miscorrected into a third, wrong word."""
        base = _random_words(1, seed=5)[0]
        pairs = list(itertools.combinations(range(72), 2))  # 2556
        words = np.full(len(pairs), base, dtype=np.uint64)
        code = encode_secded(words)
        clean_code = code.copy()
        for i, (a, b) in enumerate(pairs):
            for pos in (a, b):
                if pos < 64:
                    words[i] ^= np.uint64(1) << np.uint64(pos)
                else:
                    code[i] ^= np.uint8(1) << np.uint8(pos - 64)
        flipped = words.copy()
        corrected, uncorrectable = scrub_planes(words, code)
        assert uncorrectable.all()
        assert not corrected.any()
        # the data stays as found (no miscorrection) and the code byte
        # is re-encoded so the loss books exactly once
        assert np.array_equal(words, flipped)
        again_c, again_u = scrub_planes(words, code)
        assert not again_c.any()
        assert not again_u.any()
        # double-data flips cancel only if both hit the same bit, which
        # combinations() excludes — so no pair silently restored base
        double_data = [i for i, (a, b) in enumerate(pairs) if b < 64]
        assert all(flipped[i] != base for i in double_data)
        del clean_code

    def test_scalar_reference_decoder_kinds(self):
        base = int(_random_words(1, seed=6)[0])
        code = _encode_word(base)
        assert _correct_word(base, code) == (base, code, "clean")
        for bit in range(64):
            w, c, kind = _correct_word(base ^ (1 << bit), code)
            assert (w, c, kind) == (base, code, "data")
        for bit in range(8):
            w, c, kind = _correct_word(base, code ^ (1 << bit))
            assert (w, kind) == (base, "code")
        _, _, kind = _correct_word(base ^ 0b11, code)
        assert kind == "double"

    def test_strict_decode_round_trips_and_raises(self):
        words = _random_words(32, seed=7)
        code = encode_secded(words)
        assert np.array_equal(decode_secded(words, code), words)
        # single-bit: corrected copy, input untouched
        dirty = words.copy()
        dirty[3] ^= np.uint64(1) << np.uint64(17)
        assert np.array_equal(decode_secded(dirty, code), words)
        assert dirty[3] != words[3]
        # double-bit: typed raise
        dirty[3] ^= np.uint64(1) << np.uint64(40)
        with pytest.raises(UncorrectableFaultError):
            decode_secded(dirty, code, subarray_key=(0, 0, 3))


class TestConfig:
    def test_validation(self):
        with pytest.raises(FaultConfigError):
            IntegrityConfig(ecc="parity")
        with pytest.raises(FaultConfigError):
            IntegrityConfig(retention_interval_s=0.0)
        with pytest.raises(FaultConfigError):
            IntegrityConfig(upset_probability=1.5)
        with pytest.raises(FaultConfigError):
            IntegrityConfig(weak_row_threshold=0)

    def test_state_round_trip(self):
        config = IntegrityConfig(
            ecc="off",
            retention_interval_s=2e-3,
            seed=77,
            upset_probability=1e-6,
            weak_row_threshold=3,
        )
        back = IntegrityConfig.from_state(config.state_dict())
        assert back == config
        assert back.per_window_probability == 1e-6

    def test_model_supplies_probability_when_no_override(self):
        config = IntegrityConfig(retention_interval_s=0.064)
        assert config.per_window_probability == (
            config.model.upset_probability_per_window(0.064)
        )


def _bench(
    rows: int = 16,
    cols: int = 64,
    slots: int = 2,
    ecc: str = "secded",
    probability: float = 0.0,
    interval: float = 1e-5,
    seed: int = 11,
    threshold: int = 8,
    resilience: "ResilienceEngine | None" = None,
):
    """A store + engine harness wired straight at the module APIs."""
    store = BitPlaneStore(rows, cols)
    for _ in range(slots):
        store.new_slot("test")
    stats = StatsLedger()
    engine = IntegrityEngine(
        IntegrityConfig(
            ecc=ecc,
            retention_interval_s=interval,
            seed=seed,
            upset_probability=probability,
            weak_row_threshold=threshold,
        ),
        store,
        stats,
        TimingParameters(),
        EnergyParameters(),
        resilience=(lambda: resilience) if resilience is not None else None,
    )
    return store, stats, engine


def _advance(stats: StatsLedger, windows: float, interval: float) -> None:
    stats.record("HOST_WAIT", windows * interval * 1e9, 0.0)


class TestInjector:
    def test_windows_follow_simulated_time(self):
        # ecc off so sync itself only charges REF (a scrub pass costs
        # simulated time too and would tick the clock it is serving)
        _, stats, engine = _bench(ecc="off", probability=0.0)
        assert engine.sync().windows == 0
        _advance(stats, 3, 1e-5)
        assert engine.sync().windows == 3
        _advance(stats, 0.5, 1e-5)  # not a full window yet
        assert engine.sync().windows == 3
        assert stats.command_count("REF") > 0

    def test_rot_is_a_pure_function_of_seed_and_window(self):
        tensors = []
        for _ in range(2):
            store, stats, engine = _bench(
                ecc="off", probability=5e-3, seed=99
            )
            _advance(stats, 4, 1e-5)
            counts = engine.sync()
            assert counts.flips_injected > 0
            tensors.append(store.tensor[: store.n_slots].copy())
        assert np.array_equal(tensors[0], tensors[1])
        # a different seed rots different cells
        store, stats, engine = _bench(ecc="off", probability=5e-3, seed=100)
        _advance(stats, 4, 1e-5)
        engine.sync()
        assert not np.array_equal(
            store.tensor[: store.n_slots], tensors[0]
        )

    def test_tail_bits_never_rot(self):
        # 70 columns -> 2 words/row with a 6-bit tail that does not
        # physically exist; rot must respect the packed-store invariant
        store, stats, engine = _bench(
            cols=70, ecc="off", probability=0.05, seed=5
        )
        _advance(stats, 10, 1e-5)
        counts = engine.sync()
        assert counts.flips_injected > 0
        dead = store.tensor[: store.n_slots] & ~store.col_mask_words
        assert not dead.any()

    def test_ecc_off_injects_but_never_repairs(self):
        store, stats, engine = _bench(ecc="off", probability=5e-3)
        _advance(stats, 4, 1e-5)
        counts = engine.sync()
        assert counts.flips_injected > 0
        assert counts.words_corrected == 0
        assert counts.rows_scrubbed == 0
        assert stats.command_count("ECC_CHK") == 0
        assert not store.ecc_enabled


class TestScrubEngine:
    def test_scrub_heals_and_charges_the_ledger(self):
        store, stats, engine = _bench(probability=0.0)
        bits = np.zeros(64, dtype=np.uint8)
        bits[5] = 1
        store.write_row(0, 2, bits)
        clean = store.tensor[0, 2].copy()
        store.tensor[0, 2, 0] ^= np.uint64(1) << np.uint64(33)  # rot
        _advance(stats, 1, 1e-5)
        counts = engine.sync()
        assert counts.words_corrected == 1
        assert counts.words_uncorrectable == 0
        assert np.array_equal(store.tensor[0, 2], clean)
        for mnemonic in ("REF", "ECC_CHK", "ECC_ENC", "ECC_FIX"):
            assert stats.command_count(mnemonic) > 0, mnemonic

    def test_scrub_is_gang_parallel_across_slots(self):
        # latency of a pass covers one sub-array's row depth, however
        # many slots scrub in parallel behind their own sense amps
        costs = {}
        for slots in (1, 4):
            _, stats, engine = _bench(slots=slots, probability=0.0)
            engine.sync()  # drain the enable-time ECC_ENC backlog first
            _advance(stats, 1, 1e-5)
            base = stats.elapsed_ns()
            engine.sync()
            chk = stats.command_count("ECC_CHK")
            assert chk == slots * 16  # energy/count charged per row
            costs[slots] = stats.elapsed_ns() - base
        # REF charge is identical, so equal deltas mean equal scrub time
        assert costs[1] == costs[4]

    def test_repeatedly_upset_row_is_retired_as_weak(self):
        resilience = ResilienceEngine("detect-retry-remap")
        store, stats, engine = _bench(
            probability=0.0, threshold=1, resilience=resilience
        )
        store.write_row(1, 7, np.ones(64, dtype=np.uint8))
        store.tensor[1, 7, 0] ^= np.uint64(1) << np.uint64(12)
        _advance(stats, 1, 1e-5)
        counts = engine.sync()
        assert counts.words_corrected == 1
        assert resilience.is_weak_row((0, 0, 1), 7)
        # a corrected upset books NO uncorrected resilience event
        assert resilience.report().totals.uncorrected == 0

    def test_uncorrectable_word_escalates_to_resilience(self):
        resilience = ResilienceEngine("detect-retry-remap")
        store, stats, engine = _bench(
            probability=0.0, resilience=resilience
        )
        store.write_row(0, 3, np.ones(64, dtype=np.uint8))
        store.tensor[0, 3, 0] ^= np.uint64(0b101)  # double-bit
        _advance(stats, 1, 1e-5)
        counts = engine.sync()
        assert counts.words_uncorrectable == 1
        assert counts.words_corrected == 0
        assert resilience.report().totals.uncorrected == 1

    def test_state_round_trip_resumes_window_progress(self):
        store, stats, engine = _bench(probability=1e-3)
        _advance(stats, 3, 1e-5)
        engine.sync()
        state = engine.state_dict()
        store2, stats2, engine2 = _bench(probability=1e-3)
        engine2.load_state(state)
        _advance(stats2, 3, 1e-5)
        # same simulated time, windows already burned: no double rot
        assert engine2.sync().windows == engine.counts().windows
        del store, store2

    def test_counts_round_trip(self):
        counts = IntegrityCounts(windows=2, flips_injected=5)
        assert IntegrityCounts.from_dict(counts.as_dict()) == counts


# ----- the acceptance property ----------------------------------------------


@pytest.fixture(scope="module")
def property_reads():
    from repro.genome import ReadSimulator, synthetic_chromosome

    reference = synthetic_chromosome(300, seed=21)
    simulator = ReadSimulator(read_length=50, seed=22)
    return list(
        simulator.sample(reference, simulator.reads_for_coverage(300, 12))
    )


def _assemble(reads, engine: str, ecc: str, probability: float, seed: int):
    from repro.assembly.pipeline import _sized_device, assemble_with_pim

    pim = _sized_device(reads, 13)
    pim.attach_integrity(
        IntegrityConfig(
            ecc=ecc,
            retention_interval_s=1e-4,
            seed=seed,
            upset_probability=probability,
        )
    )
    result = assemble_with_pim(
        reads, k=13, pim=pim, min_count=2, engine=engine
    )
    store = pim.device.store
    return pim, result, store.tensor[: store.n_slots].copy()


@pytest.mark.parametrize(
    "engine,probability,seed",
    [("scalar", 5e-6, 2), ("bulk", 5e-5, 20)],
)
def test_secded_scrub_holds_assembly_bit_identical(
    property_reads, engine, probability, seed
):
    """At a rot rate that provably corrupts an unprotected run, the
    SECDED + scrub arm reproduces the zero-fault baseline exactly."""
    base_pim, base, base_rows = _assemble(
        property_reads, engine, "secded", 0.0, 99
    )
    off_pim, off, _ = _assemble(
        property_reads, engine, "off", probability, seed
    )
    on_pim, on, on_rows = _assemble(
        property_reads, engine, "secded", probability, seed
    )

    base_contigs = [str(c.sequence) for c in base.contigs]

    # the ablation arm proves the rot rate is destructive
    assert off.integrity.flips_injected > 0
    assert [str(c.sequence) for c in off.contigs] != base_contigs

    # the protected arm absorbed comparable rot...
    assert on.integrity.flips_injected > 0
    assert on.integrity.words_corrected > 0
    assert on.integrity.words_uncorrectable == 0
    # ...and the output is bit-identical to the zero-fault baseline:
    # contigs, the packed rows left in the arrays, and resilience state
    assert [str(c.sequence) for c in on.contigs] == base_contigs
    assert np.array_equal(on_rows, base_rows)
    assert (on_pim.resilience is None) == (base_pim.resilience is None)

    # no free repairs: refresh, check, encode and fix-writeback work
    # all flowed through the ledger
    for mnemonic in ("REF", "ECC_CHK", "ECC_ENC", "ECC_FIX"):
        assert on_pim.stats.command_count(mnemonic) > 0, mnemonic
    # the ablation never paid for checks it did not run
    assert off_pim.stats.command_count("ECC_CHK") == 0
