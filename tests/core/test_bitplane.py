"""Bulk bit-plane engine: kernels, batched scheduler, scan/add paths."""

import numpy as np
import pytest

from repro.core import PimAssembler
from repro.core.bitplane import (
    BulkEngine,
    compare_many,
    hamming_many,
    match_first,
    planes_to_words,
    popcount_rows,
    words_to_planes,
    xnor_block,
)
from repro.core.faults import FaultModel
from repro.core.isa import RowAddress
from repro.core.scheduler import BatchedAapScheduler
from repro.core.stats import StatsLedger
from repro.core.timing import DEFAULT_TIMING, command_latency_table


def random_block(rng, n, w):
    return rng.integers(0, 2, (n, w)).astype(np.uint8)


class TestKernels:
    def test_xnor_block_matches_rowwise(self, rng):
        block = random_block(rng, 6, 16)
        q = block[2].copy()
        out = xnor_block(q, block)
        for i in range(6):
            assert np.array_equal(out[i], 1 - (block[i] ^ q))
        assert out[2].all()

    def test_match_first_finds_first_duplicate(self, rng):
        block = random_block(rng, 8, 12)
        block[5] = block[1]
        assert match_first(block[1], block) == 1
        missing = 1 - block[0]
        assert match_first(missing, block[:1]) is None

    def test_match_first_respects_width(self):
        block = np.array([[1, 0, 1, 1]], dtype=np.uint8)
        q = np.array([1, 0, 0, 0], dtype=np.uint8)
        assert match_first(q, block) is None
        assert match_first(q, block, width=2) == 0

    def test_compare_many_equals_loop(self, rng):
        block = random_block(rng, 10, 20)
        queries = np.vstack([block[3], 1 - block[0], block[7]])
        matrix = compare_many(queries, block, width=20)
        for qi, q in enumerate(queries):
            for ri in range(10):
                assert matrix[qi, ri] == np.array_equal(q, block[ri])

    def test_hamming_many(self, rng):
        block = random_block(rng, 5, 32)
        q = block[0].copy()
        d = hamming_many(q[None, :], block)
        assert d[0, 0] == 0
        for i in range(5):
            assert d[0, i] == int((q != block[i]).sum())

    def test_popcount_rows(self, rng):
        block = random_block(rng, 7, 64)
        assert np.array_equal(popcount_rows(block), block.sum(axis=1))

    def test_plane_word_roundtrip(self, rng):
        words = rng.integers(0, 255, 16).astype(np.int64)
        planes = words_to_planes(words, 8)
        assert np.array_equal(planes_to_words(planes), words)


class TestBatchedScheduler:
    def make(self):
        ledger = StatsLedger()
        return ledger, BatchedAapScheduler(ledger)

    def test_counts_and_energy_are_exact(self):
        ledger, sched = self.make()
        sched.charge("AAP1", (0, 0, 0), 5)
        sched.charge("DPU", (0, 0, 0), 3)
        sched.flush()
        totals = ledger.totals()
        assert totals.commands == {"AAP1": 5, "DPU": 3}

    def test_single_subarray_batch_keeps_serial_time(self):
        """No overlap inside one sub-array: makespan == serial sum."""
        ledger, sched = self.make()
        sched.charge("AAP1", (0, 0, 0), 4)
        sched.charge("AAP2", (0, 0, 0), 4)
        report = sched.flush()
        assert report.makespan_ns == pytest.approx(report.serial_ns)
        latency = command_latency_table(DEFAULT_TIMING)
        expected = 4 * latency["AAP1"] + 4 * latency["AAP2"]
        assert ledger.totals().time_ns == pytest.approx(expected)

    def test_disjoint_subarrays_coalesce(self):
        """The same work across N sub-arrays gangs into ~1/N the time."""
        ledger, sched = self.make()
        for s in range(8):
            sched.charge("AAP1", (0, 0, s), 10)
        report = sched.flush()
        assert report.coalescing_speedup == pytest.approx(8.0)
        latency = command_latency_table(DEFAULT_TIMING)
        assert ledger.totals().time_ns == pytest.approx(10 * latency["AAP1"])
        # energy stays per-command: no free lunch on power
        assert ledger.totals().commands == {"AAP1": 80}

    def test_dpu_overlaps_subarray_aaps(self):
        """The DPU reduce of row i runs while row i+1 activates."""
        ledger, sched = self.make()
        sched.charge("AAP1", (0, 0, 0), 6)
        sched.charge("DPU", (0, 0, 0), 6)
        report = sched.flush()
        latency = command_latency_table(DEFAULT_TIMING)
        assert report.makespan_ns == pytest.approx(
            6 * max(latency["AAP1"], latency["DPU"])
        )
        assert report.serial_ns == pytest.approx(
            6 * (latency["AAP1"] + latency["DPU"])
        )

    def test_grb_serialises_mat_transfers(self):
        """Host reads of two sub-arrays of one MAT share the GRB."""
        ledger, sched = self.make()
        sched.charge("MEM_RD", (0, 0, 0), 5)
        sched.charge("MEM_RD", (0, 0, 1), 5)
        report = sched.flush()
        assert report.makespan_ns == pytest.approx(report.serial_ns)

    def test_unknown_mnemonic_rejected(self):
        _, sched = self.make()
        with pytest.raises(ValueError):
            sched.charge("WARP", (0, 0, 0), 1)

    def test_flush_resets_state(self):
        ledger, sched = self.make()
        sched.charge("AAP1", (0, 0, 0), 2)
        sched.flush()
        assert sched.pending_commands == 0
        report = sched.flush()
        assert report.commands == 0
        assert report.serial_ns == 0.0


def scan_setup(rng, n_rows=10, width=32, seed_rows=None):
    pim = PimAssembler.small(subarrays=4, rows=64, cols=width)
    sub = pim.device.subarray_at((0, 0, 0))
    start = 4
    block = seed_rows if seed_rows is not None else random_block(rng, n_rows, width)
    for i, row in enumerate(block):
        sub.write_row(start + i, row)
    temp = RowAddress(bank=0, mat=0, subarray=0, row=0)
    return pim, temp, start, block


class TestCompareScanBatch:
    def test_matches_sequential_scans(self, rng):
        pim, temp, start, block = scan_setup(rng)
        queries = np.vstack([block[4], 1 - block[0], block[9], block[0]])
        ref_pim, ref_temp, ref_start, _ = scan_setup(rng, seed_rows=block)
        ctrl = ref_pim.controller
        expected = []
        for q in queries:
            ctrl.write_row(ref_temp, q)
            hit = ctrl.compare_scan(ref_temp, ref_start, 10, None)
            expected.append(-1 if hit is None else hit)

        hits = BulkEngine(pim).compare_scan_batch(temp, queries, start, 10)
        assert hits.tolist() == expected
        assert (
            pim.controller.ledger.totals().commands
            == ref_pim.controller.ledger.totals().commands
        )
        ref_sub = ref_pim.device.subarray_at((0, 0, 0))
        sub = pim.device.subarray_at((0, 0, 0))
        assert np.array_equal(sub.raw_bits, ref_sub.raw_bits)

    def test_empty_region_misses_everything(self, rng):
        pim, temp, start, _ = scan_setup(rng)
        queries = random_block(rng, 3, 32)
        hits = BulkEngine(pim).compare_scan_batch(temp, queries, start, 0)
        assert (hits == -1).all()
        assert pim.controller.ledger.totals().commands == {
            "MEM_WR": 3,
            "AAP1": 3,
        }

    def test_batched_fault_sampling_replays_scalar_stream(self, rng):
        """Same seed, faults on, no engine: flip-for-flip identical."""
        block = random_block(rng, 12, 32)
        queries = np.vstack(
            [block[i % 12] if i % 2 else random_block(rng, 1, 32)[0] for i in range(20)]
        )
        pim_a, temp_a, start_a, _ = scan_setup(rng, n_rows=12, seed_rows=block)
        pim_b, temp_b, start_b, _ = scan_setup(rng, n_rows=12, seed_rows=block)
        pim_a.controller.faults = FaultModel(compute2_rate=0.05, seed=77)
        pim_b.controller.faults = FaultModel(compute2_rate=0.05, seed=77)
        ctrl = pim_a.controller
        expected = []
        for q in queries:
            ctrl.write_row(temp_a, q)
            hit = ctrl.compare_scan(temp_a, start_a, 12, None)
            expected.append(-1 if hit is None else hit)
        hits = BulkEngine(pim_b).compare_scan_batch(temp_b, queries, start_b, 12)
        assert hits.tolist() == expected
        assert (
            pim_a.controller.ledger.totals().commands
            == pim_b.controller.ledger.totals().commands
        )

    def test_verifying_engine_with_faults_falls_back(self, rng):
        """Detect-retry interleaves RNG draws: per-query path required."""
        from repro.core.resilience import ResiliencePolicy

        block = random_block(rng, 8, 32)
        queries = np.vstack([block[3], 1 - block[0]])

        def run(batched):
            pim, temp, start, _ = scan_setup(rng, n_rows=8, seed_rows=block)
            pim.controller.faults = FaultModel(compute2_rate=0.05, seed=5)
            pim.protect(ResiliencePolicy.named("detect-retry"))
            if batched:
                return (
                    BulkEngine(pim)
                    .compare_scan_batch(temp, queries, start, 8)
                    .tolist(),
                    pim,
                )
            ctrl = pim.controller
            out = []
            for q in queries:
                ctrl.write_row(temp, q)
                hit = ctrl.compare_scan(temp, start, 8, None)
                out.append(-1 if hit is None else hit)
            return out, pim

        scalar_hits, pim_s = run(batched=False)
        bulk_hits, pim_b = run(batched=True)
        assert bulk_hits == scalar_hits
        assert (
            pim_s.controller.ledger.totals().commands
            == pim_b.controller.ledger.totals().commands
        )
        rep_s = pim_s.resilience.report()
        rep_b = pim_b.resilience.report()
        assert rep_s.totals == rep_b.totals


class TestRippleAddBlock:
    def stage_planes(self, pim, values, bits, base_row):
        sub = pim.device.subarray_at((0, 0, 0))
        planes = words_to_planes(np.asarray(values, dtype=np.int64), bits)
        addrs = []
        for i in range(bits):
            row = base_row + i
            sub.write_row(row, np.pad(planes[i], (0, 32 - planes.shape[1])))
            addrs.append(RowAddress(bank=0, mat=0, subarray=0, row=row))
        return addrs

    def test_matches_controller_ripple_add(self, rng):
        a_vals = rng.integers(0, 15, 32)
        b_vals = rng.integers(0, 15, 32)

        def run(bulk):
            pim = PimAssembler.small(subarrays=2, rows=64, cols=32)
            a = self.stage_planes(pim, a_vals, 4, 4)
            b = self.stage_planes(pim, b_vals, 4, 8)
            s = [
                RowAddress(bank=0, mat=0, subarray=0, row=12 + i)
                for i in range(4)
            ]
            carry = RowAddress(bank=0, mat=0, subarray=0, row=16)
            if bulk:
                BulkEngine(pim).ripple_add_block(a, b, s, carry)
            else:
                pim.controller.ripple_add(a, b, s, carry)
            sub = pim.device.subarray_at((0, 0, 0))
            out = planes_to_words(
                np.vstack([sub.read_row(r.row) for r in (*s, carry)])
            )
            return out, pim

        scalar_out, pim_s = run(bulk=False)
        bulk_out, pim_b = run(bulk=True)
        assert np.array_equal(scalar_out, bulk_out)
        assert np.array_equal(bulk_out[:32], a_vals + b_vals)
        assert (
            pim_s.controller.ledger.totals().commands
            == pim_b.controller.ledger.totals().commands
        )

    def test_live_fault_rates_fall_back_to_scalar(self, rng):
        a_vals = rng.integers(0, 7, 32)
        b_vals = rng.integers(0, 7, 32)

        def run(bulk):
            pim = PimAssembler.small(subarrays=2, rows=64, cols=32)
            pim.controller.faults = FaultModel(sum_rate=0.02, seed=9)
            a = self.stage_planes(pim, a_vals, 3, 4)
            b = self.stage_planes(pim, b_vals, 3, 8)
            s = [
                RowAddress(bank=0, mat=0, subarray=0, row=11 + i)
                for i in range(3)
            ]
            carry = RowAddress(bank=0, mat=0, subarray=0, row=14)
            if bulk:
                BulkEngine(pim).ripple_add_block(a, b, s, carry)
            else:
                pim.controller.ripple_add(a, b, s, carry)
            sub = pim.device.subarray_at((0, 0, 0))
            return sub.read_rows(11, 15), pim

        rows_s, pim_s = run(bulk=False)
        rows_b, pim_b = run(bulk=True)
        assert np.array_equal(rows_s, rows_b)
        assert (
            pim_s.controller.ledger.totals().commands
            == pim_b.controller.ledger.totals().commands
        )

    def test_rejects_cross_subarray_operands(self):
        pim = PimAssembler.small(subarrays=2, rows=64, cols=32)
        a = [RowAddress(bank=0, mat=0, subarray=0, row=4)]
        b = [RowAddress(bank=0, mat=0, subarray=1, row=4)]
        s = [RowAddress(bank=0, mat=0, subarray=0, row=5)]
        carry = RowAddress(bank=0, mat=0, subarray=0, row=6)
        with pytest.raises(ValueError):
            BulkEngine(pim).ripple_add_block(a, b, s, carry)
