"""Trace-driven scheduling: makespan bounds, parallelism audit."""

import numpy as np
import pytest

from repro.core import CommandTrace, PimAssembler
from repro.core.scheduler import TraceScheduler, audit_parallelism
from repro.core.trace import CommandTrace as Trace


def traced_pim(**kwargs):
    pim = PimAssembler.small(**kwargs)
    trace = CommandTrace()
    pim.controller.attach_trace(trace)
    return pim, trace


class TestBounds:
    def test_serial_trace_makespan_equals_serial_time(self, rng):
        """Commands on one sub-array cannot overlap."""
        pim, trace = traced_pim()
        a = pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        b = pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        pim.pim_xnor(a, b)
        report = audit_parallelism(trace)
        assert report.makespan_ns == pytest.approx(report.serial_ns)
        assert report.parallel_speedup == pytest.approx(1.0)

    def test_parallel_mats_overlap(self, rng):
        """The same work spread over 4 MATs (own GRBs) overlaps."""
        pim, trace = traced_pim(subarrays=1, mats=4)
        for m in range(4):
            a = pim.store_row(
                rng.integers(0, 2, 32).astype(np.uint8), (0, m, 0)
            )
            b = pim.store_row(
                rng.integers(0, 2, 32).astype(np.uint8), (0, m, 0)
            )
            pim.pim_xnor(a, b)
        report = audit_parallelism(trace)
        assert report.parallel_speedup > 3.0
        assert report.makespan_ns < report.serial_ns

    def test_shared_grb_limits_single_mat_parallelism(self, rng):
        """Sub-arrays of ONE MAT share a GRB: the alternating
        host-write / scan pattern serialises through it."""
        pim, trace = traced_pim(subarrays=4, mats=1)
        for s in range(4):
            a = pim.store_row(
                rng.integers(0, 2, 32).astype(np.uint8), (0, 0, s)
            )
            b = pim.store_row(
                rng.integers(0, 2, 32).astype(np.uint8), (0, 0, s)
            )
            pim.pim_xnor(a, b)
        report = audit_parallelism(trace)
        assert 1.0 < report.parallel_speedup < 3.0

    def test_makespan_never_below_critical_resource(self, rng):
        pim, trace = traced_pim()
        for s in range(3):
            for _ in range(2):
                pim.store_row(
                    rng.integers(0, 2, 32).astype(np.uint8), (0, 0, s)
                )
        report = audit_parallelism(trace)
        assert report.makespan_ns >= report.critical_resource_ns - 1e-9
        assert report.makespan_ns <= report.serial_ns + 1e-9

    def test_grb_serialises_host_io_within_a_mat(self, rng):
        """MEM ops to different sub-arrays of one MAT share the GRB."""
        pim, trace = traced_pim()
        pim.store_row(rng.integers(0, 2, 32).astype(np.uint8), (0, 0, 0))
        pim.store_row(rng.integers(0, 2, 32).astype(np.uint8), (0, 0, 1))
        report = audit_parallelism(trace)
        # two MEM_WRs through one GRB: no overlap despite distinct
        # sub-arrays
        assert report.makespan_ns == pytest.approx(report.serial_ns)

    def test_empty_trace(self):
        report = audit_parallelism(Trace())
        assert report.makespan_ns == 0.0
        assert report.commands == 0
        assert report.utilisation == 0.0

    def test_unknown_mnemonic_rejected(self):
        trace = Trace()
        trace.record("WARP", (0, 0, 0), (0,))
        with pytest.raises(ValueError):
            TraceScheduler().schedule(trace)


class TestPropertyBounds:
    from hypothesis import given, settings, strategies as st

    commands = st.lists(
        st.tuples(
            st.sampled_from(["AAP1", "AAP2", "AAP3", "MEM_WR", "MEM_RD", "DPU"]),
            st.integers(0, 3),  # subarray index
            st.integers(0, 1),  # mat index
        ),
        min_size=1,
        max_size=60,
    )

    @given(commands=commands)
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds_hold_for_any_trace(self, commands):
        trace = Trace()
        for mnemonic, sub, mat in commands:
            trace.record(mnemonic, (0, mat, sub), (0,))
        report = audit_parallelism(trace)
        assert report.makespan_ns <= report.serial_ns + 1e-6
        assert report.makespan_ns >= report.critical_resource_ns - 1e-6
        assert sum(report.per_subarray_busy_ns.values()) == pytest.approx(
            report.serial_ns
        )

    @given(commands=commands)
    @settings(max_examples=20, deadline=None)
    def test_speedup_bounded_by_resource_count(self, commands):
        trace = Trace()
        for mnemonic, sub, mat in commands:
            trace.record(mnemonic, (0, mat, sub), (0,))
        report = audit_parallelism(trace)
        resources = len(report.per_subarray_busy_ns)
        assert report.parallel_speedup <= resources + 1e-6


class TestAlgorithmAudit:
    def test_hashmap_exposes_partition_parallelism(self):
        """The hash-partitioned counter must schedule much faster than
        its serial command stream."""
        from repro.assembly import PimKmerCounter
        from repro.genome import synthetic_chromosome

        pim, trace = traced_pim(subarrays=2, rows=256, cols=64, mats=4)
        counter = PimKmerCounter(pim, 9)
        counter.add_sequence(synthetic_chromosome(500, seed=888))
        report = audit_parallelism(trace)
        assert report.parallel_speedup > 2.0
        assert 0.0 < report.utilisation <= 1.0

    def test_wallace_reduction_is_serial(self, rng):
        """A single-sub-array reduction exposes no parallelism."""
        from repro.mapping import wallace_column_sum

        pim, trace = traced_pim(subarrays=1, rows=256, cols=32)
        rows = [rng.integers(0, 2, 32).astype(np.uint8) for _ in range(9)]
        wallace_column_sum(pim, rows)
        report = audit_parallelism(trace)
        assert report.parallel_speedup == pytest.approx(1.0)
