"""Command traces: recording, analysis, replay equivalence."""

import numpy as np
import pytest

from repro.core import PimAssembler
from repro.core.trace import CommandTrace, analyse, replay


def traced_pim(**kwargs):
    pim = PimAssembler.small(**kwargs)
    trace = CommandTrace()
    pim.controller.attach_trace(trace)
    return pim, trace


class TestRecording:
    def test_records_issue_order(self, rng):
        pim, trace = traced_pim()
        a = pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        b = pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        pim.pim_xnor(a, b)
        mnemonics = [e.mnemonic for e in trace]
        assert mnemonics == ["MEM_WR", "MEM_WR", "AAP1", "AAP1", "AAP2"]
        assert [e.index for e in trace] == list(range(5))

    def test_mem_wr_carries_payload(self, rng):
        pim, trace = traced_pim()
        data = rng.integers(0, 2, 32).astype(np.uint8)
        pim.store_row(data)
        entry = trace.entries("MEM_WR")[0]
        assert entry.payload == tuple(int(b) for b in data)

    def test_detach_stops_recording(self, rng):
        pim, trace = traced_pim()
        pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        pim.controller.attach_trace(None)
        pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        assert len(trace) == 1

    def test_capacity_limit(self, rng):
        pim = PimAssembler.small()
        trace = CommandTrace(capacity=1)
        pim.controller.attach_trace(trace)
        pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        with pytest.raises(OverflowError):
            pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))

    def test_to_text(self, rng):
        pim, trace = traced_pim()
        pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        assert "MEM_WR" in trace.to_text()

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CommandTrace(capacity=0)


class TestAnalysis:
    def test_command_mix(self, rng):
        pim, trace = traced_pim()
        a = pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        b = pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        pim.pim_xnor(a, b)
        stats = analyse(trace)
        assert stats.command_mix["AAP2"] == 1
        assert stats.command_mix["AAP1"] == 2
        assert stats.total_commands == 5

    def test_subarray_load(self, rng):
        pim, trace = traced_pim()
        pim.store_row(rng.integers(0, 2, 32).astype(np.uint8), (0, 0, 0))
        pim.store_row(rng.integers(0, 2, 32).astype(np.uint8), (0, 0, 1))
        pim.store_row(rng.integers(0, 2, 32).astype(np.uint8), (0, 0, 1))
        stats = analyse(trace)
        assert stats.subarray_load[(0, 0, 1)] == 2
        assert stats.busiest_subarray == ((0, 0, 1), 2)
        assert stats.load_imbalance() == pytest.approx(2 / 1.5)

    def test_empty_trace(self):
        stats = analyse(CommandTrace())
        assert stats.total_commands == 0
        assert stats.busiest_subarray is None
        assert stats.load_imbalance() == 1.0


class TestReplay:
    def test_replay_reproduces_state(self, rng):
        """Recording a computation and replaying it on a fresh device
        must produce identical sub-array contents."""
        pim, trace = traced_pim()
        a = pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        b = pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        pim.pim_xnor(a, b)
        wa = pim.store_word_columns(rng.integers(0, 16, 8), bits=4, subarray_key=(0, 0, 1))
        wb = pim.store_word_columns(rng.integers(0, 16, 8), bits=4, subarray_key=(0, 0, 1))
        pim.pim_add(wa, wb, (0, 0, 1))

        fresh = PimAssembler.small()
        replay(trace, fresh.controller)

        for key in ((0, 0, 0), (0, 0, 1)):
            original = pim.device.subarray_at(key).snapshot()
            replayed = fresh.device.subarray_at(key).snapshot()
            assert (original == replayed).all(), key

    def test_replay_skips_reads(self, rng):
        pim, trace = traced_pim()
        a = pim.store_row(rng.integers(0, 2, 32).astype(np.uint8))
        pim.read_row(a)
        fresh = PimAssembler.small()
        replay(trace, fresh.controller)  # must not raise

    def test_replay_rejects_unknown_mnemonic(self):
        trace = CommandTrace()
        trace.record("WARP", (0, 0, 0), (1,))
        fresh = PimAssembler.small()
        with pytest.raises(ValueError):
            replay(trace, fresh.controller)


class TestExtendedOps:
    def test_init_row(self):
        pim = PimAssembler.small()
        addr = pim.allocate_row()
        pim.controller.init_row(addr, 1)
        assert pim.controller.read_row(addr).all()
        pim.controller.init_row(addr, 0)
        assert not pim.controller.read_row(addr).any()

    def test_init_rejects_bad_value(self):
        pim = PimAssembler.small()
        with pytest.raises(ValueError):
            pim.controller.init_row(pim.allocate_row(), 2)

    def test_not_row(self, rng):
        pim = PimAssembler.small()
        data = rng.integers(0, 2, 32).astype(np.uint8)
        src = pim.store_row(data)
        des = pim.allocate_row()
        out = pim.controller.not_row(src, des)
        assert (out == 1 - data).all()

    def test_move_row_across_subarrays(self, rng):
        pim = PimAssembler.small()
        data = rng.integers(0, 2, 32).astype(np.uint8)
        src = pim.store_row(data, (0, 0, 0))
        des = pim.allocate_row((0, 0, 2))
        pim.controller.move_row(src, des)
        assert (pim.controller.read_row(des) == data).all()
        # cross-sub-array moves ride the GRB: read + write charged
        assert pim.stats.command_count("MEM_RD") >= 1

    def test_move_row_same_subarray_is_rowclone(self, rng):
        pim = PimAssembler.small()
        data = rng.integers(0, 2, 32).astype(np.uint8)
        src = pim.store_row(data)
        des = pim.allocate_row()
        before = pim.stats.command_count("AAP1")
        pim.controller.move_row(src, des)
        assert pim.stats.command_count("AAP1") == before + 1

    def test_xor3(self, rng):
        pim = PimAssembler.small()
        rows = [rng.integers(0, 2, 32).astype(np.uint8) for _ in range(3)]
        addrs = [pim.store_row(r) for r in rows]
        des = pim.allocate_row()
        out = pim.controller.xor3_rows(*addrs, des)
        assert (out == (rows[0] ^ rows[1] ^ rows[2])).all()
