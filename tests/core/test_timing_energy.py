"""Timing and energy parameter models."""

import pytest

from repro.core.energy import EnergyModel, EnergyParameters
from repro.core.timing import (
    DEFAULT_CYCLES,
    DEFAULT_TIMING,
    OperationCycles,
    TimingParameters,
)


class TestTiming:
    def test_aap_is_two_activates_plus_precharge(self):
        t = TimingParameters(t_ras=35, t_rp=15)
        assert t.t_aap == pytest.approx(85.0)

    def test_ap_is_row_cycle(self):
        assert DEFAULT_TIMING.t_ap == pytest.approx(50.0)

    def test_row_io_times_positive(self):
        assert DEFAULT_TIMING.t_read_row > 0
        assert DEFAULT_TIMING.t_write_row > 0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TimingParameters(t_ras=0)

    def test_refresh_overhead_nominal(self):
        """tRFC/tREFI ~ 4.5% at the DDR3/4 class values."""
        assert DEFAULT_TIMING.refresh_overhead == pytest.approx(
            350.0 / 7800.0
        )
        assert 0.03 < DEFAULT_TIMING.refresh_overhead < 0.06

    def test_with_refresh_inflates_time(self):
        busy = 1000.0
        wall = DEFAULT_TIMING.with_refresh(busy)
        assert wall == pytest.approx(busy / (1 - DEFAULT_TIMING.refresh_overhead))
        assert wall > busy

    def test_with_refresh_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_TIMING.with_refresh(-1.0)

    def test_rejects_rfc_exceeding_refi(self):
        with pytest.raises(ValueError):
            TimingParameters(t_refi=100.0, t_rfc=200.0)


class TestOperationCycles:
    def test_xnor_total_is_three(self):
        """2 staging RowClones + 1 compute cycle (the paper's single-
        cycle XNOR after staging)."""
        assert DEFAULT_CYCLES.xnor_total == 3

    def test_add_per_bit_is_two(self):
        """Carry + sum: the paper's 2-cycles-per-bit claim."""
        assert DEFAULT_CYCLES.add_per_bit == 2

    def test_ripple_add_is_2m(self):
        assert DEFAULT_CYCLES.ripple_add(32) == 64

    def test_ripple_add_rejects_zero(self):
        with pytest.raises(ValueError):
            DEFAULT_CYCLES.ripple_add(0)

    def test_compress_cost(self):
        assert OperationCycles().compress_3to2() == 2


class TestEnergy:
    def test_compound_energies(self):
        e = EnergyParameters()
        assert e.e_aap_copy == pytest.approx(2 * e.e_activate + e.e_precharge)
        assert e.e_compute2 > e.e_aap_copy  # add-on SA toggles
        assert e.e_tra == pytest.approx(3 * e.e_activate + e.e_precharge)

    def test_row_transfer_dominates_io(self):
        """Host I/O costs far more than an internal cycle — the PIM
        premise."""
        e = EnergyParameters()
        assert e.e_read_row > 3 * e.e_compute2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyParameters(e_activate=-0.1)

    def test_power_conversion(self):
        model = EnergyModel()
        # 100 nJ over 100 ns = 1 W dynamic + background
        p = model.power_w(energy_nj=100.0, time_ns=100.0)
        assert p == pytest.approx(1.0 + model.params.p_background_w)

    def test_power_rejects_zero_time(self):
        with pytest.raises(ValueError):
            EnergyModel().power_w(1.0, 0.0)
