"""k-mer packing, rolling extraction, counting, canonicalisation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.genome.kmer import (
    MAX_PACKED_K,
    PAPER_K_VALUES,
    canonical_kmer,
    count_kmers,
    iter_packed_kmers,
    kmer_to_row_bits,
    pack_kmer,
    packed_kmers_array,
    unpack_kmer,
)
from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", min_size=1, max_size=80)
kmer_text = st.text(alphabet="ACGT", min_size=1, max_size=32)


class TestPacking:
    @given(kmer_text)
    def test_pack_unpack_roundtrip(self, text):
        kmer = DnaSequence(text)
        assert unpack_kmer(pack_kmer(kmer), len(kmer)) == kmer

    def test_known_values(self):
        # T=00 G=01 A=10 C=11; "AC" -> 10 11 -> 0b1011 = 11
        assert pack_kmer(DnaSequence("AC")) == 0b1011
        assert pack_kmer(DnaSequence("T")) == 0
        assert pack_kmer(DnaSequence("C")) == 3

    def test_pack_rejects_empty(self):
        with pytest.raises(ValueError):
            pack_kmer(DnaSequence(""))

    def test_pack_rejects_oversized(self):
        with pytest.raises(ValueError):
            pack_kmer(DnaSequence("A" * (MAX_PACKED_K + 1)))

    def test_unpack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            unpack_kmer(4, 1)  # 1-mer space is 0..3

    def test_injective_over_small_space(self):
        values = {pack_kmer(k) for k in DnaSequence("ACGTACGTGGCCTTAA").kmers(4)}
        kmers = {str(k) for k in DnaSequence("ACGTACGTGGCCTTAA").kmers(4)}
        assert len(values) == len(kmers)


class TestExtraction:
    @given(dna, st.integers(min_value=1, max_value=16))
    def test_rolling_matches_vectorised(self, text, k):
        seq = DnaSequence(text)
        rolling = list(iter_packed_kmers(seq, k))
        vectorised = packed_kmers_array(seq, k).tolist()
        assert rolling == vectorised

    @given(dna, st.integers(min_value=1, max_value=16))
    def test_matches_naive_packing(self, text, k):
        seq = DnaSequence(text)
        naive = [pack_kmer(kmer) for kmer in seq.kmers(k)]
        assert list(iter_packed_kmers(seq, k)) == naive

    def test_short_sequence_yields_nothing(self):
        assert list(iter_packed_kmers(DnaSequence("AC"), 5)) == []
        assert packed_kmers_array(DnaSequence("AC"), 5).size == 0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            list(iter_packed_kmers(DnaSequence("ACGT"), 0))
        with pytest.raises(ValueError):
            packed_kmers_array(DnaSequence("ACGT"), 33)


class TestCounting:
    def test_total_equals_positions(self):
        seq = DnaSequence("ACGTACGTAA")
        counts = count_kmers(seq, 3)
        assert sum(counts.values()) == len(seq) - 3 + 1

    def test_repeat_counted(self):
        counts = count_kmers(DnaSequence("ACGACGACG"), 3)
        assert counts[pack_kmer(DnaSequence("ACG"))] == 3

    def test_multiple_sequences(self):
        seqs = [DnaSequence("ACGT"), DnaSequence("ACGA")]
        counts = count_kmers(seqs, 3)
        assert counts[pack_kmer(DnaSequence("ACG"))] == 2

    def test_paper_k_values(self):
        assert PAPER_K_VALUES == (16, 22, 26, 32)
        assert all(k <= MAX_PACKED_K for k in PAPER_K_VALUES)


class TestCanonical:
    @given(kmer_text)
    def test_canonical_is_strand_invariant(self, text):
        kmer = DnaSequence(text)
        assert canonical_kmer(kmer) == canonical_kmer(kmer.reverse_complement())

    @given(kmer_text)
    def test_canonical_is_one_of_the_pair(self, text):
        kmer = DnaSequence(text)
        canon = canonical_kmer(kmer)
        assert canon in (kmer, kmer.reverse_complement())


class TestRowLayout:
    def test_pads_to_row(self):
        bits = kmer_to_row_bits(DnaSequence("ACG"), row_bits=16)
        assert bits.size == 16
        assert (bits[6:] == 0).all()

    def test_preserves_prefix(self):
        kmer = DnaSequence("ACGT")
        bits = kmer_to_row_bits(kmer, row_bits=32)
        assert (bits[:8] == kmer.to_bits()).all()

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            kmer_to_row_bits(DnaSequence("A" * 20), row_bits=16)
