"""Short-read simulation: sampling, errors, strands, coverage."""

import numpy as np
import pytest

from repro.genome.reads import Read, ReadSimulator, coverage_histogram
from repro.genome.reference import synthetic_chromosome


@pytest.fixture(scope="module")
def reference():
    return synthetic_chromosome(3000, seed=77)


class TestSampling:
    def test_reads_match_reference(self, reference):
        sim = ReadSimulator(read_length=50, seed=1)
        for read in sim.sample(reference, 100):
            assert str(read.sequence) == str(
                reference[read.start : read.start + 50]
            )

    def test_read_count_and_length(self, reference):
        sim = ReadSimulator(read_length=40, seed=2)
        reads = sim.sample(reference, 25)
        assert len(reads) == 25
        assert all(len(r) == 40 for r in reads)

    def test_deterministic_per_seed(self, reference):
        a = ReadSimulator(read_length=30, seed=5).sample(reference, 10)
        b = ReadSimulator(read_length=30, seed=5).sample(reference, 10)
        assert [r.start for r in a] == [r.start for r in b]

    def test_starts_within_bounds(self, reference):
        sim = ReadSimulator(read_length=100, seed=3)
        for read in sim.sample(reference, 200):
            assert 0 <= read.start <= len(reference) - 100

    def test_rejects_short_reference(self):
        sim = ReadSimulator(read_length=200)
        tiny = synthetic_chromosome(1000, seed=1)[:100]
        with pytest.raises(ValueError):
            sim.sample(tiny, 5)

    def test_rejects_zero_count(self, reference):
        with pytest.raises(ValueError):
            ReadSimulator().sample(reference, 0)

    def test_lazy_iteration(self, reference):
        sim = ReadSimulator(read_length=30, seed=4)
        iterator = sim.iter_sample(reference, 5)
        first = next(iterator)
        assert isinstance(first, Read)


class TestCoveragePlanning:
    def test_reads_for_coverage(self):
        sim = ReadSimulator(read_length=100)
        assert sim.reads_for_coverage(10_000, 30.0) == 3000

    def test_minimum_one_read(self):
        sim = ReadSimulator(read_length=100)
        assert sim.reads_for_coverage(10, 0.001) == 1

    def test_mean_coverage_close_to_target(self, reference):
        sim = ReadSimulator(read_length=50, seed=6)
        count = sim.reads_for_coverage(len(reference), 20)
        reads = sim.sample(reference, count)
        cover = coverage_histogram(reads, len(reference))
        # interior positions (edges are under-covered by construction)
        interior = cover[100:-100]
        assert abs(interior.mean() - 20) < 3


class TestErrorModel:
    def test_error_free_by_default(self, reference):
        sim = ReadSimulator(read_length=60, seed=7)
        for read in sim.sample(reference, 20):
            assert str(read.sequence) == str(
                reference[read.start : read.start + 60]
            )

    def test_error_rate_applied(self, reference):
        sim = ReadSimulator(read_length=100, seed=8, error_rate=0.05)
        reads = sim.sample(reference, 100)
        mismatches = 0
        for read in reads:
            original = reference.codes[read.start : read.start + 100]
            mismatches += int((read.sequence.codes != original).sum())
        rate = mismatches / (100 * 100)
        assert 0.02 < rate < 0.09

    def test_errors_are_substitutions_not_identity(self, reference):
        """An 'error' must change the base (never a silent no-op)."""
        sim = ReadSimulator(read_length=100, seed=9, error_rate=1.0 - 1e-9)
        read = sim.sample(reference, 1)[0]
        original = reference.codes[read.start : read.start + 100]
        assert (read.sequence.codes != original).all()

    def test_rejects_bad_error_rate(self):
        with pytest.raises(ValueError):
            ReadSimulator(error_rate=1.0)


class TestReverseStrand:
    def test_reverse_reads_are_rc_of_reference(self, reference):
        sim = ReadSimulator(read_length=50, seed=10, sample_reverse=True)
        reads = sim.sample(reference, 200)
        reverse = [r for r in reads if r.reverse]
        assert reverse, "with 200 samples some must be reverse"
        for read in reverse[:10]:
            window = reference[read.start : read.start + 50]
            assert read.sequence == window.reverse_complement()

    def test_roughly_half_reverse(self, reference):
        sim = ReadSimulator(read_length=50, seed=11, sample_reverse=True)
        reads = sim.sample(reference, 500)
        fraction = sum(r.reverse for r in reads) / len(reads)
        assert 0.4 < fraction < 0.6


class TestCoverageHistogram:
    def test_counts_intervals(self):
        reads = [
            Read("a", synthetic_chromosome(1000, seed=1)[0:10], start=0),
            Read("b", synthetic_chromosome(1000, seed=1)[5:15], start=5),
        ]
        cover = coverage_histogram(reads, 20)
        assert cover[0] == 1 and cover[7] == 2 and cover[15] == 0

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            coverage_histogram([], 0)
