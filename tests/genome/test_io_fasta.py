"""FASTA/FASTQ IO: roundtrips, wrapping, gap splitting, malformed input."""

import io

import pytest

from repro.genome.io_fasta import (
    FastaRecord,
    FastqRecord,
    read_fasta,
    read_fasta_contigs,
    read_fastq,
    validate_records,
    write_fasta,
    write_fastq,
)


def roundtrip_fasta(records, **kwargs):
    buf = io.StringIO()
    write_fasta(buf, records, **kwargs)
    buf.seek(0)
    return read_fasta(buf)


class TestFasta:
    def test_roundtrip_multi_record(self):
        records = [
            FastaRecord("a", "ACGT" * 30, "first record"),
            FastaRecord("b", "GGCC"),
        ]
        out = roundtrip_fasta(records)
        assert [(r.name, r.sequence, r.description) for r in out] == [
            ("a", "ACGT" * 30, "first record"),
            ("b", "GGCC", ""),
        ]

    def test_wrapping(self):
        buf = io.StringIO()
        write_fasta(buf, [FastaRecord("x", "A" * 100)], width=10)
        lines = buf.getvalue().strip().split("\n")
        assert len(lines) == 11  # header + 10 sequence lines
        assert all(len(l) == 10 for l in lines[1:])

    def test_write_rejects_bad_width(self):
        with pytest.raises(ValueError):
            write_fasta(io.StringIO(), [], width=0)

    def test_lower_case_is_upcased(self):
        buf = io.StringIO(">x\nacgt\n")
        assert read_fasta(buf)[0].sequence == "ACGT"

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError):
            read_fasta(io.StringIO("ACGT\n>x\n"))

    def test_empty_header_rejected(self):
        with pytest.raises(ValueError):
            read_fasta(io.StringIO(">\nACGT\n"))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "ref.fa"
        write_fasta(path, [FastaRecord("chr", "ACGTACGT")])
        assert read_fasta(path)[0].sequence == "ACGTACGT"

    def test_to_dna(self):
        assert str(FastaRecord("x", "ACG").to_dna()) == "ACG"


class TestGapSplitting:
    def test_splits_on_n_runs(self):
        buf = io.StringIO(">x\nACGTNNNNGGCCNTT\n")
        contigs = read_fasta_contigs(buf)
        assert [str(c) for c in contigs] == ["ACGT", "GGCC", "TT"]

    def test_no_gaps_single_contig(self):
        buf = io.StringIO(">x\nACGT\n")
        assert len(read_fasta_contigs(buf)) == 1

    def test_all_gaps_no_contigs(self):
        buf = io.StringIO(">x\nNNNN\n")
        assert read_fasta_contigs(buf) == []


class TestFastq:
    def test_roundtrip(self):
        records = [FastqRecord("r1", "ACGT", "IIII"), FastqRecord("r2", "GG")]
        buf = io.StringIO()
        write_fastq(buf, records)
        buf.seek(0)
        out = read_fastq(buf)
        assert out[0].sequence == "ACGT"
        assert out[0].quality == "IIII"
        assert out[1].quality == "II"  # default quality filled in

    def test_quality_length_mismatch_on_construction(self):
        with pytest.raises(ValueError):
            FastqRecord("r", "ACGT", "II")

    def test_malformed_header(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("r1\nACGT\n+\nIIII\n"))

    def test_malformed_plus_line(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("@r1\nACGT\nX\nIIII\n"))

    def test_quality_mismatch_on_read(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("@r1\nACGT\n+\nII\n"))


class TestValidation:
    def test_validate_accepts_clean(self):
        validate_records([FastaRecord("x", "ACGT")])

    def test_validate_rejects_n(self):
        with pytest.raises(ValueError):
            validate_records([FastaRecord("x", "ACGN")])
