"""FASTA/FASTQ IO: roundtrips, wrapping, gap splitting, malformed input."""

import io

import pytest

from repro.genome.io_fasta import (
    FastaRecord,
    FastqRecord,
    read_fasta,
    read_fasta_contigs,
    read_fastq,
    validate_records,
    write_fasta,
    write_fastq,
)


def roundtrip_fasta(records, **kwargs):
    buf = io.StringIO()
    write_fasta(buf, records, **kwargs)
    buf.seek(0)
    return read_fasta(buf)


class TestFasta:
    def test_roundtrip_multi_record(self):
        records = [
            FastaRecord("a", "ACGT" * 30, "first record"),
            FastaRecord("b", "GGCC"),
        ]
        out = roundtrip_fasta(records)
        assert [(r.name, r.sequence, r.description) for r in out] == [
            ("a", "ACGT" * 30, "first record"),
            ("b", "GGCC", ""),
        ]

    def test_wrapping(self):
        buf = io.StringIO()
        write_fasta(buf, [FastaRecord("x", "A" * 100)], width=10)
        lines = buf.getvalue().strip().split("\n")
        assert len(lines) == 11  # header + 10 sequence lines
        assert all(len(l) == 10 for l in lines[1:])

    def test_write_rejects_bad_width(self):
        with pytest.raises(ValueError):
            write_fasta(io.StringIO(), [], width=0)

    def test_lower_case_is_upcased(self):
        buf = io.StringIO(">x\nacgt\n")
        assert read_fasta(buf)[0].sequence == "ACGT"

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError):
            read_fasta(io.StringIO("ACGT\n>x\n"))

    def test_empty_header_rejected(self):
        with pytest.raises(ValueError):
            read_fasta(io.StringIO(">\nACGT\n"))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "ref.fa"
        write_fasta(path, [FastaRecord("chr", "ACGTACGT")])
        assert read_fasta(path)[0].sequence == "ACGTACGT"

    def test_to_dna(self):
        assert str(FastaRecord("x", "ACG").to_dna()) == "ACG"


class TestGapSplitting:
    def test_splits_on_n_runs(self):
        buf = io.StringIO(">x\nACGTNNNNGGCCNTT\n")
        contigs = read_fasta_contigs(buf)
        assert [str(c) for c in contigs] == ["ACGT", "GGCC", "TT"]

    def test_no_gaps_single_contig(self):
        buf = io.StringIO(">x\nACGT\n")
        assert len(read_fasta_contigs(buf)) == 1

    def test_all_gaps_no_contigs(self):
        buf = io.StringIO(">x\nNNNN\n")
        assert read_fasta_contigs(buf) == []


class TestFastq:
    def test_roundtrip(self):
        records = [FastqRecord("r1", "ACGT", "IIII"), FastqRecord("r2", "GG")]
        buf = io.StringIO()
        write_fastq(buf, records)
        buf.seek(0)
        out = read_fastq(buf)
        assert out[0].sequence == "ACGT"
        assert out[0].quality == "IIII"
        assert out[1].quality == "II"  # default quality filled in

    def test_quality_length_mismatch_on_construction(self):
        with pytest.raises(ValueError):
            FastqRecord("r", "ACGT", "II")

    def test_malformed_header(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("r1\nACGT\n+\nIIII\n"))

    def test_malformed_plus_line(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("@r1\nACGT\nX\nIIII\n"))

    def test_quality_mismatch_on_read(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("@r1\nACGT\n+\nII\n"))


class TestValidation:
    def test_validate_accepts_clean(self):
        validate_records([FastaRecord("x", "ACGT")])

    def test_validate_rejects_n(self):
        with pytest.raises(ValueError):
            validate_records([FastaRecord("x", "ACGN")])


class TestHardening:
    """CRLF, lowercase, truncation, and lenient-mode quarantine."""

    def test_fasta_crlf_and_lowercase(self):
        buf = io.StringIO(">r0 desc\r\nacgt\r\nACGT\r\n>r1\r\ncgta\r\n")
        records = read_fasta(buf)
        assert [(r.name, r.sequence) for r in records] == [
            ("r0", "ACGTACGT"),
            ("r1", "CGTA"),
        ]

    def test_fastq_crlf_and_lowercase(self):
        buf = io.StringIO("@r0\r\nacgt\r\n+\r\nIIII\r\n")
        records = read_fastq(buf)
        assert records[0].sequence == "ACGT"
        assert records[0].quality == "IIII"

    def test_fastq_truncated_final_record_strict(self):
        buf = io.StringIO("@r0\nACGT\n+\nIIII\n@r1\nACGT\n")
        with pytest.raises(ValueError, match="truncated"):
            read_fastq(buf)

    def test_fastq_truncated_after_header_strict(self):
        with pytest.raises(ValueError, match="truncated"):
            read_fastq(io.StringIO("@r0\n"))

    def test_fastq_truncated_final_record_lenient(self):
        from repro.genome.io_fasta import ParseReport

        report = ParseReport()
        buf = io.StringIO("@r0\nACGT\n+\nIIII\n@r1\nACGT\n")
        records = read_fastq(buf, strict=False, report=report)
        assert [r.name for r in records] == ["r0"]
        assert report.quarantined == 1
        assert "truncated" in report.reasons[0]

    def test_fastq_lenient_skips_malformed_keeps_rest(self):
        from repro.genome.io_fasta import ParseReport

        report = ParseReport()
        buf = io.StringIO(
            "@r0\nACGT\n+\nIIII\n"
            "@bad\nACGT\nX\nIIII\n"  # missing '+'
            "@worse\nACGT\n+\nII\n"  # quality length mismatch
            "@r1\nCGTA\n+\nIIII\n"
        )
        records = read_fastq(buf, strict=False, report=report)
        assert [r.name for r in records] == ["r0", "r1"]
        assert report.quarantined == 2

    def test_fastq_lenient_quarantines_non_acgt(self):
        from repro.genome.io_fasta import ParseReport

        report = ParseReport()
        buf = io.StringIO("@r0\nACNT\n+\nIIII\n@r1\nACGT\n+\nIIII\n")
        records = read_fastq(buf, strict=False, report=report)
        assert [r.name for r in records] == ["r1"]
        assert report.quarantined == 1

    def test_fasta_lenient_quarantines_and_continues(self):
        from repro.genome.io_fasta import ParseReport

        report = ParseReport()
        buf = io.StringIO(
            "ACGT\n"  # sequence before any header
            ">\nACGT\n"  # nameless header; body silently dropped
            ">ok\nACGT\n"
            ">bad\nACNT\n"  # non-ACGT bases
        )
        records = read_fasta(buf, strict=False, report=report)
        assert [r.name for r in records] == ["ok"]
        assert report.quarantined == 3

    def test_strict_mode_unchanged_for_clean_files(self):
        buf = io.StringIO(">r0\nACGT\n")
        assert read_fasta(buf, strict=True)[0].sequence == "ACGT"
