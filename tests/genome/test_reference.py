"""Synthetic reference generation (the chr14 surrogate)."""

import pytest

from repro.genome.kmer import count_kmers
from repro.genome.reference import (
    CHR14_GC,
    CHR14_LENGTH,
    RepeatSpec,
    chr14_surrogate,
    from_string,
    synthetic_chromosome,
)


class TestSyntheticChromosome:
    def test_length(self):
        assert len(synthetic_chromosome(5000, seed=1)) == 5000

    def test_deterministic_per_seed(self):
        a = synthetic_chromosome(2000, seed=9)
        b = synthetic_chromosome(2000, seed=9)
        assert a == b

    def test_seeds_differ(self):
        a = synthetic_chromosome(2000, seed=1)
        b = synthetic_chromosome(2000, seed=2)
        assert a != b

    def test_gc_content_near_target(self):
        seq = synthetic_chromosome(50_000, seed=3, gc_content=0.41)
        assert abs(seq.gc_content() - 0.41) < 0.02

    def test_high_gc_target(self):
        seq = synthetic_chromosome(50_000, seed=3, gc_content=0.65)
        assert abs(seq.gc_content() - 0.65) < 0.02

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            synthetic_chromosome(0)
        with pytest.raises(ValueError):
            synthetic_chromosome(100, gc_content=1.0)

    def test_repeats_create_kmer_multiplicity(self):
        """Dispersed repeats must make some k-mers occur many times —
        the property that makes de Bruijn graphs branch."""
        heavy = RepeatSpec(dispersed_fraction=0.3, dispersed_element_length=200)
        seq = synthetic_chromosome(30_000, seed=5, repeats=heavy)
        counts = count_kmers(seq, 21)
        max_count = max(counts.values())
        assert max_count >= 5  # repeat copies share 21-mers

    def test_no_repeats_mostly_unique(self):
        clean = RepeatSpec(dispersed_fraction=0.0, tandem_fraction=0.0)
        seq = synthetic_chromosome(20_000, seed=6, repeats=clean)
        counts = count_kmers(seq, 21)
        duplicated = sum(1 for c in counts.values() if c > 1)
        assert duplicated / len(counts) < 0.01


class TestRepeatSpec:
    def test_rejects_fraction_sum_over_one(self):
        with pytest.raises(ValueError):
            RepeatSpec(dispersed_fraction=0.6, tandem_fraction=0.5)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            RepeatSpec(dispersed_element_length=0)
        with pytest.raises(ValueError):
            RepeatSpec(tandem_unit_length=-1)


class TestChr14Surrogate:
    def test_scaled_length(self):
        seq = chr14_surrogate(scale=1e-4)
        assert len(seq) == int(CHR14_LENGTH * 1e-4)

    def test_minimum_floor(self):
        assert len(chr14_surrogate(scale=1e-9)) == 1000

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            chr14_surrogate(scale=0)

    def test_constants(self):
        assert CHR14_LENGTH == 88_000_000
        assert CHR14_GC == pytest.approx(0.41)


class TestFromString:
    def test_valid(self):
        assert str(from_string("ACGT")) == "ACGT"

    def test_invalid(self):
        with pytest.raises(ValueError):
            from_string("ACGN")
