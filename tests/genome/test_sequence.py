"""DnaSequence: immutability, protocol, biology helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", min_size=0, max_size=120)
nonempty_dna = st.text(alphabet="ACGT", min_size=1, max_size=120)


class TestConstruction:
    @given(dna)
    def test_str_roundtrip(self, text):
        assert str(DnaSequence(text)) == text

    def test_from_codes(self):
        seq = DnaSequence.from_codes(np.array([0, 1, 2, 3], dtype=np.uint8))
        assert str(seq) == "TGAC"

    @given(dna)
    def test_bits_roundtrip(self, text):
        seq = DnaSequence(text)
        assert DnaSequence.from_bits(seq.to_bits()) == seq

    def test_copy_constructor(self):
        a = DnaSequence("ACGT")
        assert DnaSequence(a) == a

    def test_rejects_invalid_codes(self):
        with pytest.raises(ValueError):
            DnaSequence(np.array([5], dtype=np.uint8))

    def test_rejects_invalid_text(self):
        with pytest.raises(ValueError):
            DnaSequence("ACGU")

    def test_codes_are_read_only(self):
        seq = DnaSequence("ACGT")
        with pytest.raises(ValueError):
            seq.codes[0] = 0


class TestSequenceProtocol:
    def test_len(self):
        assert len(DnaSequence("ACG")) == 3
        assert len(DnaSequence("")) == 0

    def test_indexing(self):
        seq = DnaSequence("ACGT")
        assert seq[0] == "A"
        assert seq[-1] == "T"

    def test_slicing(self):
        seq = DnaSequence("ACGTAC")
        assert isinstance(seq[1:4], DnaSequence)
        assert str(seq[1:4]) == "CGT"

    def test_iteration(self):
        assert list(DnaSequence("ACG")) == ["A", "C", "G"]

    def test_equality_with_string(self):
        assert DnaSequence("ACGT") == "ACGT"
        assert DnaSequence("ACGT") != "ACGA"

    def test_hashable(self):
        assert len({DnaSequence("AC"), DnaSequence("AC"), DnaSequence("AG")}) == 2

    @given(dna, dna)
    def test_concatenation(self, a, b):
        assert str(DnaSequence(a) + DnaSequence(b)) == a + b

    def test_concatenation_with_string(self):
        assert str(DnaSequence("AC") + "GT") == "ACGT"

    def test_repr_truncates(self):
        assert "..." in repr(DnaSequence("A" * 100))
        assert "..." not in repr(DnaSequence("ACGT"))


class TestBiology:
    @given(nonempty_dna)
    def test_reverse_complement_involution(self, text):
        seq = DnaSequence(text)
        assert seq.reverse_complement().reverse_complement() == seq

    def test_gc_content(self):
        assert DnaSequence("GGCC").gc_content() == 1.0
        assert DnaSequence("AATT").gc_content() == 0.0
        assert DnaSequence("ACGT").gc_content() == 0.5
        assert DnaSequence("").gc_content() == 0.0

    def test_kmers(self):
        kmers = [str(k) for k in DnaSequence("ACGTA").kmers(3)]
        assert kmers == ["ACG", "CGT", "GTA"]

    @given(nonempty_dna, st.integers(min_value=1, max_value=10))
    def test_kmer_count_matches_iteration(self, text, k):
        seq = DnaSequence(text)
        assert seq.kmer_count(k) == len(list(seq.kmers(k)))

    def test_kmers_rejects_bad_k(self):
        with pytest.raises(ValueError):
            list(DnaSequence("ACG").kmers(0))
