"""k-mer spectrum analysis."""

import pytest

from repro.genome import ReadSimulator, synthetic_chromosome
from repro.genome.sequence import DnaSequence
from repro.genome.spectrum import (
    analyse_spectrum,
    find_coverage_peak,
    find_error_threshold,
    format_histogram,
    kmer_histogram,
)


@pytest.fixture(scope="module")
def deep_reads():
    reference = synthetic_chromosome(4000, seed=901)
    sim = ReadSimulator(read_length=80, seed=902, error_rate=0.004)
    return reference, sim.sample(reference, sim.reads_for_coverage(4000, 40))


class TestHistogram:
    def test_counts_by_frequency(self):
        histogram = kmer_histogram([DnaSequence("ACGACGT")], 3)
        # ACG x2; CGA, GAC, CGT x1
        assert histogram == {1: 3, 2: 1}

    def test_accepts_reads(self, deep_reads):
        _, reads = deep_reads
        histogram = kmer_histogram(reads, 17)
        assert sum(histogram.values()) > 0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            kmer_histogram([DnaSequence("ACGT")], 0)

    def test_bimodal_shape_on_noisy_reads(self, deep_reads):
        """Errors create a spike at frequency 1, genome a peak near
        the coverage — the histogram must be bimodal."""
        _, reads = deep_reads
        histogram = kmer_histogram(reads, 17)
        assert histogram.get(1, 0) > 0
        high = {f: n for f, n in histogram.items() if f > 10}
        assert high, "genomic mode missing"


class TestThresholdAndPeak:
    def test_valley_detection(self):
        histogram = {1: 1000, 2: 200, 3: 40, 4: 60, 5: 100, 6: 80}
        assert find_error_threshold(histogram) == 4

    def test_monotone_histogram_falls_back(self):
        histogram = {1: 100, 2: 50, 3: 10}
        assert find_error_threshold(histogram) == 2

    def test_empty(self):
        assert find_error_threshold({}) == 2

    def test_peak_above_threshold(self):
        histogram = {1: 1000, 2: 100, 3: 20, 20: 500, 21: 480}
        assert find_coverage_peak(histogram, 3) == 20


class TestAnalysis:
    def test_genome_size_estimate(self, deep_reads):
        reference, reads = deep_reads
        analysis = analyse_spectrum(reads, 17)
        estimate = analysis.genome_size_estimate
        assert abs(estimate - len(reference)) / len(reference) < 0.25

    def test_coverage_peak_near_true_coverage(self, deep_reads):
        _, reads = deep_reads
        analysis = analyse_spectrum(reads, 17)
        # per-kmer coverage ~ coverage * (L-k+1)/L ~ 40 * 0.8 = 32
        assert 20 < analysis.coverage_peak < 45

    def test_solid_fraction(self, deep_reads):
        _, reads = deep_reads
        analysis = analyse_spectrum(reads, 17)
        assert 0.2 < analysis.solid_fraction() < 1.0

    def test_totals_consistent(self, deep_reads):
        _, reads = deep_reads
        analysis = analyse_spectrum(reads, 17)
        expected_total = sum(r.sequence.kmer_count(17) for r in reads)
        assert analysis.total_kmers == expected_total

    def test_threshold_feeds_correction(self, deep_reads):
        """The detected threshold is a sane solid_threshold."""
        _, reads = deep_reads
        analysis = analyse_spectrum(reads, 17)
        assert 2 <= analysis.error_threshold <= 10


class TestFormatting:
    def test_ascii_histogram(self):
        text = format_histogram({1: 100, 5: 10})
        assert "1x" in text and "#" in text

    def test_empty_histogram(self):
        assert "empty" in format_histogram({})
