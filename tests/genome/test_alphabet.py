"""2-bit DNA alphabet: the paper's Fig. 7 encoding and conversions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.genome import alphabet

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestPaperEncoding:
    def test_fig7_code_table(self):
        """Fig. 7: T=00, G=01, A=10, C=11."""
        assert alphabet.encode_base("T") == 0b00
        assert alphabet.encode_base("G") == 0b01
        assert alphabet.encode_base("A") == 0b10
        assert alphabet.encode_base("C") == 0b11

    def test_decode_base(self):
        for i, base in enumerate("TGAC"):
            assert alphabet.decode_base(i) == base

    def test_decode_base_bounds(self):
        with pytest.raises(ValueError):
            alphabet.decode_base(4)

    def test_encode_base_rejects_invalid(self):
        with pytest.raises(ValueError):
            alphabet.encode_base("N")


class TestVectorised:
    @given(dna)
    def test_encode_decode_roundtrip(self, text):
        assert alphabet.decode(alphabet.encode(text)) == text

    @given(dna)
    def test_bits_roundtrip(self, text):
        codes = alphabet.encode(text)
        bits = alphabet.codes_to_bits(codes)
        assert bits.size == 2 * len(text)
        assert (alphabet.bits_to_codes(bits) == codes).all()

    @given(dna)
    def test_string_bits_roundtrip(self, text):
        assert alphabet.decode_from_bits(alphabet.encode_to_bits(text)) == text

    def test_lsb_first_option(self):
        bits_msb = alphabet.encode_to_bits("A", msb_first=True)
        bits_lsb = alphabet.encode_to_bits("A", msb_first=False)
        assert (bits_msb == bits_lsb[::-1]).all()
        assert alphabet.decode_from_bits(bits_lsb, msb_first=False) == "A"

    def test_encode_rejects_invalid(self):
        with pytest.raises(ValueError):
            alphabet.encode("ACGX")

    def test_bits_to_codes_rejects_odd_length(self):
        with pytest.raises(ValueError):
            alphabet.bits_to_codes(np.array([1], dtype=np.uint8))

    def test_bits_to_codes_rejects_non_binary(self):
        with pytest.raises(ValueError):
            alphabet.bits_to_codes(np.array([2, 0], dtype=np.uint8))

    def test_empty(self):
        assert alphabet.decode(alphabet.encode("")) == ""


class TestComplement:
    @given(dna)
    def test_reverse_complement_involution(self, text):
        rc = alphabet.reverse_complement
        assert rc(rc(text)) == text

    def test_known_value(self):
        assert alphabet.reverse_complement("AACGTT") == "AACGTT"
        assert alphabet.reverse_complement("AAA") == "TTT"
        assert alphabet.reverse_complement("GATC") == "GATC"

    @given(dna)
    def test_code_space_matches_string_space(self, text):
        codes = alphabet.encode(text)
        rc_codes = alphabet.reverse_complement_codes(codes)
        assert alphabet.decode(rc_codes) == alphabet.reverse_complement(text)

    def test_complement_code_pairs(self):
        """A<->T and C<->G in code space."""
        for base in "ACGT":
            code = alphabet.encode_base(base)
            comp = alphabet.COMPLEMENT_CODE[code]
            assert alphabet.decode_base(int(comp)) == alphabet.complement_base(base)


class TestValidation:
    def test_is_valid_sequence(self):
        assert alphabet.is_valid_sequence("ACGT")
        assert not alphabet.is_valid_sequence("ACGN")
        assert alphabet.is_valid_sequence("")
        assert not alphabet.is_valid_sequence("acgt")  # lower case invalid
