"""Paired-end read simulation."""

import pytest

from repro.genome.paired import PairedReadSimulator, ReadPair, all_reads
from repro.genome.reference import synthetic_chromosome


@pytest.fixture(scope="module")
def reference():
    return synthetic_chromosome(5000, seed=211)


class TestSampling:
    def test_left_mate_is_forward_window(self, reference):
        sim = PairedReadSimulator(read_length=50, insert_mean=300, seed=1)
        for pair in sim.sample(reference, 50):
            assert str(pair.left.sequence) == str(
                reference[pair.left.start : pair.left.start + 50]
            )

    def test_right_mate_is_reverse_of_insert_end(self, reference):
        sim = PairedReadSimulator(read_length=50, insert_mean=300, seed=2)
        for pair in sim.sample(reference, 50):
            window = reference[pair.right.start : pair.right.start + 50]
            assert pair.right.sequence == window.reverse_complement()
            assert pair.right.reverse

    def test_insert_geometry(self, reference):
        sim = PairedReadSimulator(read_length=50, insert_mean=300, seed=3)
        for pair in sim.sample(reference, 50):
            assert pair.right.start + 50 - pair.left.start == pair.insert_size

    def test_insert_size_distribution(self, reference):
        sim = PairedReadSimulator(
            read_length=50, insert_mean=400, insert_sd=40, seed=4
        )
        inserts = [p.insert_size for p in sim.sample(reference, 400)]
        mean = sum(inserts) / len(inserts)
        assert abs(mean - 400) < 15

    def test_gap_property(self, reference):
        sim = PairedReadSimulator(read_length=50, insert_mean=300, seed=5)
        pair = sim.sample(reference, 1)[0]
        assert pair.gap == pair.insert_size - 100

    def test_deterministic(self, reference):
        a = PairedReadSimulator(read_length=40, insert_mean=200, seed=7).sample(
            reference, 10
        )
        b = PairedReadSimulator(read_length=40, insert_mean=200, seed=7).sample(
            reference, 10
        )
        assert [p.insert_size for p in a] == [p.insert_size for p in b]

    def test_error_rate(self, reference):
        sim = PairedReadSimulator(
            read_length=100, insert_mean=300, seed=8, error_rate=0.05
        )
        mismatches = 0
        pairs = sim.sample(reference, 50)
        for pair in pairs:
            original = reference.codes[pair.left.start : pair.left.start + 100]
            mismatches += int((pair.left.sequence.codes != original).sum())
        rate = mismatches / (50 * 100)
        assert 0.02 < rate < 0.09

    def test_coverage_planning(self):
        sim = PairedReadSimulator(read_length=100, insert_mean=300)
        assert sim.pairs_for_coverage(10_000, 20.0) == 1000

    def test_all_reads_flattens(self, reference):
        sim = PairedReadSimulator(read_length=50, insert_mean=300, seed=9)
        pairs = sim.sample(reference, 10)
        reads = all_reads(pairs)
        assert len(reads) == 20
        assert reads[0].name.endswith("/1") and reads[1].name.endswith("/2")


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PairedReadSimulator(read_length=0)
        with pytest.raises(ValueError):
            PairedReadSimulator(read_length=100, insert_mean=50)
        with pytest.raises(ValueError):
            PairedReadSimulator(insert_sd=-1.0)
        with pytest.raises(ValueError):
            PairedReadSimulator(error_rate=1.0)

    def test_rejects_short_reference(self):
        sim = PairedReadSimulator(read_length=50, insert_mean=300)
        tiny = synthetic_chromosome(1000, seed=1)[:200]
        with pytest.raises(ValueError):
            sim.sample(tiny, 5)

    def test_read_pair_validation(self, reference):
        sim = PairedReadSimulator(read_length=50, insert_mean=300, seed=10)
        pair = sim.sample(reference, 1)[0]
        with pytest.raises(ValueError):
            ReadPair(
                name="bad", left=pair.left, right=pair.right, insert_size=10
            )
