"""Shifted-VTC inverters and the reconfigurable SA's analog decisions."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.cell import CellParameters
from repro.dram.sense_voltage import (
    InverterVTC,
    ReconfigurableSenseVoltages,
    high_vs_inverter,
    low_vs_inverter,
    normal_vs_inverter,
    tra_majority,
)

IDEAL = CellParameters(retention_degradation=0.0)


class TestInverterVTC:
    def test_digital_threshold(self):
        inv = InverterVTC(switching_voltage=0.25)
        assert inv.digital(0.1) == 1
        assert inv.digital(0.4) == 0

    def test_analog_rails(self):
        inv = InverterVTC(switching_voltage=0.5)
        assert inv.analog(0.0) > 0.99
        assert inv.analog(1.0) < 0.01

    def test_analog_midpoint(self):
        inv = InverterVTC(switching_voltage=0.5)
        assert inv.analog(0.5) == pytest.approx(0.5)

    def test_rejects_threshold_outside_rails(self):
        with pytest.raises(ValueError):
            InverterVTC(switching_voltage=1.5)

    def test_rejects_non_positive_gain(self):
        with pytest.raises(ValueError):
            InverterVTC(switching_voltage=0.5, gain=0)

    @given(v=st.floats(min_value=0.0, max_value=1.0))
    def test_analog_monotone_decreasing(self, v):
        inv = InverterVTC(switching_voltage=0.5)
        assert inv.analog(v) >= inv.analog(min(1.0, v + 0.05)) - 1e-9

    def test_factory_thresholds(self):
        assert low_vs_inverter().switching_voltage == pytest.approx(0.25)
        assert high_vs_inverter().switching_voltage == pytest.approx(0.75)
        assert normal_vs_inverter().switching_voltage == pytest.approx(0.5)


class TestSenseDecision:
    @pytest.mark.parametrize(
        "di,dj",
        [(0, 0), (0, 1), (1, 0), (1, 1)],
    )
    def test_full_truth_table(self, di, dj):
        """End-to-end: charge share -> inverters -> every gate output."""
        sa = ReconfigurableSenseVoltages.nominal(IDEAL)
        from repro.dram.charge_sharing import two_row_share

        decision = sa.decide(two_row_share(di, dj, IDEAL).voltage)
        assert decision.nor2 == int(not (di or dj))
        assert decision.nand2 == int(not (di and dj))
        assert decision.xor2 == (di ^ dj)
        assert decision.xnor2 == int(di == dj)
        assert decision.and2 == (di & dj)
        assert decision.or2 == (di | dj)

    @pytest.mark.parametrize("di,dj", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_xnor2_shortcut(self, di, dj):
        sa = ReconfigurableSenseVoltages.nominal(IDEAL)
        assert sa.xnor2(di, dj, IDEAL) == int(di == dj)

    def test_retention_does_not_flip_nominal_decisions(self):
        """Default 2% derating still resolves correctly."""
        sa = ReconfigurableSenseVoltages.nominal()
        for di in (0, 1):
            for dj in (0, 1):
                assert sa.xnor2(di, dj) == int(di == dj)


class TestTraMajority:
    @pytest.mark.parametrize(
        "bits",
        [(0, 0, 0), (0, 0, 1), (0, 1, 1), (1, 1, 1), (1, 0, 1), (1, 1, 0)],
    )
    def test_all_patterns(self, bits):
        assert tra_majority(bits, IDEAL) == int(sum(bits) >= 2)

    def test_shifted_reference_can_flip(self):
        """An offset reference larger than the margin flips the result —
        the failure mode Table I quantifies."""
        assert tra_majority((1, 1, 0), IDEAL, reference=0.9) == 0
        assert tra_majority((0, 0, 1), IDEAL, reference=0.1) == 1
