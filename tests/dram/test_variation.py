"""Monte-Carlo process-variation engine (Table I)."""

import pytest

from repro.dram.variation import (
    TABLE_I_LEVELS,
    MonteCarloSense,
    VariationResult,
    VariationSpec,
    run_variation_table,
)


class TestVariationSpec:
    def test_relative_sigma(self):
        spec = VariationSpec(percent=15.0)
        assert spec.relative_sigma == pytest.approx(0.05)

    def test_rejects_negative_percent(self):
        with pytest.raises(ValueError):
            VariationSpec(percent=-1.0)

    def test_rejects_bad_sigma_fraction(self):
        with pytest.raises(ValueError):
            VariationSpec(percent=5.0, sigma_fraction=0.0)


class TestVariationResult:
    def test_error_percent(self):
        r = VariationResult("tra", 10.0, trials=200, errors=3)
        assert r.error_percent == pytest.approx(1.5)

    def test_zero_trials_guard(self):
        assert VariationResult("tra", 10.0, 0, 0).error_percent == 0.0


class TestMonteCarloSense:
    def test_reproducible_with_seed(self):
        a = MonteCarloSense(seed=7).run_tra(VariationSpec(20.0), 2000)
        b = MonteCarloSense(seed=7).run_tra(VariationSpec(20.0), 2000)
        assert a.errors == b.errors

    def test_different_seeds_differ(self):
        a = MonteCarloSense(seed=1).run_tra(VariationSpec(30.0), 4000)
        b = MonteCarloSense(seed=2).run_tra(VariationSpec(30.0), 4000)
        assert a.errors != b.errors  # overwhelmingly likely at 30%

    def test_no_variation_no_errors(self):
        engine = MonteCarloSense()
        spec = VariationSpec(percent=0.0, include_coupling_noise=False)
        assert engine.run_tra(spec, 5000).errors == 0
        assert engine.run_two_row(spec, 5000).errors == 0

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            MonteCarloSense().run_tra(VariationSpec(5.0), 0)

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError):
            MonteCarloSense().run("nonsense", VariationSpec(5.0))

    def test_run_dispatch(self):
        engine = MonteCarloSense()
        assert engine.run("tra", VariationSpec(5.0), 100).mechanism == "tra"
        assert (
            engine.run("two_row", VariationSpec(5.0), 100).mechanism == "two_row"
        )

    def test_errors_increase_with_variation(self):
        """Monotone trend for both mechanisms (the Table I shape)."""
        engine = MonteCarloSense()
        for run in (engine.run_tra, engine.run_two_row):
            previous = -1
            for level in (5.0, 15.0, 30.0):
                errors = run(VariationSpec(level), 10_000).errors
                assert errors >= previous
                previous = errors


class TestTableI:
    @pytest.fixture(scope="class")
    def table(self):
        return run_variation_table(trials=10_000)

    def test_covers_paper_levels(self, table):
        assert set(table["tra"]) == set(TABLE_I_LEVELS)
        assert set(table["two_row"]) == set(TABLE_I_LEVELS)

    def test_zero_error_at_five_percent(self, table):
        """Both mechanisms are clean at +/-5% (paper row 1)."""
        assert table["tra"][5.0].error_percent < 0.1
        assert table["two_row"][5.0].error_percent < 0.1

    def test_two_row_clean_at_ten_percent(self, table):
        """Paper row 2: two-row activation still error-free at +/-10%."""
        assert table["two_row"][10.0].error_percent < 0.25

    def test_tra_fails_first(self, table):
        """TRA shows errors at +/-10% while two-row is (near) clean."""
        assert (
            table["tra"][10.0].error_percent
            > table["two_row"][10.0].error_percent
        )

    def test_two_row_more_robust_at_every_level(self, table):
        for level in TABLE_I_LEVELS:
            assert (
                table["two_row"][level].error_percent
                <= table["tra"][level].error_percent + 1e-9
            )

    def test_double_digit_errors_at_thirty_percent(self, table):
        """Both mechanisms degrade heavily at +/-30% (paper row 5)."""
        assert table["tra"][30.0].error_percent > 10.0
        assert table["two_row"][30.0].error_percent > 10.0
