"""Sense margins and the technology-scaling study."""

import pytest

from repro.dram.cell import CellParameters
from repro.dram.margins import (
    margin_report,
    scaled_cell,
    scaling_study,
    two_row_margin,
)


class TestMargins:
    def test_two_row_margin_dominates(self):
        report = margin_report()
        assert report.two_row_margin > 3.0 * report.tra_margin
        assert report.margin_ratio > 3.0

    def test_two_row_margin_value(self):
        """Levels {0, ~.49, ~.98} vs thresholds {.25, .75}: ~0.23 V
        with the default 2% retention derating."""
        assert two_row_margin() == pytest.approx(0.23, abs=0.01)

    def test_ideal_cells_give_quarter_vdd(self):
        ideal = CellParameters(retention_degradation=0.0)
        assert two_row_margin(ideal) == pytest.approx(0.25)


class TestScaledCell:
    def test_capacitances_shrink(self):
        base = CellParameters()
        small = scaled_cell(0.5, base)
        assert small.cell_capacitance_f == pytest.approx(
            base.cell_capacitance_f * 0.5
        )
        assert small.bitline_capacitance_f == pytest.approx(
            base.bitline_capacitance_f * 0.5**0.5
        )

    def test_cs_over_cb_worsens(self):
        """The signal-defining ratio Cs/Cb falls as the node shrinks."""
        base = margin_report(CellParameters())
        small = margin_report(scaled_cell(0.4))
        assert small.cs_over_cb < base.cs_over_cb

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            scaled_cell(0.0)
        with pytest.raises(ValueError):
            scaled_cell(1.5)


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return scaling_study(trials=10_000)

    def test_paper_expectation_tra_worsens(self, points):
        """'By scaling down the transistor size, the process variation
        effect is expected to get worse' — TRA errors climb."""
        tra = [p.tra_error_percent for p in points]
        assert tra == sorted(tra)
        assert tra[-1] > 1.5 * tra[0]

    def test_two_row_stays_ahead_at_every_node(self, points):
        for p in points:
            assert p.two_row_error_percent < p.tra_error_percent

    def test_tra_margin_shrinks(self, points):
        margins = [p.tra_margin for p in points]
        assert margins == sorted(margins, reverse=True)

    def test_rejects_empty_scales(self):
        with pytest.raises(ValueError):
            scaling_study(scales=())
