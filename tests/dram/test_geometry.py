"""Geometry hierarchy: capacities, derived counts, validation."""

import pytest

from repro.dram.geometry import (
    BankGeometry,
    DeviceGeometry,
    MatGeometry,
    SubArrayGeometry,
    default_geometry,
    microbenchmark_geometry,
)


class TestSubArrayGeometry:
    def test_paper_defaults(self):
        g = SubArrayGeometry()
        assert g.rows == 1024
        assert g.cols == 256
        assert g.compute_rows == 8
        assert g.data_rows == 1016

    def test_row_bits_equals_cols(self):
        assert SubArrayGeometry(rows=64, cols=48).row_bits == 48

    def test_capacity(self):
        g = SubArrayGeometry(rows=64, cols=32)
        assert g.capacity_bits == 64 * 32
        assert g.data_capacity_bits == (64 - 8) * 32

    @pytest.mark.parametrize("rows,cols", [(0, 256), (1024, 0), (-1, 4)])
    def test_rejects_non_positive_dims(self, rows, cols):
        with pytest.raises(ValueError):
            SubArrayGeometry(rows=rows, cols=cols)

    def test_rejects_compute_rows_filling_array(self):
        with pytest.raises(ValueError):
            SubArrayGeometry(rows=8, cols=4, compute_rows=8)

    def test_rejects_zero_compute_rows(self):
        with pytest.raises(ValueError):
            SubArrayGeometry(compute_rows=0)


class TestMatGeometry:
    def test_default_grid(self):
        m = MatGeometry()
        assert m.num_subarrays == 16

    def test_capacity_sums_subarrays(self):
        m = MatGeometry(subarrays_x=2, subarrays_y=3)
        assert m.capacity_bits == 6 * m.subarray.capacity_bits

    def test_rejects_active_overflow(self):
        with pytest.raises(ValueError):
            MatGeometry(subarrays_x=1, subarrays_y=1, active_subarrays=2)


class TestBankGeometry:
    def test_default_grid(self):
        b = BankGeometry()
        assert b.num_mats == 256
        assert b.num_subarrays == 256 * 16

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            BankGeometry(mats_x=0)


class TestDeviceGeometry:
    def test_default_capacity_is_1_gib(self):
        d = default_geometry()
        assert d.capacity_bytes == 8 * 256 * 16 * 1024 * 256 // 8

    def test_num_subarrays(self):
        d = default_geometry()
        assert d.num_subarrays == 8 * 256 * 16

    def test_row_bits(self):
        assert default_geometry().row_bits == 256

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            DeviceGeometry(num_banks=0)

    def test_parallel_op_bits_scales_with_pd(self):
        d = default_geometry()
        assert d.parallel_op_bits(2) == 2 * d.parallel_op_bits(1)

    def test_parallel_op_bits_rejects_excess_pd(self):
        d = default_geometry()
        with pytest.raises(ValueError):
            d.parallel_op_bits(17)  # mats hold 16 sub-arrays

    def test_microbenchmark_matches_default(self):
        assert microbenchmark_geometry() == default_geometry()
