"""DRAM cell parameters and noise-source inventory."""

import pytest

from repro.dram.cell import CellParameters, NoiseSources


class TestCellParameters:
    def test_defaults_are_45nm_class(self):
        p = CellParameters()
        assert p.cell_capacitance_f == pytest.approx(22e-15)
        assert p.bitline_capacitance_f == pytest.approx(85e-15)
        assert p.vdd == 1.0

    def test_precharge_voltage_is_half_vdd(self):
        assert CellParameters().precharge_voltage == pytest.approx(0.5)

    def test_stored_voltage_zero(self):
        assert CellParameters().stored_voltage(0) == 0.0

    def test_stored_voltage_one_is_derated(self):
        p = CellParameters(retention_degradation=0.05)
        assert p.stored_voltage(1) == pytest.approx(0.95)

    def test_stored_voltage_rejects_non_bit(self):
        with pytest.raises(ValueError):
            CellParameters().stored_voltage(2)

    def test_transfer_ratio(self):
        p = CellParameters()
        expected = 22.0 / (22.0 + 85.0)
        assert p.transfer_ratio == pytest.approx(expected)

    def test_transfer_ratio_below_one(self):
        assert 0 < CellParameters().transfer_ratio < 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cell_capacitance_f": 0.0},
            {"bitline_capacitance_f": -1e-15},
            {"vdd": 0.0},
            {"precharge_fraction": 1.5},
            {"retention_degradation": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CellParameters(**kwargs)


class TestNoiseSources:
    def test_total_rms_combines_sources(self):
        n = NoiseSources(
            wordline_bitline=0.03, bitline_substrate=0.04, bitline_crosstalk=0.0
        )
        assert n.total_rms == pytest.approx(0.05)

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ValueError):
            NoiseSources(wordline_bitline=-0.01)

    def test_defaults_are_small(self):
        assert NoiseSources().total_rms < 0.05
