"""Retention modelling for resident PIM data structures."""

import pytest

from repro.dram.retention import RetentionModel, residency_study


class TestRetentionModel:
    def test_nominal_refresh_is_safe_per_cell(self):
        """At the 64 ms window the upset probability per cell is far
        below anything that threatens a single row."""
        model = RetentionModel()
        p = model.upset_probability_per_window(0.064)
        assert p < 1e-12

    def test_probability_monotone_in_window(self):
        model = RetentionModel()
        windows = (0.064, 0.256, 1.024, 4.096, 16.0)
        probs = [model.upset_probability_per_window(w) for w in windows]
        assert probs == sorted(probs)

    def test_leaky_population_dominates_short_windows(self):
        """Below ~1 s the main population contributes ~nothing; the
        residual leaky cells set the rate."""
        model = RetentionModel()
        leakless = RetentionModel(leaky_fraction=0.0)
        assert model.upset_probability_per_window(0.256) > 100 * (
            leakless.upset_probability_per_window(0.256)
        )

    def test_cell_failure_capped_by_residency(self):
        """A run shorter than the refresh window only exposes cells for
        the run itself."""
        model = RetentionModel()
        long_window = model.cell_failure_probability(4.096, residency_s=25.0)
        short_run = model.cell_failure_probability(4.096, residency_s=0.064)
        assert short_run < long_window

    def test_table_upset_probability_bounds(self):
        model = RetentionModel()
        p = model.table_upset_probability(10**9, residency_s=25.0)
        assert 0.0 <= p <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetentionModel(main_median_s=0)
        with pytest.raises(ValueError):
            RetentionModel(leaky_fraction=1.5)
        with pytest.raises(ValueError):
            RetentionModel().upset_probability_per_window(0.0)
        with pytest.raises(ValueError):
            RetentionModel().table_upset_probability(0, 1.0)


class TestResidencyStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return residency_study()

    def test_nominal_refresh_needs_no_protection(self, points):
        nominal = points[0]
        assert nominal.refresh_interval_s == pytest.approx(0.064)
        assert not nominal.needs_protection
        assert nominal.table_upset_probability < 0.01

    def test_risk_monotone_in_interval(self, points):
        upsets = [p.expected_upsets for p in points]
        assert upsets == sorted(upsets)
        probs = [p.table_upset_probability for p in points]
        assert probs == sorted(probs)

    def test_relaxed_refresh_approaches_corruption(self, points):
        relaxed = points[-1]
        assert relaxed.table_upset_probability > 0.25

    def test_chr14_table_size_default(self, points):
        """The default study covers the paper's resident table."""
        assert points[0].expected_upsets > 0
