"""Charge-sharing arithmetic: levels, margins, conservation."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.cell import CellParameters
from repro.dram.charge_sharing import (
    ChargeShareResult,
    share_voltage,
    tra_nominal_margin,
    triple_row_share,
    two_row_nominal_levels,
    two_row_share,
)

IDEAL = CellParameters(retention_degradation=0.0)


class TestShareVoltage:
    def test_equal_caps_average(self):
        assert share_voltage([1.0, 0.0], [1e-15, 1e-15]) == pytest.approx(0.5)

    def test_weighted_by_capacitance(self):
        v = share_voltage([1.0, 0.0], [3e-15, 1e-15])
        assert v == pytest.approx(0.75)

    def test_extra_node_participates(self):
        v = share_voltage([1.0], [1e-15], extra_capacitance=1e-15, extra_voltage=0.0)
        assert v == pytest.approx(0.5)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            share_voltage([1.0], [1e-15, 2e-15])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            share_voltage([], [])

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError):
            share_voltage([1.0], [0.0])

    @given(
        voltages=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6
        )
    )
    def test_result_within_input_range(self, voltages):
        caps = [22e-15] * len(voltages)
        v = share_voltage(voltages, caps)
        assert min(voltages) - 1e-12 <= v <= max(voltages) + 1e-12

    @given(
        voltages=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=5
        ),
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_scale_invariance(self, voltages, scale):
        """Scaling every capacitance leaves the shared voltage unchanged."""
        caps = [22e-15] * len(voltages)
        v1 = share_voltage(voltages, caps)
        v2 = share_voltage(voltages, [c * scale for c in caps])
        assert v1 == pytest.approx(v2)


class TestTwoRowShare:
    def test_ideal_levels_are_n_over_two(self):
        lo, mid, hi = two_row_nominal_levels(IDEAL)
        assert lo == pytest.approx(0.0)
        assert mid == pytest.approx(0.5)
        assert hi == pytest.approx(1.0)

    def test_symmetric_in_operands(self):
        assert two_row_share(1, 0, IDEAL).voltage == pytest.approx(
            two_row_share(0, 1, IDEAL).voltage
        )

    def test_counts_ones(self):
        assert two_row_share(1, 1, IDEAL).ones == 2
        assert two_row_share(0, 0, IDEAL).cells == 2

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            two_row_share(2, 0)

    def test_margin_annotation(self):
        result = two_row_share(1, 0, IDEAL).with_margin([0.25, 0.75])
        assert result.margin == pytest.approx(0.25)

    def test_margin_requires_thresholds(self):
        with pytest.raises(ValueError):
            two_row_share(1, 0, IDEAL).with_margin([])

    def test_retention_lowers_one_level(self):
        derated = CellParameters(retention_degradation=0.05)
        assert two_row_share(1, 1, derated).voltage < 1.0


class TestTripleRowShare:
    def test_majority_sides_of_reference(self):
        p = IDEAL
        ref = p.precharge_voltage
        for bits in [(1, 1, 0), (1, 1, 1), (1, 0, 1)]:
            assert triple_row_share(list(bits), p).voltage > ref
        for bits in [(0, 0, 1), (0, 0, 0)]:
            assert triple_row_share(list(bits), p).voltage < ref

    def test_requires_exactly_three(self):
        with pytest.raises(ValueError):
            triple_row_share([1, 0], IDEAL)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            triple_row_share([1, 0, 3], IDEAL)

    def test_margin_is_small_fraction_of_vdd(self):
        """TRA's margin (~Cs/(Cb+3Cs) * Vdd/2) is the reliability
        bottleneck: roughly 7% of Vdd at nominal parameters."""
        margin = tra_nominal_margin(IDEAL)
        assert 0.05 < margin < 0.10

    def test_two_row_margin_exceeds_tra_margin(self):
        """The paper's core robustness claim at nominal conditions."""
        two_row_margin = 0.25  # distance of {0, .5, 1} to {.25, .75}
        assert two_row_margin > tra_nominal_margin(IDEAL)


class TestChargeShareResult:
    def test_with_margin_picks_nearest(self):
        r = ChargeShareResult(voltage=0.6, ones=1, cells=2)
        annotated = r.with_margin([0.25, 0.75])
        assert annotated.margin == pytest.approx(0.15)
