"""Transient waveforms of in-memory XNOR2 (Fig. 3a)."""

import numpy as np
import pytest

from repro.dram.cell import CellParameters
from repro.dram.waveform import (
    TransientPhases,
    cycle_time_ns,
    is_settled,
    settling_error,
    xnor2_transient,
    xnor2_transient_suite,
)


class TestPhases:
    def test_total(self):
        phases = TransientPhases(precharge_ns=5, share_ns=10, sense_ns=15)
        assert phases.total_ns == 30
        assert cycle_time_ns(phases) == 30


class TestXnor2Transient:
    @pytest.mark.parametrize(
        "di,dj,rail",
        [(0, 0, 1.0), (1, 1, 1.0), (0, 1, 0.0), (1, 0, 0.0)],
    )
    def test_bl_reaches_xnor_rail(self, di, dj, rail):
        """Fig. 3a: cells charge to Vdd for equal inputs, GND otherwise."""
        wave = xnor2_transient(di, dj)
        assert abs(wave.final("BL") - rail) < 0.01

    @pytest.mark.parametrize("di,dj", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_blb_is_complement(self, di, dj):
        wave = xnor2_transient(di, dj)
        assert wave.final("BL") + wave.final("BLB") == pytest.approx(1.0, abs=0.02)

    def test_precharge_phase_holds_half_vdd(self):
        wave = xnor2_transient(1, 0)
        assert wave.at("BL", 1.0) == pytest.approx(0.5)
        assert wave.at("node", 2.0) == pytest.approx(0.5)

    def test_wordlines_rise_at_share(self):
        phases = TransientPhases()
        wave = xnor2_transient(1, 1, phases=phases)
        assert wave.at("WLx1", phases.precharge_ns - 1.0) == 0.0
        assert wave.at("WLx1", phases.precharge_ns + 1.0) == 1.0
        assert (wave.traces["WLx1"] == wave.traces["WLx2"]).all()

    def test_node_settles_to_share_level(self):
        """During the share phase the node approaches n*Vdd/2."""
        params = CellParameters(retention_degradation=0.0)
        phases = TransientPhases()
        wave = xnor2_transient(1, 0, params=params, phases=phases)
        t_end_share = phases.precharge_ns + phases.share_ns - 0.5
        assert wave.at("node", t_end_share) == pytest.approx(0.5, abs=0.02)

    def test_traces_share_timebase(self):
        wave = xnor2_transient(0, 1)
        for trace in wave.traces.values():
            assert trace.shape == wave.time_ns.shape

    def test_add_rejects_wrong_length(self):
        wave = xnor2_transient(0, 0)
        with pytest.raises(ValueError):
            wave.add("bad", np.zeros(3))

    def test_settling_error_helpers(self):
        wave = xnor2_transient(1, 1)
        assert settling_error(wave, "BL", 1.0) < 0.01
        assert is_settled(wave, "BL", 1.0, tolerance=0.01)
        with pytest.raises(KeyError):
            settling_error(wave, "nope", 1.0)


class TestSuite:
    def test_covers_four_patterns(self):
        suite = xnor2_transient_suite()
        assert set(suite) == {"00", "01", "10", "11"}

    def test_patterns_pairwise_consistent(self):
        suite = xnor2_transient_suite()
        assert suite["01"].final("BL") == pytest.approx(
            suite["10"].final("BL"), abs=0.01
        )
        assert suite["00"].final("BL") == pytest.approx(
            suite["11"].final("BL"), abs=0.02
        )
