"""Cross-module integration: the whole stack exercised end to end."""

import numpy as np
import pytest

from repro import PimAssembler, assemble, assemble_with_pim
from repro.assembly import evaluate_assembly, greedy_scaffold
from repro.assembly.pipeline import PimPipeline
from repro.eval import (
    chr14_workload,
    headline_ratios,
    run_area_study,
    run_reliability_table,
    run_transient_study,
)
from repro.eval.execution import ExecutionModel
from repro.genome import ReadSimulator, synthetic_chromosome
from repro.genome.io_fasta import FastaRecord, read_fasta, write_fasta
from repro.platforms import assembly_platforms


class TestFullAssemblyFlow:
    """Reference genome -> reads -> PIM assembly -> evaluation."""

    def test_fasta_to_contigs_roundtrip(self, tmp_path):
        reference = synthetic_chromosome(600, seed=91)
        ref_path = tmp_path / "ref.fa"
        write_fasta(ref_path, [FastaRecord("chr", str(reference))])

        loaded = read_fasta(ref_path)[0].to_dna()
        sim = ReadSimulator(read_length=60, seed=92)
        reads = sim.sample(loaded, sim.reads_for_coverage(len(loaded), 20))

        result = assemble_with_pim(reads, k=15)
        report = evaluate_assembly(result.contigs, reference)
        assert report.genome_fraction > 0.95
        assert report.misassemblies == 0

        out_path = tmp_path / "contigs.fa"
        write_fasta(
            out_path,
            [FastaRecord(c.name, str(c.sequence)) for c in result.contigs],
        )
        assert len(read_fasta(out_path)) == len(result.contigs)

    def test_pim_and_software_agree_across_k(self):
        reference = synthetic_chromosome(350, seed=93)
        sim = ReadSimulator(read_length=45, seed=94)
        reads = sim.sample(reference, sim.reads_for_coverage(350, 18))
        for k in (9, 13, 17):
            pim_result = assemble_with_pim(reads, k=k)
            sw_result = assemble(reads, k=k)
            assert sorted(str(c.sequence) for c in pim_result.contigs) == sorted(
                str(c.sequence) for c in sw_result.contigs
            ), f"k={k}"

    def test_repeat_genome_fragments_into_unitigs(self):
        """Repeats shorter than reads but longer than k must create
        branches — and the unitig mode must stay misassembly-free."""
        from repro.genome.reference import RepeatSpec

        reference = synthetic_chromosome(
            1000,
            seed=95,
            repeats=RepeatSpec(
                dispersed_fraction=0.25, dispersed_element_length=120
            ),
        )
        sim = ReadSimulator(read_length=60, seed=96)
        reads = sim.sample(reference, sim.reads_for_coverage(1000, 25))
        result = assemble(reads, k=15)
        report = evaluate_assembly(result.contigs, reference)
        assert report.misassemblies == 0
        assert report.genome_fraction > 0.8

    def test_scaffolding_joins_adjacent_contigs(self):
        reference = synthetic_chromosome(500, seed=97)
        # construct two overlapping windows as artificial contigs via
        # two read pools with a coverage gap in the middle
        sim = ReadSimulator(read_length=50, seed=98)
        reads = sim.sample(reference, sim.reads_for_coverage(500, 25))
        result = assemble_with_pim(reads, k=15, scaffold=True)
        if len(result.contigs) > 1:
            assert len(result.scaffolds) <= len(result.contigs)


class TestSimulatedTimingConsistency:
    def test_pipeline_time_scales_with_reads(self):
        reference = synthetic_chromosome(300, seed=99)
        sim = ReadSimulator(read_length=40, seed=100)
        small = sim.sample(reference, 20)
        large = sim.sample(reference, 60)
        r_small = assemble_with_pim(
            small, k=13, pim=PimAssembler.small(subarrays=8, rows=256, cols=64)
        )
        r_large = assemble_with_pim(
            large, k=13, pim=PimAssembler.small(subarrays=8, rows=256, cols=64)
        )
        assert r_large.hashmap.time_ns > r_small.hashmap.time_ns

    def test_hashmap_command_mix_matches_algorithm(self):
        """Every k-mer query issues exactly one temp MEM_WR; misses add
        one AAP1 table insert on top of the staging copies."""
        pim = PimAssembler.small(subarrays=4, rows=256, cols=64)
        reference = synthetic_chromosome(200, seed=101)
        pipeline = PimPipeline(pim, k=11)
        pipeline.run([reference])
        n_queries = reference.kmer_count(11)
        hashmap_cmds = pim.stats.totals("hashmap").commands
        # temp insert + counter writes both use MEM_WR
        assert hashmap_cmds["MEM_WR"] >= n_queries


class TestMultiChipMapping:
    """Interval-block partitioning driving per-chip functional devices."""

    def test_partitioned_degree_computation_matches_whole_graph(self):
        from repro.assembly import build_graph_from_sequences
        from repro.mapping import IntervalBlockPartition, degree_vectors_pim
        from repro.mapping.graph_partition import BlockId

        reference = synthetic_chromosome(600, seed=950)
        graph = build_graph_from_sequences([reference], 9)

        chips = 2
        partition = IntervalBlockPartition.from_graph(graph, intervals=chips)
        assignment = partition.chip_assignment(chips)

        # one functional device per chip; each computes the degree
        # contributions of its own edge blocks
        from repro.assembly.debruijn import DeBruijnGraph

        in_total: dict[int, int] = {}
        out_total: dict[int, int] = {}
        for chip in range(chips):
            chip_graph = DeBruijnGraph(k=9)
            for block, owner in assignment.items():
                if owner != chip:
                    continue
                for edge in partition.block_edges(block):
                    chip_graph.add_kmer(edge.kmer, edge.count)
            if chip_graph.num_edges == 0:
                continue
            device = PimAssembler.small(subarrays=1, rows=512, cols=64)
            in_deg, out_deg = degree_vectors_pim(device, chip_graph)
            for node, value in in_deg.items():
                in_total[node] = in_total.get(node, 0) + value
            for node, value in out_deg.items():
                out_total[node] = out_total.get(node, 0) + value

        for node in graph.nodes():
            assert in_total.get(node, 0) == graph.in_degree(node)
            assert out_total.get(node, 0) == graph.out_degree(node)

    def test_every_block_lands_on_its_destination_chip(self):
        from repro.assembly import build_graph_from_sequences
        from repro.mapping import IntervalBlockPartition

        reference = synthetic_chromosome(400, seed=951)
        graph = build_graph_from_sequences([reference], 9)
        partition = IntervalBlockPartition.from_graph(graph, intervals=4)
        assignment = partition.chip_assignment(4)
        for block, chip in assignment.items():
            assert chip == block.destination_interval % 4


class TestPaperScaleModels:
    def test_functional_and_analytic_use_same_cycle_costs(self):
        """The analytic compare cost must equal what the functional
        controller charges for one staged scan step."""
        from repro.platforms import pim_assembler

        analytic = pim_assembler()
        pim = PimAssembler.small()
        a = pim.store_row(np.ones(32, dtype=np.uint8))
        b = pim.store_row(np.ones(32, dtype=np.uint8))
        pim.reset_stats()
        des = a.with_row(pim.device.subarray_at(a).compute_row(3))
        pim.controller.xnor_rows(a, b, des)
        functional_ns = pim.stats.totals().time_ns
        assert functional_ns == pytest.approx(analytic.compare_ns())

    def test_all_experiments_run(self):
        """Every paper artefact regenerates without error."""
        assert headline_ratios()["xnor_vs_cpu"] > 1
        assert run_area_study().within_claim
        assert run_transient_study().all_patterns_correct
        table = run_reliability_table(trials=2000)
        assert table.all_orderings_hold
        model = ExecutionModel(chr14_workload(16))
        results = [model.run(p) for p in assembly_platforms()]
        assert len(results) == 5
