"""End-to-end pipeline integration: PIM vs golden model vs reference."""

import pytest

from repro.assembly import assemble, assemble_with_pim, evaluate_assembly
from repro.assembly.pipeline import PimPipeline
from repro.core import PimAssembler
from repro.genome import ReadSimulator, synthetic_chromosome


@pytest.fixture(scope="module")
def small_case():
    reference = synthetic_chromosome(400, seed=21)
    sim = ReadSimulator(read_length=50, seed=22)
    reads = sim.sample(reference, sim.reads_for_coverage(400, 20))
    return reference, reads


class TestEquivalenceWithGoldenModel:
    def test_same_contigs(self, small_case):
        reference, reads = small_case
        pim_result = assemble_with_pim(reads, k=13)
        sw_result = assemble(reads, k=13)
        assert sorted(str(c.sequence) for c in pim_result.contigs) == sorted(
            str(c.sequence) for c in sw_result.contigs
        )

    def test_same_graph_shape(self, small_case):
        _, reads = small_case
        pim_result = assemble_with_pim(reads, k=13)
        sw_result = assemble(reads, k=13)
        assert pim_result.graph.num_nodes == sw_result.graph.num_nodes
        assert pim_result.graph.num_edges == sw_result.graph.num_edges
        assert pim_result.kmer_table_size == sw_result.kmer_table_size


class TestReferenceRecovery:
    def test_high_coverage_recovers_reference(self, small_case):
        reference, reads = small_case
        result = assemble_with_pim(reads, k=13)
        report = evaluate_assembly(result.contigs, reference)
        assert report.genome_fraction > 0.95
        assert report.misassemblies == 0

    def test_euler_mode_on_clean_genome(self):
        reference = synthetic_chromosome(200, seed=33, repeats=None)
        sim = ReadSimulator(read_length=60, seed=34)
        reads = sim.sample(reference, sim.reads_for_coverage(200, 25))
        pim = PimAssembler.small(subarrays=8, rows=256, cols=64)
        result = PimPipeline(pim, k=15, contig_mode="euler").run(reads)
        report = evaluate_assembly(result.contigs, reference)
        assert report.genome_fraction > 0.9


class TestAccounting:
    def test_phase_totals_populated(self, small_case):
        _, reads = small_case
        result = assemble_with_pim(reads, k=13)
        assert result.hashmap.time_ns > 0
        assert result.traverse.time_ns > 0
        assert result.total_time_ns == pytest.approx(
            result.hashmap.time_ns
            + result.debruijn.time_ns
            + result.traverse.time_ns
        )
        assert result.total_energy_nj > 0

    def test_hashmap_dominates(self, small_case):
        """The paper: k-mer analysis takes the largest time share."""
        _, reads = small_case
        result = assemble_with_pim(reads, k=13)
        assert result.hashmap.time_ns > result.debruijn.time_ns
        assert result.hashmap.time_ns > result.traverse.time_ns

    def test_commands_attributed_to_phases(self, small_case):
        _, reads = small_case
        pim = PimAssembler.small(subarrays=8, rows=256, cols=64)
        PimPipeline(pim, k=13).run(reads)
        hashmap_cmds = pim.stats.totals("hashmap").commands
        assert hashmap_cmds.get("AAP2", 0) > 0  # comparisons
        traverse_cmds = pim.stats.totals("traverse").commands
        assert traverse_cmds.get("AAP3", 0) > 0  # degree carry cycles


class TestOptions:
    def test_scaffold_option(self, small_case):
        _, reads = small_case
        result = assemble_with_pim(reads, k=13, scaffold=True)
        assert isinstance(result.scaffolds, list)

    def test_min_contig_length(self, small_case):
        _, reads = small_case
        result = assemble_with_pim(reads, k=13, min_contig_length=30)
        assert all(len(c) >= 30 for c in result.contigs)

    def test_rejects_bad_k(self):
        pim = PimAssembler.small()
        with pytest.raises(ValueError):
            PimPipeline(pim, k=1)

    def test_simplify_option_cleans_noisy_graph(self):
        """simplify=True must not hurt a clean assembly and must
        reduce contig count on error-polluted input."""
        reference = synthetic_chromosome(700, seed=61)
        sim = ReadSimulator(read_length=60, seed=62, error_rate=0.008)
        reads = sim.sample(reference, sim.reads_for_coverage(700, 30))
        plain = assemble_with_pim(reads, k=15)
        cleaned = assemble_with_pim(reads, k=15, simplify=True)
        plain_report = evaluate_assembly(plain.contigs, reference)
        cleaned_report = evaluate_assembly(
            [c for c in cleaned.contigs if len(c) >= 30], reference
        )
        assert cleaned.graph.num_edges <= plain.graph.num_edges
        assert cleaned_report.n50 >= plain_report.n50

    def test_simplify_noop_on_clean_reads(self, small_case):
        _, reads = small_case
        plain = assemble_with_pim(reads, k=13)
        simplified = assemble_with_pim(reads, k=13, simplify=True)
        assert sorted(str(c.sequence) for c in plain.contigs) == sorted(
            str(c.sequence) for c in simplified.contigs
        )


class TestResilientPipeline:
    def test_no_policy_means_no_report(self, small_case):
        _, reads = small_case
        result = assemble_with_pim(reads, k=13)
        assert result.resilience is None

    def test_clean_run_report_is_clean_but_charged(self, small_case):
        """Without faults the report shows zero events but real
        verification overhead — protection is never free."""
        _, reads = small_case
        result = assemble_with_pim(reads, k=13, resilience="detect")
        report = result.resilience
        assert report is not None and report.clean
        assert report.totals.detected == 0
        assert report.totals.verified_ops > 0
        assert report.totals.verify_time_ns > 0
        assert report.totals.scrubbed_rows > 0
        assert set(report.stages) == {"hashmap", "debruijn", "traverse"}

    def test_protected_run_recovers_baseline_contigs(self):
        """The tentpole guarantee at 15% variation: detect-retry-remap
        reproduces the fault-free contigs bit-identically, policy off
        does not."""
        from repro.assembly.pipeline import _sized_device
        from repro.core.faults import FaultModel

        reference = synthetic_chromosome(500, seed=700)
        sim = ReadSimulator(read_length=80, seed=701)
        reads = sim.sample(reference, sim.reads_for_coverage(500, 8))

        def contigs(variation, policy):
            pim = _sized_device(reads, 9)
            if variation:
                pim.controller.faults = FaultModel.from_variation(
                    variation, seed=702
                )
            result = PimPipeline(
                pim, k=9, min_count=2, resilience=policy
            ).run(reads)
            return result, sorted(str(c.sequence) for c in result.contigs)

        _, baseline = contigs(0.0, None)
        _, off = contigs(15.0, "off")
        protected_result, protected = contigs(15.0, "detect-retry-remap")

        assert off != baseline
        assert protected == baseline
        report = protected_result.resilience
        assert report.totals.corrected > 0
        assert report.totals.verify_time_ns > 0
        hashmap = report.stages["hashmap"]
        assert hashmap.detected > 0 and hashmap.uncorrected == 0
