"""Greedy overlap scaffolding (the stage-3 extension)."""

import pytest

from repro.assembly.contigs import Contig
from repro.assembly.scaffold import greedy_scaffold, scaffold_n50
from repro.genome.reference import synthetic_chromosome
from repro.genome.sequence import DnaSequence


def contig(text, name):
    return Contig(name=name, sequence=DnaSequence(text), edge_count=1)


class TestGreedyScaffold:
    def test_merges_overlapping_pair(self):
        ref = synthetic_chromosome(200, seed=3)
        a = contig(str(ref[:120]), "a")
        b = contig(str(ref[90:200]), "b")
        scaffolds = greedy_scaffold([a, b], min_overlap=20)
        assert len(scaffolds) == 1
        assert str(scaffolds[0].sequence) == str(ref)
        assert set(scaffolds[0].members) == {"a", "b"}

    def test_chains_three_contigs(self):
        ref = synthetic_chromosome(300, seed=4)
        pieces = [
            contig(str(ref[0:120]), "a"),
            contig(str(ref[100:220]), "b"),
            contig(str(ref[200:300]), "c"),
        ]
        scaffolds = greedy_scaffold(pieces, min_overlap=15)
        assert len(scaffolds) == 1
        assert str(scaffolds[0].sequence) == str(ref)

    def test_disjoint_contigs_stay_separate(self):
        a = contig("A" * 30 + "CGT" * 10, "a")
        b = contig("G" * 30 + "TAC" * 10, "b")
        scaffolds = greedy_scaffold([a, b], min_overlap=20)
        assert len(scaffolds) == 2

    def test_short_overlap_below_threshold_ignored(self):
        ref = synthetic_chromosome(100, seed=5)
        a = contig(str(ref[:55]), "a")
        b = contig(str(ref[50:]), "b")  # 5-base overlap only
        scaffolds = greedy_scaffold([a, b], min_overlap=20)
        assert len(scaffolds) == 2

    def test_longest_first_ordering(self):
        ref = synthetic_chromosome(400, seed=6)
        pieces = [
            contig(str(ref[0:150]), "a"),
            contig(str(ref[200:260]), "b"),
        ]
        scaffolds = greedy_scaffold(pieces, min_overlap=25)
        lengths = [len(s) for s in scaffolds]
        assert lengths == sorted(lengths, reverse=True)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            greedy_scaffold([], min_overlap=0)
        with pytest.raises(ValueError):
            greedy_scaffold([], min_overlap=30, max_overlap=10)

    def test_empty_input(self):
        assert greedy_scaffold([contig("ACGTACGTACGTACGTACGTA", "x")]) != []


class TestOverlapProperty:
    from hypothesis import given, settings, strategies as st

    dna = st.text(alphabet="ACGT", min_size=30, max_size=120)

    @given(text=dna, overlap=st.integers(min_value=12, max_value=25))
    @settings(max_examples=30, deadline=None)
    def test_constructed_overlaps_always_merge(self, text, overlap):
        """Splitting any sequence with a known overlap always re-merges
        consistently: one scaffold, formed by the *longest* exact
        suffix/prefix overlap (which on repetitive flanks may exceed
        the constructed one — greedy overlap merging is ambiguous
        there, so the reconstruction only equals the input when the
        longest overlap is the constructed one)."""
        if len(text) < overlap + 10:
            return
        cut = len(text) // 2
        if cut + overlap > len(text):
            return  # the right piece is shorter than the overlap
        left = text[: cut + overlap]
        right = text[cut:]
        longest = 0
        for t in range(min(len(left), len(right)), overlap - 1, -1):
            if left[-t:] == right[:t]:
                longest = t
                break
        assert longest >= overlap  # the constructed overlap exists
        scaffolds = greedy_scaffold(
            [contig(left, "l"), contig(right, "r")], min_overlap=overlap
        )
        assert len(scaffolds) == 1
        assert str(scaffolds[0].sequence) == left + right[longest:]
        if longest == overlap:
            assert str(scaffolds[0].sequence) == text


class TestScaffoldN50:
    def test_known_value(self):
        ref = synthetic_chromosome(100, seed=7)
        scaffolds = greedy_scaffold(
            [contig(str(ref[:60]), "a"), contig(str(ref[55:]), "b")],
            min_overlap=5,
        )
        assert scaffold_n50(scaffolds) == 100

    def test_empty(self):
        assert scaffold_n50([]) == 0
