"""The Hashmap procedure: PIM table vs the software golden model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.assembly.hashmap import PimKmerCounter, SoftwareKmerCounter
from repro.core import PimAssembler
from repro.genome.kmer import pack_kmer
from repro.genome.reference import synthetic_chromosome
from repro.genome.reads import ReadSimulator
from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", min_size=12, max_size=120)


class TestSoftwareCounter:
    def test_counts_sequence(self):
        counter = SoftwareKmerCounter(3)
        counter.add_sequence(DnaSequence("ACGACG"))
        counts = counter.counts()
        assert counts[pack_kmer(DnaSequence("ACG"))] == 2
        assert len(counter) == 3  # ACG, CGA, GAC

    def test_counts_reads(self):
        ref = synthetic_chromosome(500, seed=1)
        reads = ReadSimulator(read_length=50, seed=2).sample(ref, 10)
        counter = SoftwareKmerCounter(9)
        counter.add_reads(reads)
        assert sum(counter.counts().values()) == 10 * (50 - 9 + 1)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SoftwareKmerCounter(0)


class TestPimCounterEquivalence:
    def test_matches_software_on_genome(self, medium_pim):
        ref = synthetic_chromosome(600, seed=4)
        pim_counter = PimKmerCounter(medium_pim, 11)
        pim_counter.add_sequence(ref)
        software = SoftwareKmerCounter(11)
        software.add_sequence(ref)
        assert pim_counter.counts() == software.counts()

    @given(text=dna)
    @settings(max_examples=20, deadline=None)
    def test_matches_software_property(self, text):
        pim = PimAssembler.small(subarrays=4, rows=128, cols=32)
        seq = DnaSequence(text)
        k = 7
        pim_counter = PimKmerCounter(pim, k)
        pim_counter.add_sequence(seq)
        software = SoftwareKmerCounter(k)
        software.add_sequence(seq)
        assert pim_counter.counts() == software.counts()

    def test_kmers_stored_in_memory_verbatim(self, medium_pim):
        """The stored rows themselves decode back to the k-mers."""
        counter = PimKmerCounter(medium_pim, 9)
        seq = synthetic_chromosome(100, seed=5)
        counter.add_sequence(seq)
        seen = set()
        for partition in range(counter.partitions):
            occupied = counter.occupancy[partition]
            for slot in range(occupied):
                seen.add(str(counter.stored_kmer(partition, slot)))
        expected = {str(k) for k in seq.kmers(9)}
        assert seen == expected


class TestPimCounterMechanics:
    def test_rejects_wrong_kmer_length(self, small_pim):
        counter = PimKmerCounter(small_pim, 5)
        with pytest.raises(ValueError):
            counter.add_kmer(DnaSequence("ACG"))

    def test_rejects_kmer_wider_than_row(self):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=16)
        with pytest.raises(ValueError):
            PimKmerCounter(pim, 20)  # 40 bit lines > 16 columns

    def test_table_overflow_raises(self):
        pim = PimAssembler.small(subarrays=1, rows=16, cols=16)
        counter = PimKmerCounter(pim, 4)
        capacity = counter.layout.kmer_rows
        ref = synthetic_chromosome(2000, seed=6)
        with pytest.raises(MemoryError):
            counter.add_sequence(ref)
        assert len(counter) == capacity

    def test_counter_saturates_at_field_max(self):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=16)
        counter = PimKmerCounter(pim, 4)
        kmer = DnaSequence("ACGT")
        for _ in range(counter.layout.counter_max + 10):
            counter.add_kmer(kmer)
        assert counter.counts()[pack_kmer(kmer)] == counter.layout.counter_max

    def test_non_saturating_mode_raises(self):
        pim = PimAssembler.small(subarrays=1, rows=64, cols=16)
        counter = PimKmerCounter(pim, 4, saturating=False)
        kmer = DnaSequence("ACGT")
        with pytest.raises(OverflowError):
            for _ in range(counter.layout.counter_max + 1):
                counter.add_kmer(kmer)

    def test_partitions_spread_load(self, medium_pim):
        counter = PimKmerCounter(medium_pim, 9)
        counter.add_sequence(synthetic_chromosome(800, seed=7))
        occupied = counter.occupancy
        assert sum(1 for o in occupied if o > 0) >= counter.partitions // 2

    def test_commands_are_charged(self, medium_pim):
        counter = PimKmerCounter(medium_pim, 9)
        counter.add_sequence(synthetic_chromosome(120, seed=8))
        totals = medium_pim.stats.totals()
        assert totals.commands["MEM_WR"] > 0  # temp inserts
        assert totals.commands["AAP2"] > 0  # comparisons
        assert totals.commands["DPU"] > 0  # match decisions + increments
