"""Graph simplification: tip clipping and bubble popping."""

import pytest

from repro.assembly import assemble, evaluate_assembly
from repro.assembly.contigs import assemble_contigs
from repro.assembly.debruijn import DeBruijnGraph
from repro.assembly.hashmap import SoftwareKmerCounter
from repro.assembly.simplify import clip_tips, pop_bubbles, simplify_graph
from repro.genome import ReadSimulator, synthetic_chromosome
from repro.genome.sequence import DnaSequence


def counted_graph(sequences, k, weights=None):
    """Graph with controllable per-sequence k-mer weights."""
    counter = SoftwareKmerCounter(k)
    weights = weights or [1] * len(sequences)
    counts = {}
    for seq, weight in zip(sequences, weights):
        sub = SoftwareKmerCounter(k)
        sub.add_sequence(DnaSequence(seq))
        for key, value in sub.counts().items():
            counts[key] = counts.get(key, 0) + value * weight
    return DeBruijnGraph.from_counts(counts, k=k)


class TestClipTips:
    def test_clips_weak_side_branch(self):
        # strong trunk + a 2-edge dead-end branch off one junction
        trunk = "ACGTTGCAGGAT"
        tip = "ACGTTGAC"  # shares ACGTTG then diverges and dead-ends
        graph = counted_graph([trunk, tip], k=5, weights=[10, 1])
        cleaned, stats = clip_tips(graph, max_tip_length=6)
        assert stats.tips_clipped >= 1
        assert cleaned.num_edges < graph.num_edges
        contigs = assemble_contigs(cleaned, mode="unitig")
        assert any(trunk in str(c.sequence) for c in contigs)

    def test_strong_tip_survives(self):
        trunk = "ACGTTGCAGGAT"
        tip = "ACGTTGAC"
        graph = counted_graph([trunk, tip], k=5, weights=[1, 10])
        cleaned, stats = clip_tips(graph, max_tip_length=6)
        # the "tip" is stronger than the trunk: not clipped
        tip_kmers = set(SoftwareKmerCounter(5)._counts)  # noqa: unused
        assert stats.tip_edges_removed < graph.num_edges

    def test_long_branches_untouched(self):
        a = "ACGTTGCAGGATCCTTAAGG"
        b = "ACGTTGACCATGGTACCGGT"
        graph = counted_graph([a, b], k=5, weights=[10, 1])
        cleaned, stats = clip_tips(graph, max_tip_length=3)
        assert stats.tips_clipped == 0
        assert cleaned.num_edges == graph.num_edges

    def test_clean_linear_graph_untouched(self):
        graph = counted_graph(["ACGTTGCAGGATCC"], k=5)
        cleaned, stats = clip_tips(graph)
        assert stats.edges_removed == 0
        assert cleaned.num_edges == graph.num_edges

    def test_rejects_bad_parameters(self):
        graph = counted_graph(["ACGTTGCA"], k=5)
        with pytest.raises(ValueError):
            clip_tips(graph, max_tip_length=0)
        with pytest.raises(ValueError):
            clip_tips(graph, coverage_ratio=0.0)


class TestPopBubbles:
    def test_pops_weak_alternative(self):
        # same start/end, one base differs in the middle
        strong = "ACGTTGCAGGATCC"
        weak = "ACGTTGCTGGATCC"
        graph = counted_graph([strong, weak], k=5, weights=[10, 1])
        cleaned, stats = pop_bubbles(graph, max_bubble_length=12)
        assert stats.bubbles_popped >= 1
        contigs = assemble_contigs(cleaned, mode="unitig")
        spelled = {str(c.sequence) for c in contigs}
        assert any(strong in s for s in spelled)
        assert not any(weak in s for s in spelled)

    def test_keeps_the_stronger_path(self):
        strong = "ACGTTGCAGGATCC"
        weak = "ACGTTGCTGGATCC"
        graph = counted_graph([strong, weak], k=5, weights=[1, 10])
        cleaned, _ = pop_bubbles(graph, max_bubble_length=12)
        contigs = assemble_contigs(cleaned, mode="unitig")
        spelled = {str(c.sequence) for c in contigs}
        assert any(weak in s for s in spelled)

    def test_linear_graph_untouched(self):
        graph = counted_graph(["ACGTTGCAGGATCC"], k=5)
        cleaned, stats = pop_bubbles(graph)
        assert stats.edges_removed == 0

    def test_rejects_bad_length(self):
        graph = counted_graph(["ACGTTGCA"], k=5)
        with pytest.raises(ValueError):
            pop_bubbles(graph, max_bubble_length=0)


class TestSimplifyPipeline:
    def test_improves_noisy_assembly(self):
        reference = synthetic_chromosome(900, seed=801)
        sim = ReadSimulator(read_length=70, seed=802, error_rate=0.008)
        reads = sim.sample(reference, sim.reads_for_coverage(900, 30))

        counter = SoftwareKmerCounter(15)
        counter.add_reads(reads)
        raw_graph = DeBruijnGraph.from_counts(counter.counts(), k=15)
        cleaned, stats = simplify_graph(raw_graph)

        raw_report = evaluate_assembly(
            assemble_contigs(raw_graph, mode="unitig"), reference
        )
        cleaned_report = evaluate_assembly(
            [
                c
                for c in assemble_contigs(cleaned, mode="unitig")
                if len(c) >= 2 * 15
            ],
            reference,
        )
        assert stats.edges_removed > 0
        assert cleaned_report.n50 >= raw_report.n50

    def test_stable_on_clean_graph(self):
        reference = synthetic_chromosome(600, seed=803)
        result = assemble(
            ReadSimulator(read_length=60, seed=804).sample(reference, 300),
            k=17,
        )
        cleaned, stats = simplify_graph(result.graph)
        assert stats.edges_removed == 0
        assert cleaned.num_edges == result.graph.num_edges

    def test_rejects_bad_rounds(self):
        graph = counted_graph(["ACGTTGCA"], k=5)
        with pytest.raises(ValueError):
            simplify_graph(graph, rounds=0)
