"""Spectral read error correction."""

import pytest

from repro.assembly import assemble, evaluate_assembly
from repro.assembly.correction import SpectralCorrector, correct_reads
from repro.genome import ReadSimulator, synthetic_chromosome
from repro.genome.reads import Read
from repro.genome.sequence import DnaSequence


@pytest.fixture(scope="module")
def noisy_case():
    reference = synthetic_chromosome(1000, seed=501)
    sim = ReadSimulator(read_length=80, seed=502, error_rate=0.005)
    reads = sim.sample(reference, sim.reads_for_coverage(1000, 35))
    return reference, reads


class TestSpectrum:
    def test_solid_kmers_from_clean_reads(self):
        reference = synthetic_chromosome(400, seed=503)
        sim = ReadSimulator(read_length=60, seed=504)
        reads = sim.sample(reference, sim.reads_for_coverage(400, 20))
        corrector = SpectralCorrector(k=15, solid_threshold=3)
        solid = corrector.build_spectrum(reads)
        # most genomic k-mers are deeply covered -> solid
        assert len(solid) > 0.8 * (400 - 15 + 1)

    def test_singleton_errors_are_weak(self, noisy_case):
        _, reads = noisy_case
        corrector = SpectralCorrector(k=15, solid_threshold=3)
        solid = corrector.build_spectrum(reads)
        # inject an obviously fake k-mer: it must not be solid
        fake = reads[0].sequence.codes.copy()
        fake[:15] = (fake[:15] + 1) % 4
        from repro.genome.kmer import packed_kmers_array

        packed = int(packed_kmers_array(DnaSequence(fake[:15]), 15)[0])
        assert packed not in solid


class TestCorrection:
    def test_reduces_mismatches_against_reference(self, noisy_case):
        reference, reads = noisy_case

        def mismatches(read_list):
            total = 0
            for read in read_list:
                window = reference.codes[read.start : read.start + len(read)]
                total += int((read.sequence.codes != window).sum())
            return total

        before = mismatches(reads)
        result = correct_reads(reads, k=15, solid_threshold=3)
        after = mismatches(result.reads)
        assert before > 0
        assert after < 0.35 * before
        assert result.corrected_bases >= before - after

    def test_clean_reads_untouched(self):
        reference = synthetic_chromosome(500, seed=505)
        sim = ReadSimulator(read_length=60, seed=506)
        reads = sim.sample(reference, sim.reads_for_coverage(500, 25))
        result = correct_reads(reads, k=15)
        assert result.corrected_reads == 0
        for original, corrected in zip(reads, result.reads):
            assert str(original.sequence) == str(corrected.sequence)

    def test_improves_assembly(self, noisy_case):
        reference, reads = noisy_case
        raw = evaluate_assembly(assemble(reads, k=17).contigs, reference)
        corrected = correct_reads(reads, k=15, solid_threshold=3)
        fixed = evaluate_assembly(
            assemble(corrected.reads, k=17).contigs, reference
        )
        assert fixed.n50 >= raw.n50
        assert fixed.num_contigs <= raw.num_contigs

    def test_reports_lookup_work(self, noisy_case):
        _, reads = noisy_case
        result = correct_reads(reads, k=15)
        # at least one lookup per read k-mer position
        min_lookups = sum(r.sequence.kmer_count(15) for r in reads)
        assert result.kmer_lookups >= min_lookups

    def test_no_unique_fix_leaves_read(self):
        corrector = SpectralCorrector(k=5, solid_threshold=1)
        # spectrum from an unrelated sequence: nothing fixable
        solid = corrector.build_spectrum(
            [Read("x", DnaSequence("GGGGGGGGGG"), start=0)]
        )
        read = Read("y", DnaSequence("ACGTACGTAC"), start=0)
        fixed, subs = corrector.correct_read(read, solid)
        assert subs == 0
        assert str(fixed.sequence) == "ACGTACGTAC"


class TestIdempotence:
    def test_correcting_corrected_reads_changes_nothing(self, noisy_case):
        """Spectral correction must be a fixed point: a second pass
        over already-corrected reads makes no further substitutions."""
        _, reads = noisy_case
        first = correct_reads(reads, k=15, solid_threshold=3)
        second = correct_reads(first.reads, k=15, solid_threshold=3)
        assert second.corrected_bases == 0
        for a, b in zip(first.reads, second.reads):
            assert str(a.sequence) == str(b.sequence)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SpectralCorrector(k=1)
        with pytest.raises(ValueError):
            SpectralCorrector(k=15, solid_threshold=0)
        with pytest.raises(ValueError):
            SpectralCorrector(k=15, max_corrections=0)
