"""Contig spelling and extraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.assembly.contigs import (
    assemble_contigs,
    contigs_from_paths,
    spell_path,
)
from repro.assembly.debruijn import build_graph_from_sequences
from repro.assembly.euler import eulerian_path, unitigs
from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", min_size=8, max_size=80)


def graph_of(text, k=4):
    return build_graph_from_sequences([DnaSequence(text)], k)


class TestSpellPath:
    def test_spells_original_sequence(self):
        text = "ACGTTGCA"
        g = graph_of(text, 4)
        trail = eulerian_path(g)
        assert str(spell_path(g, trail)) == text

    @given(dna)
    @settings(max_examples=30, deadline=None)
    def test_node_unique_sequences_reconstruct(self, text):
        """When every (k-1)-mer is distinct the Euler trail is unique
        and spelling it recovers the input exactly."""
        k = 5
        seq = DnaSequence(text)
        node_mers = [str(m) for m in seq.kmers(k - 1)]
        if len(set(node_mers)) != len(node_mers):
            return  # a node repeats: multiple trails may exist
        g = graph_of(text, k)
        trail = eulerian_path(g)
        assert str(spell_path(g, trail)) == text

    @given(dna)
    @settings(max_examples=30, deadline=None)
    def test_spelled_trail_preserves_kmer_multiset(self, text):
        """Any Euler trail spells a sequence with exactly the input's
        set of distinct k-mers (the weaker, always-true invariant)."""
        k = 5
        seq = DnaSequence(text)
        kmers = {str(m) for m in seq.kmers(k)}
        if len(kmers) != seq.kmer_count(k):
            return  # duplicate k-mers collapse; trail may not exist
        g = graph_of(text, k)
        components = g.connected_components()
        if len(components) != 1:
            return
        from repro.assembly.euler import has_eulerian_path

        if not has_eulerian_path(g, components[0]):
            return
        trail = eulerian_path(g)
        spelled = spell_path(g, trail)
        assert {str(m) for m in spelled.kmers(k)} == kmers
        assert len(spelled) == len(seq)

    def test_rejects_empty_path(self):
        g = graph_of("ACGT", 3)
        with pytest.raises(ValueError):
            spell_path(g, [])

    def test_rejects_disconnected_edges(self):
        g = graph_of("ACGTAGGC", 3)
        edges = list(g.edges())
        disconnected = [edges[0], edges[-1]]
        if disconnected[0].target != disconnected[1].source:
            with pytest.raises(ValueError):
                spell_path(g, disconnected)


class TestContigExtraction:
    def test_unitig_mode_covers_every_kmer(self):
        text = "ACGTACGTTGCAGG"
        k = 4
        g = graph_of(text, k)
        contigs = assemble_contigs(g, mode="unitig")
        total_kmers = sum(c.edge_count for c in contigs)
        assert total_kmers == g.num_edges

    def test_euler_mode_on_clean_graph(self):
        text = "ACGTTGCA"
        g = graph_of(text, 4)
        contigs = assemble_contigs(g, mode="euler")
        assert len(contigs) == 1
        assert str(contigs[0].sequence) == text

    def test_unknown_mode(self):
        g = graph_of("ACGT", 3)
        with pytest.raises(ValueError):
            assemble_contigs(g, mode="greedy")

    def test_min_length_filter(self):
        g = graph_of("ACGTACGTTGCAGG", 4)
        all_contigs = assemble_contigs(g, mode="unitig")
        filtered = assemble_contigs(g, mode="unitig", min_length=6)
        assert all(len(c) >= 6 for c in filtered)
        assert len(filtered) <= len(all_contigs)

    def test_contigs_sorted_longest_first(self):
        g = graph_of("ACGTACGTTGCAGGAATTCC", 4)
        contigs = assemble_contigs(g, mode="unitig")
        lengths = [len(c) for c in contigs]
        assert lengths == sorted(lengths, reverse=True)

    def test_contig_names_are_rank_ordered(self):
        g = graph_of("ACGTACGTTGCAGG", 4)
        contigs = assemble_contigs(g, mode="unitig")
        assert [c.name for c in contigs] == [
            f"contig{i}" for i in range(len(contigs))
        ]

    def test_contigs_from_paths_skips_empty(self):
        g = graph_of("ACGT", 3)
        paths = unitigs(g) + [[]]
        contigs = contigs_from_paths(g, paths)
        assert all(c.edge_count > 0 for c in contigs)
