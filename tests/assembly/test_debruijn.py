"""De Bruijn graph construction and structure queries."""

import pytest

from repro.assembly.debruijn import DeBruijnGraph, build_graph_from_sequences
from repro.genome.kmer import count_kmers, pack_kmer
from repro.genome.sequence import DnaSequence


def graph_of(text, k, min_count=1):
    return build_graph_from_sequences([DnaSequence(text)], k, min_count)


class TestConstruction:
    def test_split_kmer(self):
        g = DeBruijnGraph(k=4)
        kmer = DnaSequence("ACGT")
        prefix, suffix = g.split_kmer(pack_kmer(kmer))
        assert g.node_sequence(prefix) == DnaSequence("ACG")
        assert g.node_sequence(suffix) == DnaSequence("CGT")

    def test_linear_sequence(self):
        g = graph_of("ACGTAC", 3)
        # 4 distinct 3-mers -> 4 edges
        assert g.num_edges == 4
        assert g.num_nodes == len(set(str(DnaSequence("ACGTAC"))[i:i+2]
                                       for i in range(5)))

    def test_from_counts_respects_min_count(self):
        # ACG occurs twice; the k-mers of the "T" tail occur once.
        counts = count_kmers(DnaSequence("ACGACGT"), 3)
        full = DeBruijnGraph.from_counts(counts, k=3)
        filtered = DeBruijnGraph.from_counts(counts, k=3, min_count=2)
        assert filtered.num_edges < full.num_edges
        assert all(e.count >= 2 for e in filtered.edges())

    def test_from_counts_rejects_bad_min_count(self):
        with pytest.raises(ValueError):
            DeBruijnGraph.from_counts({}, k=3, min_count=0)

    def test_rejects_k_below_two(self):
        with pytest.raises(ValueError):
            DeBruijnGraph(k=1)

    def test_edge_carries_count(self):
        g = graph_of("ACGACG", 3)
        acg = next(e for e in g.edges() if e.kmer == pack_kmer(DnaSequence("ACG")))
        assert acg.count == 2

    def test_deterministic_edge_order(self):
        counts = count_kmers(DnaSequence("ACGTACGTT"), 3)
        a = DeBruijnGraph.from_counts(counts, k=3)
        b = DeBruijnGraph.from_counts(dict(reversed(list(counts.items()))), k=3)
        assert [e.kmer for e in a.edges()] == [e.kmer for e in b.edges()]


class TestDegrees:
    def test_degrees_of_linear_path(self):
        g = graph_of("ACGT", 3)  # ACG -> CGT : AC->CG->GT
        start = pack_kmer(DnaSequence("AC"))
        middle = pack_kmer(DnaSequence("CG"))
        end = pack_kmer(DnaSequence("GT"))
        assert g.out_degree(start) == 1 and g.in_degree(start) == 0
        assert g.out_degree(middle) == 1 and g.in_degree(middle) == 1
        assert g.out_degree(end) == 0 and g.in_degree(end) == 1

    def test_degree_imbalance_endpoints(self):
        g = graph_of("ACGTT", 3)
        imbalance = g.degree_imbalance()
        assert sorted(imbalance.values()) == [-1, 1]

    def test_balanced_cycle_has_no_imbalance(self):
        # ACGAC: 3-mers ACG CGA GAC -> cycle AC->CG->GA->AC
        g = graph_of("ACGAC", 3)
        assert g.degree_imbalance() == {}

    def test_is_branching(self):
        g = graph_of("AACAG", 3)  # AA -> AC and AA -> AG? no: AAC ACA CAG
        aa = pack_kmer(DnaSequence("AA"))
        ac = pack_kmer(DnaSequence("AC"))
        assert g.is_branching(aa)  # in 0 / out 1
        assert not g.is_branching(ac)  # in 1 / out 1


class TestComponents:
    def test_single_component(self):
        g = graph_of("ACGTACGT", 3)
        assert len(g.connected_components()) == 1

    def test_two_components(self):
        g = build_graph_from_sequences(
            [DnaSequence("AAAA"), DnaSequence("CCCC")], 3
        )
        assert len(g.connected_components()) == 2

    def test_components_partition_nodes(self):
        g = build_graph_from_sequences(
            [DnaSequence("ACGTAC"), DnaSequence("GGTTGG")], 3
        )
        components = g.connected_components()
        all_nodes = set()
        for c in components:
            assert not (all_nodes & c)
            all_nodes |= c
        assert all_nodes == set(g.nodes())
