"""The software golden-model assembler."""

import pytest

from repro.assembly import assemble, evaluate_assembly
from repro.genome import ReadSimulator, synthetic_chromosome
from repro.genome.sequence import DnaSequence


class TestSoftwareAssembler:
    def test_accepts_raw_sequences(self):
        result = assemble([DnaSequence("ACGTACGTTGCA")], k=5)
        assert result.contigs
        assert result.kmer_table_size == 8

    def test_perfect_assembly_from_high_coverage(self):
        reference = synthetic_chromosome(1500, seed=51)
        sim = ReadSimulator(read_length=70, seed=52)
        reads = sim.sample(reference, sim.reads_for_coverage(1500, 30))
        result = assemble(reads, k=21)
        report = evaluate_assembly(result.contigs, reference)
        assert report.genome_fraction > 0.97
        assert report.misassemblies == 0

    def test_low_coverage_fragments(self):
        """Coverage gaps split the assembly into more contigs."""
        reference = synthetic_chromosome(2000, seed=53)
        sim = ReadSimulator(read_length=50, seed=54)
        high = assemble(
            sim.sample(reference, sim.reads_for_coverage(2000, 30)), k=17
        )
        low = assemble(
            sim.sample(reference, sim.reads_for_coverage(2000, 2)), k=17
        )
        assert len(low.contigs) > len(high.contigs)

    def test_min_count_filters_noise(self):
        reference = synthetic_chromosome(800, seed=55)
        sim = ReadSimulator(read_length=60, seed=56, error_rate=0.01)
        reads = sim.sample(reference, sim.reads_for_coverage(800, 30))
        noisy = assemble(reads, k=15, min_count=1)
        cleaned = assemble(reads, k=15, min_count=3)
        noisy_report = evaluate_assembly(noisy.contigs, reference)
        cleaned_report = evaluate_assembly(cleaned.contigs, reference)
        assert cleaned_report.n50 > noisy_report.n50

    def test_euler_mode(self):
        reference = synthetic_chromosome(300, seed=57, repeats=None)
        sim = ReadSimulator(read_length=60, seed=58)
        reads = sim.sample(reference, sim.reads_for_coverage(300, 25))
        result = assemble(reads, k=15, mode="euler")
        report = evaluate_assembly(result.contigs, reference)
        assert report.genome_fraction > 0.9

    def test_graph_exposed(self):
        result = assemble([DnaSequence("ACGTACGT")], k=4)
        assert result.graph.num_edges == result.kmer_table_size
