"""Assembly metrics: N50, genome fraction, misassemblies."""

import pytest

from repro.assembly.contigs import Contig
from repro.assembly.metrics import (
    evaluate_assembly,
    genome_fraction,
    largest_contig,
    misassembled_contigs,
    n50,
    nx_length,
    total_length,
)
from repro.genome.sequence import DnaSequence


def contig(text, name="c"):
    return Contig(name=name, sequence=DnaSequence(text), edge_count=1)


REF = DnaSequence("ACGTACGTTGCAGGAATTCCGGATCC")


class TestLengthStats:
    def test_total_length(self):
        assert total_length([contig("ACGT"), contig("AA")]) == 6

    def test_n50_known_case(self):
        # lengths 8, 4, 2: cumulative 8 >= 7 (half of 14) -> N50 = 8
        contigs = [contig("A" * 8), contig("C" * 4), contig("G" * 2)]
        assert n50(contigs) == 8

    def test_n50_balanced(self):
        contigs = [contig("A" * 5), contig("C" * 5)]
        assert n50(contigs) == 5

    def test_nx_levels(self):
        contigs = [contig("A" * 10), contig("C" * 5), contig("G" * 5)]
        assert nx_length(contigs, 0.5) == 10
        assert nx_length(contigs, 0.9) == 5

    def test_nx_bounds(self):
        with pytest.raises(ValueError):
            nx_length([], 0.0)

    def test_empty(self):
        assert n50([]) == 0
        assert largest_contig([]) == 0
        assert total_length([]) == 0


class TestGenomeFraction:
    def test_full_cover(self):
        assert genome_fraction([contig(str(REF))], REF) == 1.0

    def test_partial_cover(self):
        half = contig(str(REF[:13]))
        assert genome_fraction([half], REF) == pytest.approx(0.5)

    def test_overlapping_contigs_not_double_counted(self):
        a = contig(str(REF[:15]))
        b = contig(str(REF[5:20]))
        assert genome_fraction([a, b], REF) == pytest.approx(20 / len(REF))

    def test_reverse_strand_counts(self):
        rc = contig(str(REF[:10].reverse_complement()))
        assert genome_fraction([rc], REF) == pytest.approx(10 / len(REF))
        assert genome_fraction([rc], REF, both_strands=False) == 0.0

    def test_rejects_empty_reference(self):
        with pytest.raises(ValueError):
            genome_fraction([], DnaSequence(""))


class TestMisassemblies:
    def test_exact_contig_is_clean(self):
        assert misassembled_contigs([contig(str(REF[3:14]))], REF) == []

    def test_chimeric_contig_flagged(self):
        chimera = contig(str(REF[:8]) + str(REF[15:23]))
        assert len(misassembled_contigs([chimera], REF)) == 1

    def test_reverse_strand_is_clean(self):
        rc = contig(str(REF[2:12].reverse_complement()))
        assert misassembled_contigs([rc], REF) == []


class TestReport:
    def test_evaluate_assembly(self):
        report = evaluate_assembly([contig(str(REF))], REF)
        assert report.num_contigs == 1
        assert report.genome_fraction == 1.0
        assert report.misassemblies == 0
        assert report.n50 == len(REF)
        assert "N50" in str(report)
