"""Eulerian traversal: Hierholzer, Fleury, unitigs, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.assembly.debruijn import DeBruijnGraph, build_graph_from_sequences
from repro.assembly.euler import (
    degree_table,
    eulerian_path,
    eulerian_paths,
    find_start_node,
    fleury_path,
    has_eulerian_path,
    iter_path_nodes,
    path_edge_multiset,
    unitigs,
)
from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", min_size=6, max_size=60)


def graph_of(text, k=3):
    return build_graph_from_sequences([DnaSequence(text)], k)


def assert_valid_trail(graph, trail, component=None):
    """A trail must chain properly and use every edge exactly once."""
    for prev, nxt in zip(trail, trail[1:]):
        assert prev.target == nxt.source
    expected = {id(e) for node in (component or graph.nodes())
                for e in graph.out_edges(node)}
    assert {id(e) for e in trail} == expected


class TestFeasibility:
    def test_linear_sequence_has_trail(self):
        g = graph_of("ACGTT")
        component = g.connected_components()[0]
        assert has_eulerian_path(g, component)

    def test_infeasible_degrees(self):
        # Two sequences sharing nodes s.t. imbalance exceeds 1 at a node
        g = build_graph_from_sequences(
            [DnaSequence("AACG"), DnaSequence("AACT"), DnaSequence("AACC")], 3
        )
        component = g.connected_components()[0]
        assert not has_eulerian_path(g, component)

    def test_start_node_is_imbalanced_vertex(self):
        g = graph_of("ACGTT")
        component = g.connected_components()[0]
        start = find_start_node(g, component)
        assert g.out_degree(start) - g.in_degree(start) == 1


class TestHierholzer:
    @given(dna)
    @settings(max_examples=40, deadline=None)
    def test_trail_from_any_sequence(self, text):
        """A graph built from one sequence always admits a trail that
        uses every distinct k-mer exactly once."""
        g = graph_of(text, 4)
        components = g.connected_components()
        if len(components) != 1:
            return  # repeats can disconnect after dedup; skip
        if not has_eulerian_path(g, components[0]):
            return  # duplicate k-mers collapsed; trail may not exist
        trail = eulerian_path(g)
        assert_valid_trail(g, trail)

    def test_cycle_graph(self):
        g = graph_of("ACGAC")  # closed tour
        trail = eulerian_path(g)
        assert_valid_trail(g, trail)
        assert trail[0].source == trail[-1].target

    def test_rejects_multi_component(self):
        g = build_graph_from_sequences(
            [DnaSequence("AAAA"), DnaSequence("CCCC")], 3
        )
        with pytest.raises(ValueError):
            eulerian_path(g)

    def test_eulerian_paths_per_component(self):
        # node sets {AC, CG, GT} and {GG, GA, AA} are disjoint
        g = build_graph_from_sequences(
            [DnaSequence("ACGT"), DnaSequence("GGAA")], 3
        )
        trails = eulerian_paths(g)
        assert len(trails) == 2
        total_edges = sum(len(t) for t in trails)
        assert total_edges == g.num_edges

    def test_rejects_infeasible(self):
        g = build_graph_from_sequences(
            [DnaSequence("AACG"), DnaSequence("AACT"), DnaSequence("AACC")], 3
        )
        with pytest.raises(ValueError):
            eulerian_path(g, g.connected_components()[0])


class TestFleury:
    @given(dna)
    @settings(max_examples=20, deadline=None)
    def test_agrees_with_hierholzer_on_edge_multiset(self, text):
        g = graph_of(text, 4)
        components = g.connected_components()
        if len(components) != 1 or not has_eulerian_path(g, components[0]):
            return
        hier = eulerian_path(g)
        fleury = fleury_path(g)
        assert path_edge_multiset(hier) == path_edge_multiset(fleury)
        assert_valid_trail(g, fleury)

    def test_simple_known_graph(self):
        g = graph_of("ACGTT")
        trail = fleury_path(g)
        assert_valid_trail(g, trail)


class TestUnitigs:
    def test_every_edge_in_exactly_one_unitig(self):
        g = graph_of("ACGTACGTTGCA", 4)
        paths = unitigs(g)
        seen = [id(e) for p in paths for e in p]
        assert len(seen) == len(set(seen)) == g.num_edges

    def test_linear_graph_single_unitig(self):
        g = graph_of("ACGTTC", 3)
        paths = unitigs(g)
        assert len(paths) == 1
        assert len(paths[0]) == g.num_edges

    def test_branch_splits_unitigs(self):
        g = build_graph_from_sequences(
            [DnaSequence("AACGG"), DnaSequence("AACTT")], 3
        )
        paths = unitigs(g)
        assert len(paths) >= 2

    def test_isolated_cycle_is_captured(self):
        g = graph_of("ACGAC", 3)  # pure cycle, no branching nodes
        paths = unitigs(g)
        assert sum(len(p) for p in paths) == g.num_edges

    @given(dna)
    @settings(max_examples=30, deadline=None)
    def test_unitig_interior_nodes_are_simple(self, text):
        g = graph_of(text, 4)
        for path in unitigs(g):
            for edge in path[:-1]:
                interior = edge.target
                if interior != path[0].source:
                    assert not g.is_branching(interior)


class TestHelpers:
    def test_degree_table_matches_graph(self):
        g = graph_of("ACGTAC", 3)
        table = degree_table(g)
        for node, (din, dout) in table.items():
            assert din == g.in_degree(node)
            assert dout == g.out_degree(node)

    def test_iter_path_nodes(self):
        g = graph_of("ACGT", 3)
        trail = eulerian_path(g)
        nodes = list(iter_path_nodes(trail))
        assert len(nodes) == len(trail) + 1
        assert nodes[0] == trail[0].source
