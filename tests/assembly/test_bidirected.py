"""Bidirected (strand-aware) de Bruijn assembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.assembly import assemble, evaluate_assembly
from repro.assembly.bidirected import (
    BidirectedDeBruijnGraph,
    CanonicalKmerCounter,
    assemble_bidirected,
)
from repro.genome import ReadSimulator, synthetic_chromosome
from repro.genome.kmer import pack_kmer
from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", min_size=10, max_size=80)


class TestCanonicalCounter:
    @given(dna)
    @settings(max_examples=25, deadline=None)
    def test_strand_invariant(self, text):
        """A sequence and its reverse complement produce identical
        canonical tables."""
        k = 7
        fwd = CanonicalKmerCounter(k)
        fwd.add_sequence(DnaSequence(text))
        rev = CanonicalKmerCounter(k)
        rev.add_sequence(DnaSequence(text).reverse_complement())
        assert fwd.counts() == rev.counts()

    def test_palindrome_counted_once_per_occurrence(self):
        # ACGT is its own reverse complement
        counter = CanonicalKmerCounter(4)
        counter.add_sequence(DnaSequence("ACGTACGT"))
        counts = counter.counts()
        key = min(
            pack_kmer(DnaSequence("ACGT")),
            pack_kmer(DnaSequence("ACGT").reverse_complement()),
        )
        assert counts[key] == 2

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            CanonicalKmerCounter(0)


class TestGraph:
    def test_edge_count(self):
        counter = CanonicalKmerCounter(5)
        counter.add_sequence(DnaSequence("ACGTTGCA"))
        graph = BidirectedDeBruijnGraph.from_counts(counter.counts(), k=5)
        assert graph.num_edges == len(counter)

    def test_min_count_filter(self):
        counter = CanonicalKmerCounter(5)
        counter.add_sequence(DnaSequence("ACGTTACGTT"))
        graph = BidirectedDeBruijnGraph.from_counts(
            counter.counts(), k=5, min_count=2
        )
        assert all(e.count >= 2 for e in graph.edges())

    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            BidirectedDeBruijnGraph(k=1)

    def test_unitigs_consume_each_edge_once(self):
        counter = CanonicalKmerCounter(5)
        counter.add_sequence(DnaSequence("ACGTTGCAACGGT"))
        graph = BidirectedDeBruijnGraph.from_counts(counter.counts(), k=5)
        unitigs = graph.unitigs()
        total_edges = sum(len(u) - 5 + 1 for u in unitigs)
        assert total_edges == graph.num_edges


class TestPimCanonicalCounter:
    def test_matches_software_canonical_counter(self):
        from repro.assembly.bidirected import PimCanonicalKmerCounter
        from repro.core import PimAssembler

        ref = synthetic_chromosome(300, seed=425)
        pim = PimAssembler.small(subarrays=8, rows=256, cols=64)
        pim_counter = PimCanonicalKmerCounter(pim, 9)
        pim_counter.add_sequence(ref)
        software = CanonicalKmerCounter(9)
        software.add_sequence(ref)
        assert pim_counter.counts() == software.counts()

    def test_pim_backed_assembly_matches_software(self):
        from repro.core import PimAssembler

        ref = synthetic_chromosome(400, seed=426)
        sim = ReadSimulator(read_length=50, seed=427, sample_reverse=True)
        reads = sim.sample(ref, sim.reads_for_coverage(400, 20))
        pim = PimAssembler.small(subarrays=8, rows=512, cols=64)
        pim_contigs = assemble_bidirected(reads, k=15, pim=pim)
        sw_contigs = assemble_bidirected(reads, k=15)
        assert sorted(str(c.sequence) for c in pim_contigs) == sorted(
            str(c.sequence) for c in sw_contigs
        )


class TestAssembly:
    def test_forward_only_reads_match_standard_assembler_coverage(self):
        """On forward-only reads the bidirected assembler must cover
        the genome just as completely as the forward assembler."""
        ref = synthetic_chromosome(800, seed=410)
        sim = ReadSimulator(read_length=60, seed=411)
        reads = sim.sample(ref, sim.reads_for_coverage(800, 25))
        bi = assemble_bidirected(reads, k=17)
        fwd = assemble(reads, k=17)
        bi_report = evaluate_assembly(bi, ref)
        fwd_report = evaluate_assembly(fwd.contigs, ref)
        assert bi_report.misassemblies == 0
        assert bi_report.genome_fraction >= fwd_report.genome_fraction - 0.02

    def test_strand_mixed_reads_assemble_cleanly(self):
        """The headline capability: reads from both strands."""
        ref = synthetic_chromosome(1200, seed=412)
        sim = ReadSimulator(read_length=70, seed=413, sample_reverse=True)
        reads = sim.sample(ref, sim.reads_for_coverage(1200, 30))
        contigs = assemble_bidirected(reads, k=21)
        report = evaluate_assembly(contigs, ref)
        assert report.genome_fraction > 0.95
        assert report.misassemblies == 0

    def test_forward_assembler_duplicates_on_mixed_strands(self):
        """Motivation check: the forward-only pipeline assembles each
        strand separately on mixed-strand input (~2x total output);
        the bidirected model collapses the strands to ~1x."""
        ref = synthetic_chromosome(1200, seed=412)
        sim = ReadSimulator(read_length=70, seed=413, sample_reverse=True)
        reads = sim.sample(ref, sim.reads_for_coverage(1200, 30))
        bi = evaluate_assembly(assemble_bidirected(reads, k=21), ref)
        fwd = evaluate_assembly(assemble(reads, k=21).contigs, ref)
        assert fwd.total_length > 1.7 * len(ref)  # strand duplication
        assert bi.total_length < 1.3 * len(ref)  # strands collapsed

    def test_halved_per_strand_coverage_fragments_forward(self):
        """At low coverage, the forward pipeline sees only half the
        depth per strand and fragments more per unique base."""
        ref = synthetic_chromosome(1200, seed=412)
        sim = ReadSimulator(read_length=70, seed=413, sample_reverse=True)
        reads = sim.sample(ref, sim.reads_for_coverage(1200, 8))
        bi = evaluate_assembly(assemble_bidirected(reads, k=21), ref)
        fwd = evaluate_assembly(assemble(reads, k=21).contigs, ref)
        # forward emits ~2x the sequence for the same covered fraction
        assert fwd.total_length > 1.5 * bi.total_length
        assert bi.genome_fraction >= fwd.genome_fraction - 0.02

    def test_repeat_genome_stays_chimera_free(self):
        """The strict unitig rule must not cross real junctions even
        when competing edges were consumed by earlier walks."""
        from repro.genome.reference import RepeatSpec

        ref = synthetic_chromosome(
            2000,
            seed=640,
            repeats=RepeatSpec(
                dispersed_fraction=0.25, dispersed_element_length=150
            ),
        )
        sim = ReadSimulator(read_length=70, seed=641, sample_reverse=True)
        reads = sim.sample(ref, sim.reads_for_coverage(2000, 30))
        report = evaluate_assembly(assemble_bidirected(reads, k=21), ref)
        assert report.misassemblies == 0
        assert report.genome_fraction > 0.95

    def test_min_contig_length(self):
        ref = synthetic_chromosome(600, seed=414)
        sim = ReadSimulator(read_length=50, seed=415, sample_reverse=True)
        reads = sim.sample(ref, sim.reads_for_coverage(600, 20))
        contigs = assemble_bidirected(reads, k=15, min_contig_length=100)
        assert all(len(c) >= 100 for c in contigs)
