"""Mate-pair scaffolding: mapping, linking, chaining, gap estimation."""

import pytest

from repro.assembly.contigs import Contig
from repro.assembly.mate_scaffold import (
    ContigLink,
    build_scaffolds,
    link_contigs,
    scaffold_assembly,
)
from repro.genome.paired import PairedReadSimulator
from repro.genome.reference import synthetic_chromosome
from repro.genome.sequence import DnaSequence


@pytest.fixture(scope="module")
def reference():
    return synthetic_chromosome(3000, seed=301)


def fragmented_contigs(reference):
    """Two contigs cut from the reference with a 200 bp gap between."""
    a = Contig("contigA", reference[0:1200], edge_count=1)
    b = Contig("contigB", reference[1400:2600], edge_count=1)
    return [a, b]


@pytest.fixture(scope="module")
def pairs(reference):
    sim = PairedReadSimulator(
        read_length=60, insert_mean=500, insert_sd=30, seed=302
    )
    return sim.sample(reference, sim.pairs_for_coverage(len(reference), 30))


class TestLinking:
    def test_finds_the_gap_link(self, reference, pairs):
        contigs = fragmented_contigs(reference)
        links = link_contigs(contigs, pairs, insert_mean=500)
        assert links, "spanning pairs must produce a link"
        best = links[0]
        assert (best.first, best.second) == (0, 1)
        assert best.support >= 3

    def test_gap_estimate_near_truth(self, reference, pairs):
        contigs = fragmented_contigs(reference)
        links = link_contigs(contigs, pairs, insert_mean=500)
        assert links[0].gap == pytest.approx(200, abs=60)

    def test_min_links_filters(self, reference, pairs):
        contigs = fragmented_contigs(reference)
        strict = link_contigs(contigs, pairs, insert_mean=500, min_links=10_000)
        assert strict == []

    def test_same_contig_pairs_ignored(self, reference):
        contigs = [Contig("whole", reference, edge_count=1)]
        sim = PairedReadSimulator(read_length=60, insert_mean=400, seed=303)
        pairs = sim.sample(reference, 100)
        assert link_contigs(contigs, pairs, insert_mean=400) == []

    def test_validation(self, reference, pairs):
        contigs = fragmented_contigs(reference)
        with pytest.raises(ValueError):
            link_contigs(contigs, pairs, insert_mean=0)
        with pytest.raises(ValueError):
            link_contigs(contigs, pairs, insert_mean=500, min_links=0)


class TestChaining:
    def test_two_contig_scaffold(self, reference, pairs):
        contigs = fragmented_contigs(reference)
        scaffolds = scaffold_assembly(contigs, pairs, insert_mean=500)
        assert len(scaffolds) == 1
        s = scaffolds[0]
        assert s.members == ("contigA", "contigB")
        assert s.gap_bases > 0
        # scaffold spans roughly the full reference region
        assert len(s) == pytest.approx(2600, abs=80)

    def test_scaffold_sequence_layout(self, reference, pairs):
        contigs = fragmented_contigs(reference)
        scaffolds = scaffold_assembly(contigs, pairs, insert_mean=500)
        text = scaffolds[0].sequence_with_gaps
        assert text.startswith(str(contigs[0].sequence))
        assert text.endswith(str(contigs[1].sequence))
        middle = text[len(contigs[0].sequence) : -len(contigs[1].sequence)]
        assert set(middle) <= {"N"}

    def test_three_contig_chain(self, reference):
        contigs = [
            Contig("a", reference[0:900], edge_count=1),
            Contig("b", reference[1000:1900], edge_count=1),
            Contig("c", reference[2000:2900], edge_count=1),
        ]
        sim = PairedReadSimulator(
            read_length=60, insert_mean=400, insert_sd=25, seed=304
        )
        pairs = sim.sample(reference, sim.pairs_for_coverage(len(reference), 40))
        scaffolds = scaffold_assembly(contigs, pairs, insert_mean=400)
        assert len(scaffolds) == 1
        assert scaffolds[0].members == ("a", "b", "c")

    def test_unlinked_contigs_stay_singletons(self, reference):
        contigs = fragmented_contigs(reference)
        scaffolds = build_scaffolds(contigs, links=[])
        assert len(scaffolds) == 2
        assert all(len(s.members) == 1 for s in scaffolds)

    def test_conflicting_links_resolved_by_support(self, reference):
        contigs = [
            Contig("a", reference[0:500], edge_count=1),
            Contig("b", reference[600:1100], edge_count=1),
            Contig("c", reference[1200:1700], edge_count=1),
        ]
        links = [
            ContigLink(first=0, second=1, gap=100, support=20),
            ContigLink(first=0, second=2, gap=700, support=5),  # conflicts
        ]
        scaffolds = build_scaffolds(contigs, links)
        joined = next(s for s in scaffolds if len(s.members) == 2)
        assert joined.members == ("a", "b")
