"""Property tests: the bulk engine is bit-identical to the scalar one.

The equivalence contract (:mod:`repro.core.bitplane`) promises that for
a fixed seed both engines produce the same k-mer tables, contigs,
resilience event counts and per-mnemonic command counts — only the
modeled time (gang makespan vs serial sum) may differ.  These tests
exercise that contract over randomized read sets, seeds and device
shapes, including the mid-batch error paths.
"""

import numpy as np
import pytest

from repro.assembly.hashmap import PimKmerCounter
from repro.assembly.pipeline import assemble_with_pim
from repro.core import PimAssembler
from repro.core.faults import FaultModel
from repro.errors import TableFullError
from repro.genome.reads import ReadSimulator
from repro.genome.reference import synthetic_chromosome
from repro.genome.sequence import DnaSequence
from repro.mapping.adjacency import degree_vectors_pim, wallace_column_sum


def random_reads(seed, n_reads=12, length=50):
    rng = np.random.default_rng(seed)
    return [
        DnaSequence("".join(rng.choice(list("ACGT"), size=length)))
        for _ in range(n_reads)
    ]


def table_state(counter, pim):
    """Everything a workload can observe about the hash table."""
    rows = [
        pim.device.subarray_at(t.key).raw_bits.copy()
        for t in counter._tables
    ]
    return counter.counts(), len(counter), rows


class TestHashmapEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 1234])
    def test_counts_rows_and_commands_match(self, seed):
        def run(engine):
            pim = PimAssembler.small(subarrays=64)
            counter = PimKmerCounter(pim, 9, engine=engine)
            for read in random_reads(seed):
                counter.add_sequence(read)
            return counter, pim

        cs, ps = run("scalar")
        cb, pb = run("bulk")
        counts_s, len_s, rows_s = table_state(cs, ps)
        counts_b, len_b, rows_b = table_state(cb, pb)
        assert counts_s == counts_b
        assert len_s == len_b
        for a, b in zip(rows_s, rows_b):
            assert np.array_equal(a, b)
        ts, tb = ps.controller.ledger.totals(), pb.controller.ledger.totals()
        assert ts.commands == tb.commands
        assert ts.energy_nj == pytest.approx(tb.energy_nj)

    def test_repeat_heavy_stream_saturates_identically(self):
        reads = random_reads(3, n_reads=2, length=40) * 150

        def run(engine):
            pim = PimAssembler.small(subarrays=32)
            counter = PimKmerCounter(pim, 9, engine=engine)
            for read in reads:
                counter.add_sequence(read)
            return counter.counts(), pim.controller.ledger.totals().commands

        assert run("scalar") == run("bulk")

    def test_table_full_fires_at_the_same_arrival(self):
        reads = random_reads(2, n_reads=40, length=80)

        def run(engine):
            pim = PimAssembler.small(subarrays=4)
            counter = PimKmerCounter(pim, 9, engine=engine)
            err, consumed = None, 0
            try:
                for read in reads:
                    counter.add_sequence(read)
                    consumed += 1
            except TableFullError as exc:
                err = str(exc)
            state = table_state(counter, pim)
            return err, consumed, state, pim.controller.ledger.totals().commands

        err_s, n_s, state_s, cmd_s = run("scalar")
        err_b, n_b, state_b, cmd_b = run("bulk")
        assert err_s is not None
        assert (err_s, n_s) == (err_b, n_b)
        assert state_s[0] == state_b[0]
        for a, b in zip(state_s[2], state_b[2]):
            assert np.array_equal(a, b)
        assert cmd_s == cmd_b

    def test_counter_overflow_fires_identically(self):
        def run(engine):
            pim = PimAssembler.small(subarrays=16)
            counter = PimKmerCounter(
                pim, 5, engine=engine, saturating=False
            )
            err = None
            try:
                for _ in range(300):
                    counter.add_sequence(DnaSequence("ACGTACGTAC"))
            except OverflowError as exc:
                err = str(exc)
            return err, counter.counts(), pim.controller.ledger.totals().commands

        assert run("scalar") == run("bulk")

    def test_live_fault_rates_replay_the_scalar_stream(self):
        """compute2/copy faults force the exact per-op RNG replay."""

        def run(engine):
            pim = PimAssembler.small(subarrays=32)
            pim.controller.faults = FaultModel(
                compute2_rate=0.01, copy_rate=0.005, seed=11
            )
            counter = PimKmerCounter(pim, 7, engine=engine)
            for read in random_reads(5, n_reads=6):
                counter.add_sequence(read)
            return (
                counter.counts(),
                pim.controller.ledger.totals().commands,
                pim.controller.faults.injected_faults,
            )

        assert run("scalar") == run("bulk")


class TestDegreeEquivalence:
    @pytest.mark.parametrize("seed", [0, 4])
    def test_wallace_sum_matches(self, seed, rng):
        rows = [
            rng.integers(0, 2, 32).astype(np.uint8)
            for _ in range(int(np.random.default_rng(seed).integers(3, 40)))
        ]

        def run(engine):
            pim = PimAssembler.small(subarrays=4, rows=256, cols=32)
            total = wallace_column_sum(pim, rows, engine=engine)
            t = pim.controller.ledger.totals()
            return total, t.commands, t.time_ns, t.energy_nj

        sum_s, cmd_s, time_s, energy_s = run("scalar")
        sum_b, cmd_b, time_b, energy_b = run("bulk")
        assert np.array_equal(sum_s, sum_b)
        assert cmd_s == cmd_b
        # one sub-array: no gang overlap, so even the time is identical
        assert time_s == pytest.approx(time_b)
        assert energy_s == pytest.approx(energy_b)


class TestPipelineEquivalence:
    def pipeline_observables(self, result):
        return (
            [str(c.sequence) for c in result.contigs],
            result.kmer_table_size,
            result.hashmap.commands,
            result.debruijn.commands,
            result.traverse.commands,
        )

    @pytest.mark.parametrize("seed", [5, 19])
    def test_full_assembly_matches(self, seed):
        reference = synthetic_chromosome(600, seed=seed)
        sim = ReadSimulator(read_length=60, seed=seed + 1, error_rate=0.0)
        reads = sim.sample(reference, sim.reads_for_coverage(600, 6.0))
        scalar = assemble_with_pim(reads, k=15, engine="scalar")
        bulk = assemble_with_pim(reads, k=15, engine="bulk")
        assert self.pipeline_observables(scalar) == self.pipeline_observables(bulk)
        assert scalar.total_energy_nj == pytest.approx(bulk.total_energy_nj)
        # the point of the bulk engine: gang-charged time shrinks
        assert bulk.total_time_ns < scalar.total_time_ns

    def test_resilience_reports_match(self):
        reference = synthetic_chromosome(400, seed=8)
        sim = ReadSimulator(read_length=50, seed=9, error_rate=0.0)
        reads = sim.sample(reference, sim.reads_for_coverage(400, 5.0))
        scalar = assemble_with_pim(
            reads, k=13, engine="scalar", resilience="detect-retry-remap"
        )
        bulk = assemble_with_pim(
            reads, k=13, engine="bulk", resilience="detect-retry-remap"
        )
        assert self.pipeline_observables(scalar) == self.pipeline_observables(bulk)
        rs, rb = scalar.resilience, bulk.resilience
        assert rs is not None and rb is not None
        assert rs.totals.detected == rb.totals.detected
        assert rs.totals.corrected == rb.totals.corrected
        assert rs.totals.uncorrected == rb.totals.uncorrected
        assert rs.totals.retries == rb.totals.retries
        assert rs.totals.verified_ops == rb.totals.verified_ops
        assert rs.totals.scrubbed_rows == rb.totals.scrubbed_rows

    def test_degree_vectors_match_both_engines(self):
        from repro.assembly.debruijn import DeBruijnGraph
        from repro.assembly.euler import degree_table, degree_table_pim

        reads = random_reads(6, n_reads=4, length=40)
        counts = {}
        pim0 = PimAssembler.small(subarrays=32)
        counter = PimKmerCounter(pim0, 7, engine="scalar")
        for read in reads:
            counter.add_sequence(read)
        graph = DeBruijnGraph.from_counts(counter.counts(), k=7)
        expected = degree_table(graph)
        for engine in ("scalar", "bulk"):
            pim = PimAssembler.small(subarrays=4, rows=512, cols=64)
            assert degree_table_pim(pim, graph, engine=engine) == expected

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            PimKmerCounter(PimAssembler.small(subarrays=4), 9, engine="warp")
        with pytest.raises(ValueError):
            wallace_column_sum(
                PimAssembler.small(subarrays=4),
                [np.ones(8, dtype=np.uint8)],
                engine="warp",
            )
