"""Snapshot-at-rest integrity: the embedded per-sub-array digest.

The journal manifest hash proves a *record file* arrived intact; the
``sha256`` embedded in each format-2 sub-array entry proves the stored
rows *inside* it did not rot or get tampered with between write and
resume.  A byte-flipped snapshot must fail restore with a typed
:class:`~repro.errors.JournalError`, never resume into a wrong table.
"""

import base64

import numpy as np
import pytest

from repro.core.platform import PimAssembler
from repro.errors import JournalError
from repro.runtime.checkpoint import JobJournal


def _snapshot() -> dict:
    """A format-2 snapshot with one populated sub-array."""
    pim = PimAssembler.small(subarrays=2, rows=16, cols=32)
    addr = pim.allocate_row((0, 0, 0))
    bits = np.zeros(32, dtype=np.uint8)
    bits[::3] = 1
    pim.controller.write_row(addr, bits)
    return pim.state_dict()


def _flip_one_stored_bit(state: dict) -> dict:
    """Corrupt one bit of one sub-array's packed words in place."""
    entry = next(e for e in state["subarrays"] if "words" in e)
    raw = bytearray(base64.b64decode(entry["words"].encode("ascii")))
    raw[0] ^= 0x04
    entry["words"] = base64.b64encode(bytes(raw)).decode("ascii")
    return state


class TestSnapshotDigest:
    def test_clean_snapshot_restores(self):
        state = _snapshot()
        restored = PimAssembler.from_state(state)
        assert restored.state_dict() == state

    def test_flipped_bit_raises_journal_error(self):
        state = _flip_one_stored_bit(_snapshot())
        with pytest.raises(JournalError, match="integrity digest"):
            PimAssembler.from_state(state)

    def test_digest_free_legacy_entry_skips_the_check(self):
        # records written before the digest existed must stay restorable
        state = _flip_one_stored_bit(_snapshot())
        for entry in state["subarrays"]:
            entry.pop("sha256", None)
        restored = PimAssembler.from_state(state)  # no raise
        assert isinstance(restored, PimAssembler)


class TestThroughTheJournal:
    def test_tampered_record_with_valid_manifest_still_trips(self, tmp_path):
        """An attacker (or rot) that keeps the manifest consistent is
        caught one layer down by the embedded digest."""
        journal = JobJournal(tmp_path / "job")
        journal.create({"k": 9})
        tampered = _flip_one_stored_bit(_snapshot())
        # appended as a fresh record, so the manifest hash is *valid*
        ref = journal.append("hashmap", {"platform": tampered})
        payload = journal.load(ref)  # manifest layer passes
        with pytest.raises(JournalError, match="integrity digest"):
            PimAssembler.from_state(payload["platform"])
