"""Cooperative cancellation: budgets, strides, and the active slot."""

import pytest

from repro.errors import StageTimeoutError
from repro.runtime.watchdog import Watchdog, active_watchdog, checkpoint


class FakeClock:
    """Deterministic monotonic clock advanced by each read."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestCheckpoint:
    def test_noop_without_active_watchdog(self):
        assert active_watchdog() is None
        checkpoint()  # must not raise or allocate a watchdog

    def test_active_installs_and_restores(self):
        wd = Watchdog()
        with wd.active():
            assert active_watchdog() is wd
        assert active_watchdog() is None

    def test_active_nests(self):
        outer, inner = Watchdog(), Watchdog()
        with outer.active():
            with inner.active():
                assert active_watchdog() is inner
            assert active_watchdog() is outer

    def test_ticks_count_every_poll(self):
        wd = Watchdog()
        with wd.active():
            for _ in range(10):
                checkpoint()
        assert wd.ticks == 10


class TestBudgets:
    def test_stage_budget_trips(self):
        clock = FakeClock()
        wd = Watchdog(stage_budget_s=5.0, stride=1, clock=clock)
        with wd.active(), wd.stage("hashmap"):
            with pytest.raises(StageTimeoutError) as info:
                for _ in range(100):
                    checkpoint()
        assert info.value.stage == "hashmap"
        assert info.value.scope == "stage"
        assert info.value.budget_s == 5.0
        assert info.value.elapsed_s > 5.0
        assert "resumable" in str(info.value)

    def test_job_budget_trips_across_stages(self):
        clock = FakeClock()
        wd = Watchdog(job_budget_s=8.0, stride=1, clock=clock)
        with wd.active():
            with wd.stage("hashmap"):
                checkpoint()
            with wd.stage("traverse"):
                with pytest.raises(StageTimeoutError) as info:
                    for _ in range(100):
                        checkpoint()
        assert info.value.scope == "job"
        assert info.value.stage == "traverse"

    def test_per_stage_override_beats_default(self):
        clock = FakeClock()
        wd = Watchdog(
            stage_budget_s=1000.0,
            stage_budgets={"euler": 3.0},
            stride=1,
            clock=clock,
        )
        with wd.active(), wd.stage("euler"):
            with pytest.raises(StageTimeoutError) as info:
                for _ in range(100):
                    checkpoint()
        assert info.value.budget_s == 3.0

    def test_no_budget_never_raises(self):
        wd = Watchdog(stride=1, clock=FakeClock())
        with wd.active(), wd.stage("hashmap"):
            for _ in range(1000):
                checkpoint()
        assert wd.ticks == 1000

    def test_stride_skips_clock_reads(self):
        clock = FakeClock()
        wd = Watchdog(stage_budget_s=1e9, stride=64, clock=clock)
        with wd.active(), wd.stage("hashmap"):
            start_reads = clock.now
            for _ in range(640):
                checkpoint()
        # active()+stage() read twice; then one read per stride window
        assert clock.now - start_reads <= 640 / 64 + 2


class TestOnTick:
    def test_fires_every_poll_with_running_count(self):
        seen = []
        wd = Watchdog(on_tick=seen.append)
        with wd.active():
            for _ in range(5):
                checkpoint()
        assert seen == [1, 2, 3, 4, 5]

    def test_on_tick_may_interrupt(self):
        class Boom(BaseException):
            pass

        def bomb(ticks):
            if ticks == 3:
                raise Boom()

        wd = Watchdog(on_tick=bomb)
        with wd.active():
            with pytest.raises(Boom):
                for _ in range(10):
                    checkpoint()
        assert wd.ticks == 3


class TestValidation:
    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            Watchdog(stride=0)

    def test_rejects_nonpositive_budgets(self):
        with pytest.raises(ValueError):
            Watchdog(job_budget_s=0.0)
        with pytest.raises(ValueError):
            Watchdog(stage_budget_s=-1.0)
