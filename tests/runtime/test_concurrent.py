"""Concurrent `JobRunner` execution equals serial execution, bit for bit.

The service layer runs many jobs in worker threads; this file pins the
contract that makes that safe: N jobs on distinct job-dirs executed
concurrently produce exactly the outputs of the same jobs run serially
— on both execution engines, with per-thread watchdogs active (the
deadline slots are thread-local, so one job's budget never cancels
another's).
"""

import threading

import pytest

from repro.runtime.jobs import JobConfig, JobRunner
from repro.runtime.watchdog import Watchdog, active_watchdog

from .test_jobs import K, make_reads, run_fingerprint

N_JOBS = 4


def _workloads():
    return [make_reads(seed=100 + i, genome_bp=300) for i in range(N_JOBS)]


@pytest.mark.parametrize("engine", ["scalar", "bulk"])
def test_threaded_jobs_match_serial_baseline(tmp_path, engine):
    workloads = _workloads()
    config = JobConfig(k=K, engine=engine)

    serial = []
    for i, reads in enumerate(workloads):
        out = JobRunner(tmp_path / f"serial-{i}", config).run(reads)
        serial.append(run_fingerprint(out.result))

    results: dict[int, tuple] = {}
    errors: list = []

    def work(i: int, reads) -> None:
        try:
            watchdog = Watchdog(stage_budget_s=600.0)
            out = JobRunner(
                tmp_path / f"thread-{i}", config, watchdog=watchdog
            ).run(reads)
            results[i] = run_fingerprint(out.result)
        except BaseException as exc:  # pragma: no cover - diagnostics
            errors.append((i, exc))

    threads = [
        threading.Thread(target=work, args=(i, reads))
        for i, reads in enumerate(workloads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    assert not errors, f"concurrent jobs failed: {errors}"
    assert len(results) == N_JOBS
    for i in range(N_JOBS):
        assert results[i] == serial[i], f"job {i} diverged under concurrency"


def test_watchdog_slots_are_thread_local():
    """One thread's active watchdog is invisible to another thread."""
    outer = Watchdog()
    seen: list = []

    def probe():
        seen.append(active_watchdog())
        inner = Watchdog()
        with inner.active():
            seen.append(active_watchdog())

    with outer.active():
        thread = threading.Thread(target=probe)
        thread.start()
        thread.join(timeout=30)
        assert active_watchdog() is outer
    assert seen[0] is None
    assert seen[1] is not outer
