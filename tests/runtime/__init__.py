"""Job runtime: checkpoints, watchdog, retry ladder."""
