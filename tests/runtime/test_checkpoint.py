"""The content-hashed journal: durability, torn writes, serializers."""

import json

import pytest

from repro.errors import JournalError
from repro.runtime.checkpoint import (
    JobJournal,
    graph_from_state,
    graph_state,
    contigs_from_state,
    contigs_state,
    scaffolds_from_state,
    scaffolds_state,
)


@pytest.fixture()
def journal(tmp_path):
    j = JobJournal(tmp_path / "job")
    j.create({"k": 9})
    return j


class TestLifecycle:
    def test_create_then_load_config(self, journal):
        config = journal.load_config()
        assert config["k"] == 9
        assert config["journal_version"] == 2

    def test_create_refuses_existing(self, journal):
        with pytest.raises(JournalError, match="already exists"):
            journal.create({"k": 11})

    def test_load_config_missing(self, tmp_path):
        with pytest.raises(JournalError, match="no job journal"):
            JobJournal(tmp_path / "nope").load_config()

    def test_load_config_rejects_foreign_version(self, journal):
        config = json.loads(journal.config_path.read_text())
        config["journal_version"] = 999
        journal.config_path.write_text(json.dumps(config))
        with pytest.raises(JournalError, match="not supported"):
            journal.load_config()

    def test_rejects_whitespace_stage_names(self, journal):
        with pytest.raises(ValueError):
            journal.append("two words", {})


class TestAppendAndRecords:
    def test_round_trip(self, journal):
        ref = journal.append("hashmap", {"x": 1})
        assert journal.records() == [ref]
        assert journal.load(ref) == {"x": 1}
        latest = journal.latest()
        assert latest[0] == ref and latest[1] == {"x": 1}

    def test_sequence_numbers_monotonic(self, journal):
        refs = [journal.append(f"s{i}", {"i": i}) for i in range(4)]
        assert [r.seq for r in refs] == [0, 1, 2, 3]
        assert journal.records() == refs

    def test_filename_embeds_digest_prefix(self, journal):
        ref = journal.append("hashmap", {"x": 1})
        assert ref.sha256[:12] in ref.filename

    def test_empty_journal_has_no_latest(self, journal):
        assert journal.latest() is None
        assert journal.records() == []


class TestTornWrites:
    """kill -9 can truncate any file; the valid prefix must survive."""

    def test_torn_manifest_line_ends_prefix(self, journal):
        good = journal.append("hashmap", {"x": 1})
        journal.append("debruijn", {"x": 2})
        text = journal.manifest_path.read_text()
        lines = text.splitlines(keepends=True)
        journal.manifest_path.write_text(lines[0] + lines[1][: len(lines[1]) // 2])
        assert journal.records() == [good]
        assert journal.latest()[1] == {"x": 1}

    def test_corrupted_record_bytes_end_prefix(self, journal):
        good = journal.append("hashmap", {"x": 1})
        bad = journal.append("debruijn", {"x": 2})
        path = journal.records_dir / bad.filename
        path.write_bytes(path.read_bytes()[:-2] + b"!!")
        assert journal.records() == [good]

    def test_missing_record_file_ends_prefix(self, journal):
        good = journal.append("hashmap", {"x": 1})
        bad = journal.append("debruijn", {"x": 2})
        (journal.records_dir / bad.filename).unlink()
        assert journal.records() == [good]

    def test_load_revalidates_hash(self, journal):
        ref = journal.append("hashmap", {"x": 1})
        path = journal.records_dir / ref.filename
        path.write_bytes(b'{"x": 99}')
        with pytest.raises(JournalError, match="hash check"):
            journal.load(ref)

    def test_no_temp_files_left_behind(self, journal):
        journal.append("hashmap", {"x": 1})
        leftovers = list(journal.root.rglob("*.tmp"))
        assert leftovers == []

    def test_torn_decision_line_is_skipped(self, journal):
        journal.log_decision({"action": "retry"})
        with open(journal.decisions_path, "a") as handle:
            handle.write('{"action": "degr')  # torn mid-write
        assert journal.decisions() == [{"action": "retry"}]


class TestSerializers:
    def _graph(self):
        from collections import Counter

        from repro.assembly.debruijn import DeBruijnGraph
        from repro.genome.kmer import pack_kmer
        from repro.genome.sequence import DnaSequence

        counts = Counter(
            {
                pack_kmer(DnaSequence("ACGTA")): 2,
                pack_kmer(DnaSequence("CGTAC")): 1,
                pack_kmer(DnaSequence("GTACG")): 3,
            }
        )
        return DeBruijnGraph.from_counts(counts, k=5)

    def test_graph_round_trip_preserves_orders(self):
        graph = self._graph()
        rebuilt = graph_from_state(
            json.loads(json.dumps(graph_state(graph)))
        )
        assert list(rebuilt.nodes()) == list(graph.nodes())
        assert [
            (e.source, e.target, e.kmer, e.count) for e in rebuilt.edges()
        ] == [(e.source, e.target, e.kmer, e.count) for e in graph.edges()]
        for node in graph.nodes():
            assert rebuilt.in_degree(node) == graph.in_degree(node)
            assert rebuilt.out_degree(node) == graph.out_degree(node)

    def test_graph_round_trip_same_contigs(self):
        from repro.assembly.contigs import assemble_contigs

        graph = self._graph()
        rebuilt = graph_from_state(graph_state(graph))
        original = assemble_contigs(graph)
        again = assemble_contigs(rebuilt)
        assert [(c.name, str(c.sequence)) for c in again] == [
            (c.name, str(c.sequence)) for c in original
        ]

    def test_contigs_round_trip(self):
        from repro.assembly.contigs import Contig
        from repro.genome.sequence import DnaSequence

        contigs = [Contig("contig_0", DnaSequence("ACGTAC"), edge_count=2)]
        rebuilt = contigs_from_state(
            json.loads(json.dumps(contigs_state(contigs)))
        )
        assert rebuilt[0].name == "contig_0"
        assert str(rebuilt[0].sequence) == "ACGTAC"
        assert rebuilt[0].edge_count == 2

    def test_scaffolds_round_trip(self):
        from repro.assembly.scaffold import Scaffold
        from repro.genome.sequence import DnaSequence

        scaffolds = [
            Scaffold(
                "scaffold_0",
                DnaSequence("ACGTACGT"),
                members=("contig_0", "contig_1"),
            )
        ]
        rebuilt = scaffolds_from_state(
            json.loads(json.dumps(scaffolds_state(scaffolds)))
        )
        assert rebuilt[0].members == ("contig_0", "contig_1")
        assert str(rebuilt[0].sequence) == "ACGTACGT"
