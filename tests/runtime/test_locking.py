"""The journal's exclusive runner lock (double-resume hazard)."""

import threading

import pytest

from repro.errors import JournalError, JournalLockedError
from repro.runtime.checkpoint import JournalLock
from repro.runtime.jobs import JobConfig, JobRunner
from repro.runtime.watchdog import Watchdog

from .test_jobs import K, make_reads


@pytest.fixture(scope="module")
def reads():
    return make_reads()


class TestJournalLock:
    def test_is_a_journal_error(self):
        assert issubclass(JournalLockedError, JournalError)

    def test_conflicts_across_handles(self, tmp_path):
        first = JournalLock(tmp_path / "job")
        second = JournalLock(tmp_path / "job")
        with first.holding():
            with pytest.raises(JournalLockedError) as info:
                second.acquire()
            assert info.value.job_dir == str(tmp_path / "job")
        # released on exit: the second handle can take it now
        with second.holding():
            assert second.held

    def test_reentrant_acquire_is_refused(self, tmp_path):
        lock = JournalLock(tmp_path / "job")
        lock.acquire()
        try:
            with pytest.raises(JournalLockedError):
                lock.acquire()
        finally:
            lock.release()


class TestRunnerLocking:
    def test_runner_refuses_a_held_journal(self, reads, tmp_path):
        job_dir = tmp_path / "job"
        with JournalLock(job_dir).holding():
            with pytest.raises(JournalLockedError):
                JobRunner(job_dir, JobConfig(k=K)).run(reads)
        # the refused attempt left nothing behind; a fresh run works
        out = JobRunner(job_dir, JobConfig(k=K)).run(reads)
        assert out.report.completed

    def test_lock_released_after_completion(self, reads, tmp_path):
        job_dir = tmp_path / "job"
        JobRunner(job_dir, JobConfig(k=K)).run(reads)
        again = JobRunner(job_dir, JobConfig(k=K)).resume(reads)
        assert again.report.resumed_from == "result"

    def test_concurrent_second_runner_is_locked_out(self, reads, tmp_path):
        """A second live runner on the same --job-dir gets the typed
        error instead of interleaving journal writes."""
        job_dir = tmp_path / "job"
        started = threading.Event()
        release = threading.Event()
        errors: list = []

        def stall(ticks):
            if ticks == 1:
                started.set()
                release.wait(timeout=30)

        def victim():
            try:
                JobRunner(
                    job_dir,
                    JobConfig(k=K),
                    watchdog=Watchdog(on_tick=stall),
                ).run(reads)
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        worker = threading.Thread(target=victim)
        worker.start()
        try:
            assert started.wait(timeout=30)
            with pytest.raises(JournalLockedError):
                JobRunner(job_dir, JobConfig(k=K)).resume(reads)
        finally:
            release.set()
            worker.join(timeout=60)
        assert not errors
        # once the holder finished, resume rehydrates its result
        out = JobRunner(job_dir, JobConfig(k=K)).resume(reads)
        assert out.report.resumed_from == "result"
