"""Kill-and-resume equivalence, deadline handling, and the retry ladder.

The core contract under test: a job interrupted at *any* cancellation
point — simulated crash or deadline — and then resumed produces
contigs, per-mnemonic command counts, and resilience event counts
**bit-identical** to an uninterrupted run, on both execution engines.
"""

import random

import pytest

from repro.assembly.pipeline import PimPipeline, PipelineState, _sized_device
from repro.core.faults import FaultModel
from repro.core.platform import PimAssembler
from repro.core.resilience import ResiliencePolicy
from repro.errors import (
    JobFailedError,
    JournalError,
    StageTimeoutError,
    VerificationError,
)
from repro.genome.sequence import DnaSequence
from repro.runtime.jobs import JobConfig, JobRunner, reads_fingerprint
from repro.runtime.watchdog import Watchdog

K = 9
FAULT_SEED = 42


def make_reads(seed: int = 11, genome_bp: int = 400) -> list[DnaSequence]:
    rng = random.Random(seed)
    genome = "".join(rng.choice("ACGT") for _ in range(genome_bp))
    return [DnaSequence(genome[i : i + 50]) for i in range(0, genome_bp - 50, 11)]


def faulty_pim_factory(policy: ResiliencePolicy):
    """Platform factory with a live fault stream + protection attached."""

    def make(reads):
        pim = _sized_device(reads, K)
        pim.controller.faults = FaultModel(
            seed=FAULT_SEED, compute2_rate=2e-4, tra_rate=1e-4
        )
        pim.protect(policy)
        return pim

    return make


def run_fingerprint(result) -> tuple:
    """Everything the resume-equivalence contract covers."""
    r = result.resilience
    return (
        [(c.name, str(c.sequence)) for c in result.contigs],
        dict(result.hashmap.commands),
        dict(result.debruijn.commands),
        dict(result.traverse.commands),
        None
        if r is None
        else (r.totals.detected, r.totals.corrected, r.totals.retries),
    )


class SimulatedKill(BaseException):
    """Stand-in for SIGKILL: not an Exception, nothing may catch it."""


@pytest.fixture(scope="module")
def reads():
    return make_reads()


class TestFreshJob:
    def test_matches_plain_pipeline(self, reads, tmp_path):
        pim = _sized_device(reads, K)
        golden = PimPipeline(pim, k=K).run(reads)
        out = JobRunner(tmp_path / "job", JobConfig(k=K)).run(reads)
        assert run_fingerprint(out.result) == run_fingerprint(golden)
        assert out.report.completed
        assert out.report.stages_run == ["hashmap", "debruijn", "traverse"]

    def test_journal_holds_stage_records(self, reads, tmp_path):
        runner = JobRunner(tmp_path / "job", JobConfig(k=K))
        runner.run(reads)
        stages = [ref.stage for ref in runner.journal.records()]
        assert stages == ["hashmap", "debruijn", "traverse", "result"]

    def test_fresh_start_refuses_existing_journal(self, reads, tmp_path):
        JobRunner(tmp_path / "job", JobConfig(k=K)).run(reads)
        with pytest.raises(JournalError, match="already exists"):
            JobRunner(tmp_path / "job", JobConfig(k=K)).run(reads)


class TestResumeValidation:
    def test_resume_without_journal(self, reads, tmp_path):
        with pytest.raises(JournalError, match="no job journal"):
            JobRunner(tmp_path / "job", JobConfig(k=K)).resume(reads)

    def test_resume_rejects_different_reads(self, reads, tmp_path):
        JobRunner(tmp_path / "job", JobConfig(k=K)).run(reads)
        other = make_reads(seed=99)
        with pytest.raises(JournalError, match="do not match"):
            JobRunner(tmp_path / "job", JobConfig(k=K)).resume(other)

    def test_resume_rejects_different_config(self, reads, tmp_path):
        JobRunner(tmp_path / "job", JobConfig(k=K)).run(reads)
        with pytest.raises(JournalError, match="configuration"):
            JobRunner(
                tmp_path / "job", JobConfig(k=K, min_count=2)
            ).resume(reads)

    def test_fingerprint_is_order_sensitive(self, reads):
        assert reads_fingerprint(reads) != reads_fingerprint(
            list(reversed(reads))
        )


class TestKillAndResume:
    """Randomized kill points across stages, both engines, live faults."""

    @pytest.mark.parametrize("engine", ["scalar", "bulk"])
    def test_resume_is_bit_identical(self, reads, tmp_path, engine):
        policy = ResiliencePolicy.named("detect-retry-remap")
        config = JobConfig(k=K, engine=engine, resilience=policy)
        factory = faulty_pim_factory(policy)

        meter = Watchdog()
        golden = JobRunner(
            tmp_path / "golden", config, pim_factory=factory, watchdog=meter
        ).run(reads)
        golden_fp = run_fingerprint(golden.result)
        total_ticks = meter.ticks
        assert total_ticks > 100

        rng = random.Random(1234 + hash(engine) % 1000)
        kill_fracs = [0.08, rng.uniform(0.2, 0.5), rng.uniform(0.6, 0.8), 0.97]
        for index, frac in enumerate(kill_fracs):
            kill_at = max(1, int(total_ticks * frac))

            def bomb(ticks, kill_at=kill_at):
                if ticks == kill_at:
                    raise SimulatedKill()

            job_dir = tmp_path / f"{engine}-{index}"
            victim = JobRunner(
                job_dir,
                config,
                pim_factory=factory,
                watchdog=Watchdog(on_tick=bomb),
            )
            with pytest.raises(SimulatedKill):
                victim.run(reads)

            revived = JobRunner(job_dir, config, pim_factory=factory)
            out = revived.resume(reads)
            assert out.report.resumed
            assert run_fingerprint(out.result) == golden_fp, (
                f"kill at tick {kill_at}/{total_ticks} diverged"
            )

    def test_resume_from_each_stage_boundary(self, reads, tmp_path):
        """Truncate the journal to each boundary and resume from it."""
        config = JobConfig(k=K)
        golden = JobRunner(tmp_path / "golden", config).run(reads)
        golden_fp = run_fingerprint(golden.result)

        for keep, stage in ((1, "hashmap"), (2, "debruijn"), (3, "traverse")):
            job_dir = tmp_path / f"cut{keep}"
            source = JobRunner(job_dir, config)
            source.run(reads)
            manifest = source.journal.manifest_path
            lines = manifest.read_text().splitlines(keepends=True)
            manifest.write_text("".join(lines[:keep]))

            revived = JobRunner(job_dir, config)
            out = revived.resume(reads)
            assert out.report.resumed_from == stage
            assert run_fingerprint(out.result) == golden_fp


class TestTimeouts:
    def _ticking_clock(self):
        state = {"now": 0.0}

        def clock():
            state["now"] += 1.0
            return state["now"]

        return clock

    def test_timeout_leaves_resumable_journal(self, reads, tmp_path):
        config = JobConfig(k=K)
        golden = JobRunner(tmp_path / "golden", config).run(reads)

        watchdog = Watchdog(
            stage_budget_s=50.0, stride=8, clock=self._ticking_clock()
        )
        victim = JobRunner(tmp_path / "job", config, watchdog=watchdog)
        with pytest.raises(StageTimeoutError) as info:
            victim.run(reads)
        assert info.value.scope == "stage"
        assert victim.report.decisions[-1].action == "abort-timeout"

        out = JobRunner(tmp_path / "job", config).resume(reads)
        assert run_fingerprint(out.result) == run_fingerprint(golden.result)

    def test_config_budgets_build_a_watchdog(self, reads, tmp_path):
        # an absurdly small budget must trip on a real clock
        config = JobConfig(k=K, stage_timeout_s=1e-9)
        with pytest.raises(StageTimeoutError):
            JobRunner(tmp_path / "job", config).run(reads)

    def test_decision_journaled_on_timeout(self, reads, tmp_path):
        config = JobConfig(k=K, stage_timeout_s=1e-9)
        runner = JobRunner(tmp_path / "job", config)
        with pytest.raises(StageTimeoutError):
            runner.run(reads)
        actions = [d["action"] for d in runner.journal.decisions()]
        assert actions == ["abort-timeout"]


class TestCompletedJobRehydration:
    def test_resume_of_finished_job_re_emits_result(self, reads, tmp_path):
        config = JobConfig(k=K)
        first = JobRunner(tmp_path / "job", config).run(reads)
        again = JobRunner(tmp_path / "job", config).resume(reads)
        assert again.report.resumed_from == "result"
        assert run_fingerprint(again.result) == run_fingerprint(first.result)
        assert again.result.kmer_table_size == first.result.kmer_table_size


class TestRetryLadder:
    def _flaky_runner(self, tmp_path, config, fail_times):
        """JobRunner whose hashmap stage fails `fail_times` times."""
        runner = JobRunner(
            tmp_path / "job", config, sleep=lambda s: self.slept.append(s)
        )
        self.slept = []
        original = PimPipeline.run_hashmap
        state = {"left": fail_times}

        def flaky(pipeline, reads, pstate):
            if state["left"] > 0:
                state["left"] -= 1
                raise VerificationError("injected stage failure")
            return original(pipeline, reads, pstate)

        return runner, flaky

    def test_degradation_chain_bulk_then_batch(
        self, reads, tmp_path, monkeypatch
    ):
        config = JobConfig(
            k=K,
            engine="bulk",
            batch_reads=8,
            backoff_base_s=0.05,
            backoff_jitter=0.0,
        )
        self.slept = []
        runner, flaky = self._flaky_runner(tmp_path, config, fail_times=2)
        monkeypatch.setattr(PimPipeline, "run_hashmap", flaky)
        out = runner.run(reads)
        assert out.report.completed
        actions = [d.action for d in out.report.decisions]
        assert actions == ["degrade-bulk-to-scalar", "reduce-batch-to-2"]
        assert out.report.final_engine == "scalar"
        assert out.report.final_batch_reads == 2
        # capped exponential backoff between attempts
        assert self.slept == [0.05, 0.1]

    def test_backoff_is_capped(self, reads, tmp_path, monkeypatch):
        config = JobConfig(
            k=K,
            max_attempts=5,
            backoff_base_s=1.0,
            backoff_cap_s=2.5,
            backoff_jitter=0.0,
        )
        runner, flaky = self._flaky_runner(tmp_path, config, fail_times=4)
        monkeypatch.setattr(PimPipeline, "run_hashmap", flaky)
        out = runner.run(reads)
        assert out.report.completed
        assert self.slept == [1.0, 2.0, 2.5, 2.5]

    def test_ladder_exhaustion_raises_job_failed(
        self, reads, tmp_path, monkeypatch
    ):
        config = JobConfig(k=K, max_attempts=3, backoff_base_s=0.0)
        runner, flaky = self._flaky_runner(tmp_path, config, fail_times=99)
        monkeypatch.setattr(PimPipeline, "run_hashmap", flaky)
        with pytest.raises(JobFailedError) as info:
            runner.run(reads)
        assert info.value.stage == "hashmap"
        assert info.value.attempts == 3
        assert runner.report.decisions[-1].action == "give-up"

    def test_degraded_run_still_matches_golden_output(
        self, reads, tmp_path, monkeypatch
    ):
        """The ladder changes *how* a stage executes, never its output."""
        golden = JobRunner(tmp_path / "golden", JobConfig(k=K)).run(reads)
        config = JobConfig(
            k=K, engine="bulk", batch_reads=8, backoff_base_s=0.0
        )
        runner, flaky = self._flaky_runner(tmp_path, config, fail_times=2)
        monkeypatch.setattr(PimPipeline, "run_hashmap", flaky)
        out = runner.run(reads)
        assert [(c.name, str(c.sequence)) for c in out.result.contigs] == [
            (c.name, str(c.sequence)) for c in golden.result.contigs
        ]

    def test_jitter_spreads_but_replays_from_the_job_seed(
        self, reads, tmp_path, monkeypatch
    ):
        """Jittered delays stay in [base*(1-j), cap], and the sequence
        is a pure function of the input fingerprint: the same job
        re-run sleeps identically, a different job sleeps differently."""
        config = JobConfig(
            k=K,
            max_attempts=5,
            backoff_base_s=1.0,
            backoff_cap_s=16.0,
            backoff_jitter=0.25,
        )
        runner, flaky = self._flaky_runner(tmp_path, config, fail_times=3)
        monkeypatch.setattr(PimPipeline, "run_hashmap", flaky)
        runner.run(reads)
        first = list(self.slept)
        assert len(first) == 3
        for attempt, slept in enumerate(first, start=1):
            base = min(16.0, 1.0 * 2 ** (attempt - 1))
            assert base * 0.75 <= slept <= min(16.0, base * 1.25)
        assert first != [1.0, 2.0, 4.0]  # jitter actually moved them

        runner2, flaky2 = self._flaky_runner(
            tmp_path / "again", config, fail_times=3
        )
        monkeypatch.setattr(PimPipeline, "run_hashmap", flaky2)
        runner2.run(reads)
        assert self.slept == first  # reproducible from the job seed

        other = make_reads(seed=99)
        runner3, flaky3 = self._flaky_runner(
            tmp_path / "other", config, fail_times=3
        )
        monkeypatch.setattr(PimPipeline, "run_hashmap", flaky3)
        runner3.run(other)
        assert self.slept != first  # different jobs do not lockstep

    def test_jitter_config_is_validated(self):
        with pytest.raises(ValueError, match="backoff_jitter"):
            JobConfig(k=K, backoff_jitter=1.5)

    def test_nonpositive_budgets_are_rejected(self):
        with pytest.raises(ValueError, match="stage_timeout_s"):
            JobConfig(k=K, stage_timeout_s=0.0)
        with pytest.raises(ValueError, match="job_timeout_s"):
            JobConfig(k=K, job_timeout_s=-5.0)

    def test_decisions_are_journaled(self, reads, tmp_path, monkeypatch):
        config = JobConfig(k=K, engine="bulk", backoff_base_s=0.0)
        runner, flaky = self._flaky_runner(tmp_path, config, fail_times=1)
        monkeypatch.setattr(PimPipeline, "run_hashmap", flaky)
        runner.run(reads)
        logged = runner.journal.decisions()
        assert [d["action"] for d in logged] == ["degrade-bulk-to-scalar"]
        assert logged[0]["stage"] == "hashmap"


class TestPlatformSnapshot:
    """state_dict/from_state is an exact fixed point mid-run."""

    def test_snapshot_round_trip_is_identity(self, reads):
        policy = ResiliencePolicy.named("detect-retry-remap")
        pim = faulty_pim_factory(policy)(reads)
        pipeline = PimPipeline(pim, k=K)
        pipeline.run_hashmap(reads, PipelineState())
        snapshot = pim.state_dict()
        restored = PimAssembler.from_state(snapshot)
        assert restored.state_dict() == snapshot

    def test_restored_fault_stream_continues_identically(self, reads):
        policy = ResiliencePolicy.named("detect-retry-remap")
        pim = faulty_pim_factory(policy)(reads)
        twin = PimAssembler.from_state(pim.state_dict())
        a = pim.controller.faults._rng.random(8).tolist()
        b = twin.controller.faults._rng.random(8).tolist()
        assert a == b
