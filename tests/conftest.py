"""Shared fixtures for the PIM-Assembler test suite."""

import numpy as np
import pytest

from repro.core import PimAssembler


@pytest.fixture
def rng():
    return np.random.default_rng(0xA55E)


@pytest.fixture
def small_pim():
    """A tiny device: 4 sub-arrays of 64x32, 8 compute rows each."""
    return PimAssembler.small(subarrays=4, rows=64, cols=32)


@pytest.fixture
def medium_pim():
    """A device big enough for small-genome assembly runs."""
    return PimAssembler.small(subarrays=8, rows=256, cols=64)


def random_bits(rng, n):
    return rng.integers(0, 2, n).astype(np.uint8)
