"""Platform registry and the paper's headline throughput ratios."""

import pytest

from repro.platforms import (
    available_platforms,
    make_platform,
    microbenchmark_platforms,
    assembly_platforms,
)


class TestRegistry:
    def test_all_seven_platforms(self):
        assert set(available_platforms()) == {
            "P-A", "Ambit", "D1", "D3", "CPU", "GPU", "HMC",
        }

    def test_make_platform_by_label(self):
        assert make_platform("Ambit").name == "Ambit"

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            make_platform("TPU")

    def test_microbenchmark_lineup(self):
        names = [p.name for p in microbenchmark_platforms()]
        assert names == ["CPU", "GPU", "HMC", "Ambit", "D1", "D3", "P-A"]

    def test_assembly_lineup(self):
        names = [p.name for p in assembly_platforms()]
        assert names == ["GPU", "P-A", "Ambit", "D3", "D1"]

    def test_fresh_instances(self):
        assert make_platform("P-A") is not make_platform("P-A")


class TestPaperRatios:
    """The abstract's micro-benchmark claims, bit-exact from the model."""

    @pytest.fixture(scope="class")
    def xnor(self):
        bits = 2**27
        return {
            p.name: p.xnor_throughput_bps(bits)
            for p in microbenchmark_platforms()
        }

    def test_pa_vs_cpu_is_8_4x(self, xnor):
        assert xnor["P-A"] / xnor["CPU"] == pytest.approx(8.4, rel=0.02)

    def test_pa_vs_ambit_is_2_3x(self, xnor):
        assert xnor["P-A"] / xnor["Ambit"] == pytest.approx(2.33, rel=0.02)

    def test_pa_vs_d1_is_1_9x(self, xnor):
        assert xnor["P-A"] / xnor["D1"] == pytest.approx(1.9, rel=0.02)

    def test_pa_vs_d3_is_3_7x(self, xnor):
        assert xnor["P-A"] / xnor["D3"] == pytest.approx(3.7, rel=0.02)

    def test_pa_is_fastest(self, xnor):
        assert xnor["P-A"] == max(xnor.values())

    def test_von_neumann_below_leading_pims(self, xnor):
        """'External or internal DRAM bandwidth has limited the
        throughput of the CPU, GPU, and even HMC platforms' — every
        von-Neumann platform sits below P-A, Ambit and D1."""
        for vn in ("CPU", "GPU", "HMC"):
            for pim in ("P-A", "Ambit", "D1"):
                assert xnor[vn] < xnor[pim]

    def test_cpu_is_slowest(self, xnor):
        assert xnor["CPU"] == min(xnor.values())

    def test_addition_preserves_pa_lead(self):
        adds = {
            p.name: p.add_throughput_bps(2**27)
            for p in microbenchmark_platforms()
        }
        assert adds["P-A"] == max(adds.values())
