"""Platform throughput models and assembly primitives."""

import pytest

from repro.platforms.base import BandwidthPlatform, InDramPlatform
from repro.platforms.params import (
    CPU_POWER,
    CPU_SPEC,
    PIM_ASSEMBLER_CYCLES,
    PIM_ASSEMBLER_POWER,
    PimCycleCosts,
)


def make_pa(**kwargs):
    return InDramPlatform(
        name="P-A", cycles=PIM_ASSEMBLER_CYCLES, power=PIM_ASSEMBLER_POWER, **kwargs
    )


def make_cpu(**kwargs):
    defaults = dict(query_base_ns=20.0)
    defaults.update(kwargs)
    return BandwidthPlatform(name="CPU", spec=CPU_SPEC, power=CPU_POWER, **defaults)


class TestInDramThroughput:
    def test_xnor_throughput_formula(self):
        p = make_pa()
        expected = p.activation_bits / (3 * p.aap_ns * 1e-9)
        assert p.xnor_throughput_bps(2**27) == pytest.approx(expected)

    def test_throughput_independent_of_vector_length(self):
        """Long vectors pipeline waves; sustained rate is constant."""
        p = make_pa()
        assert p.xnor_throughput_bps(2**27) == p.xnor_throughput_bps(2**29)

    def test_lane_factor_does_not_affect_microbenchmark(self):
        """The Fig. 3b config is identical for every platform."""
        assert make_pa().xnor_throughput_bps(2**27) == make_pa(
            lane_factor=2.0
        ).xnor_throughput_bps(2**27)

    def test_add_slower_than_xnor_for_pa(self):
        p = make_pa()
        assert p.add_throughput_bps(2**27) < p.xnor_throughput_bps(2**27)

    def test_row_init_slows_xnor(self):
        with_init = make_pa()
        slower = InDramPlatform(
            name="X",
            cycles=PimCycleCosts(
                xnor_cycles=3.0, add_cycles_per_bit=2.0, row_init_cycles=1.0
            ),
            power=PIM_ASSEMBLER_POWER,
        )
        assert slower.xnor_throughput_bps(1024) < with_init.xnor_throughput_bps(1024)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            make_pa().xnor_throughput_bps(0)
        with pytest.raises(ValueError):
            make_pa().add_throughput_bps(1024, word_bits=0)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            make_pa(activation_bits=0)
        with pytest.raises(ValueError):
            make_pa(lane_factor=0)


class TestInDramPrimitives:
    def test_compare_ns(self):
        p = make_pa()
        assert p.compare_ns() == pytest.approx(3 * p.aap_ns)

    def test_add_ns_scales_with_bits(self):
        p = make_pa()
        assert p.add_ns(32) == pytest.approx(4 * 32 * p.aap_ns)

    def test_lanes_scale(self):
        p = make_pa()
        assert p.lanes(parallelism_degree=2, chips=10) == pytest.approx(
            (p.activation_bits / 256) * 2 * 10
        )

    def test_lanes_reject_bad_args(self):
        with pytest.raises(ValueError):
            make_pa().lanes(parallelism_degree=0)


class TestBandwidthThroughput:
    def test_xnor_traffic_factor(self):
        p = make_cpu()
        bw = CPU_SPEC.effective_bandwidth_gbps * 1e9
        assert p.xnor_throughput_bps(2**27) == pytest.approx(bw / 3 * 8)

    def test_query_cost_grows_with_k(self):
        p = make_cpu(key_width_exponent=1.0)
        assert p.query_ns(32) > p.query_ns(16)

    def test_query_cost_flat_below_word(self):
        """k <= 16 keys fit one 32-bit word: same cost."""
        p = make_cpu()
        assert p.query_ns(8) == p.query_ns(16)

    def test_query_exponent(self):
        p = make_cpu(key_width_exponent=1.0)
        assert p.query_ns(32) == pytest.approx(2 * p.query_ns(16))

    def test_random_probe_cost(self):
        p = make_cpu()
        expected = CPU_SPEC.random_access_bytes / (
            CPU_SPEC.effective_bandwidth_gbps * 1e9
        ) * 1e9
        assert p.random_probe_ns() == pytest.approx(expected)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make_cpu().query_ns(0)
        with pytest.raises(ValueError):
            make_cpu(query_base_ns=0.0)
        with pytest.raises(ValueError):
            make_cpu(compute_fraction=1.0)


class TestThroughputPoint:
    def test_units(self):
        p = make_pa()
        point = p.throughput_point("xnor", 2**27)
        assert point.tbits_per_second == pytest.approx(
            point.bits_per_second / 1e12
        )
        assert point.platform == "P-A"

    def test_unknown_operation(self):
        with pytest.raises(ValueError):
            make_pa().throughput_point("mul", 1024)
