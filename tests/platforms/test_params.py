"""Platform constants: cycle tables, bandwidth specs, power specs."""

import pytest

from repro.core.timing import DEFAULT_TIMING
from repro.platforms.params import (
    AAP_NS,
    AMBIT_CYCLES,
    CPU_SPEC,
    DEVICE_ACTIVATION_BITS,
    DRISA_1T1C_CYCLES,
    DRISA_3T1C_CYCLES,
    GPU_SPEC,
    HMC_SPEC,
    PIM_ASSEMBLER_CYCLES,
    BandwidthSpec,
    PimCycleCosts,
    PowerSpec,
)


class TestCycleTables:
    def test_pa_xnor_is_three_cycles(self):
        """2 staging RowClones + 1 single-cycle compute."""
        assert PIM_ASSEMBLER_CYCLES.xnor_cycles == 3.0

    def test_ambit_xnor_is_seven_cycles(self):
        """Quoted verbatim in the paper's introduction."""
        assert AMBIT_CYCLES.xnor_cycles + AMBIT_CYCLES.row_init_cycles == 7.0

    def test_cycle_ratios_match_paper(self):
        pa = PIM_ASSEMBLER_CYCLES.xnor_cycles
        assert AMBIT_CYCLES.xnor_cycles / pa == pytest.approx(7 / 3)
        assert DRISA_1T1C_CYCLES.xnor_cycles / pa == pytest.approx(1.9)
        assert DRISA_3T1C_CYCLES.xnor_cycles / pa == pytest.approx(3.7)

    def test_pa_add_total_per_bit(self):
        """2 compute (sum+carry) + 2 staging per plane."""
        assert PIM_ASSEMBLER_CYCLES.add_total_cycles_per_bit == 4.0

    def test_aap_latency_consistent_with_timing(self):
        assert AAP_NS == DEFAULT_TIMING.t_aap

    def test_activation_width(self):
        """8 banks x 8 KiB row."""
        assert DEVICE_ACTIVATION_BITS == 8 * 65536


class TestBandwidthSpecs:
    def test_effective_bandwidth(self):
        spec = BandwidthSpec(
            peak_bandwidth_gbps=100.0,
            streaming_efficiency=0.5,
            random_access_bytes=64.0,
        )
        assert spec.effective_bandwidth_gbps == 50.0

    def test_gpu_peak_is_1080ti(self):
        assert GPU_SPEC.peak_bandwidth_gbps == 484.0

    def test_hmc_is_32_vaults(self):
        assert HMC_SPEC.peak_bandwidth_gbps == 320.0

    def test_cpu_below_gpu(self):
        assert (
            CPU_SPEC.effective_bandwidth_gbps < GPU_SPEC.effective_bandwidth_gbps
        )


class TestPowerSpec:
    def test_average_power(self):
        spec = PowerSpec(idle_w=10.0, dynamic_w=100.0)
        assert spec.average_power_w(0.0) == 10.0
        assert spec.average_power_w(1.0) == 110.0
        assert spec.average_power_w(0.5) == 60.0

    def test_rejects_bad_utilisation(self):
        with pytest.raises(ValueError):
            PowerSpec(10.0, 100.0).average_power_w(1.5)


class TestPimCycleCosts:
    def test_add_total_includes_staging(self):
        costs = PimCycleCosts(
            xnor_cycles=3, add_cycles_per_bit=2, add_stage_cycles_per_bit=2
        )
        assert costs.add_total_cycles_per_bit == 4
