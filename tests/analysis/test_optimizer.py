"""The translation-validated trace optimizer (rules ``O00x``)."""

import dataclasses
import itertools

import numpy as np
import pytest

from repro.analysis.equiv import check_equivalence
from repro.analysis.optimizer import (
    DEFAULT_PASSES,
    PassStats,
    TraceOptimizer,
    optimize_document,
)
from repro.analysis.tracefile import TraceDocument, TraceRecorder
from repro.analysis.verifier import verify_document
from repro.assembly.pipeline import _sized_device, assemble_with_pim
from repro.core.trace import ChargeLog, CommandTrace
from repro.genome import ReadSimulator, synthetic_chromosome

GEOMETRY = {"rows": 32, "cols": 64, "compute_rows": 8, "data_rows": 24}
SUB = (0, 0, 0)


def make_doc(build, engine="scalar", complete=True):
    trace = CommandTrace()
    build(trace)
    return TraceDocument(
        engine=engine,
        trace=trace,
        charge_log=ChargeLog(),
        geometry=dict(GEOMETRY),
        complete=complete,
    )


def signature(doc):
    """Everything observable about a document's command stream."""
    return (
        [(e.mnemonic, e.subarray, e.rows, e.payload) for e in doc.trace],
        list(doc.trace.marks),
        doc.meta.get("gangs"),
    )


# --------------------------------------------------------------------------
# seeded corpus
# --------------------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus_doc():
    reference = synthetic_chromosome(140, seed=5)
    simulator = ReadSimulator(read_length=30, seed=2)
    reads = simulator.sample(
        reference, simulator.reads_for_coverage(len(reference), 4)
    )
    pim = _sized_device(reads, 9)
    recorder = TraceRecorder(pim, engine="scalar")
    with recorder:
        assemble_with_pim(reads, k=9, pim=pim, engine="scalar")
    return recorder.document(workload="optimizer-corpus")


@pytest.fixture(scope="module")
def corpus_result(corpus_doc):
    result = optimize_document(corpus_doc, source="<corpus>")
    assert result.ok
    return result


def test_optimization_reduces_and_reverifies(corpus_doc, corpus_result):
    assert not corpus_result.identity
    savings = corpus_result.savings
    assert savings["commands"]["after"] < savings["commands"]["before"]
    assert savings["energy_nj"]["after"] < savings["energy_nj"]["before"]
    # the rewritten document must sail through the full verifier
    report = verify_document(corpus_result.document, source="<optimized>")
    assert report.render() == ""


def test_ledger_recomputed_for_rewritten_stream(corpus_doc, corpus_result):
    before = corpus_doc.ledger
    after = corpus_result.document.ledger
    assert after is not None
    assert after["energy_nj"] < before["energy_nj"]
    assert after["time_ns"] < before["time_ns"]


def test_optimization_is_idempotent(corpus_result):
    again = optimize_document(corpus_result.document, source="<again>")
    assert again.ok
    assert signature(again.document) == signature(corpus_result.document)
    assert again.savings["commands"]["reduction"] == 0.0


def test_pass_ordering_does_not_change_the_result(corpus_doc, corpus_result):
    expected = signature(corpus_result.document)
    for perm in itertools.permutations(DEFAULT_PASSES):
        result = TraceOptimizer(passes=perm, verify_input=False).optimize(
            corpus_doc, source="<perm>"
        )
        assert result.ok
        assert signature(result.document) == expected


def test_justifications_recorded_in_meta(corpus_result):
    opt_meta = corpus_result.document.meta["aap_opt"]
    assert opt_meta["justifications_total"] > 0
    assert opt_meta["justifications"]
    names = {p["name"] for p in opt_meta["passes"]}
    assert {"copy_propagation", "dead_write", "redundant_init"} <= names


# --------------------------------------------------------------------------
# degradation-to-identity paths
# --------------------------------------------------------------------------


def test_o001_partial_bulk_document_is_identity():
    doc = make_doc(
        lambda t: t.record("MEM_RD", SUB, (3,)),
        engine="bulk",
        complete=False,
    )
    result = optimize_document(doc, source="<bulk>")
    assert result.ok
    assert result.identity
    assert result.document is doc
    assert "O001" in result.report.rules()


def test_o003_unmodelled_mnemonic_is_identity():
    def build(trace):
        trace.record("AAP1", SUB, (2, 10))
        trace.record("REF", SUB, ())

    result = optimize_document(make_doc(build), source="<ref>")
    assert result.ok
    assert result.identity
    assert "O003" in result.report.rules()


def test_o002_refuses_broken_input():
    # an AAP1 reading an uninitialised compute row is a V003 error; the
    # optimizer must refuse rather than launder the broken program
    compute_row = GEOMETRY["data_rows"] + 2
    doc = make_doc(lambda t: t.record("AAP1", SUB, (compute_row, 5)))
    result = optimize_document(doc, source="<broken>")
    assert result.ok is False
    assert "O002" in result.report.rules()
    assert result.document is doc


# --------------------------------------------------------------------------
# misfiring passes: the judge must reject each sabotaged rewrite
# --------------------------------------------------------------------------


def bad_dead_write(tokens):
    """A 'liveness' pass that also drops live MEM_WR/ROW_INIT writes."""
    kept = [
        t
        for t in tokens
        if not (t[0] == "entry" and t[1].mnemonic in ("MEM_WR", "ROW_INIT"))
    ]
    return kept, PassStats(name="bad_dead_write", removed=len(tokens) - len(kept))


def bad_copy_propagation(tokens):
    """A 'copy propagation' that reverses copy direction instead."""
    out = []
    rewritten = 0
    for token in tokens:
        if token[0] == "entry" and token[1].mnemonic == "AAP1":
            entry = token[1]
            src, des = entry.rows
            if src < des:
                entry = dataclasses.replace(entry, rows=(des, src))
                rewritten += 1
            out.append(("entry", entry))
        else:
            out.append(token)
    return out, PassStats(name="bad_copy_propagation", rewritten=rewritten)


def bad_redundant_init(tokens):
    """An 'init removal' that drops every LATCH_CLR, redundant or not."""
    kept = [
        t
        for t in tokens
        if not (t[0] == "entry" and t[1].mnemonic == "LATCH_CLR")
    ]
    return kept, PassStats(
        name="bad_redundant_init", removed=len(tokens) - len(kept)
    )


@pytest.mark.parametrize(
    "bad_pass", [bad_dead_write, bad_copy_propagation, bad_redundant_init]
)
def test_judge_rejects_misfiring_pass(corpus_doc, bad_pass):
    optimizer = TraceOptimizer(
        passes=[bad_pass], verify_input=False, gang_merge=False
    )
    result = optimizer.optimize(corpus_doc, source="<sabotage>")
    assert result.ok is False
    # the rewrite is rejected: the caller gets the untouched original,
    # the refuted stream is preserved for debugging
    assert result.document is corpus_doc
    assert result.rejected is not None
    assert result.report.rules() & {"E001", "E002", "E003"}


def test_judge_rejects_corrupted_gang_annotation(corpus_doc, corpus_result):
    doc = corpus_result.document
    gangs = [list(g) for g in doc.meta.get("gangs", [])]
    assert gangs, "corpus optimization should produce gang slots"
    gangs[0][1] += 1  # stretch the first gang over a non-member command
    tampered = dataclasses.replace(
        doc, meta={**doc.meta, "gangs": gangs}
    )
    report = check_equivalence(corpus_doc, tampered, source="<tampered>")
    assert "E005" in report.rules()


def test_payload_survives_round_trip(corpus_result):
    doc = corpus_result.document
    rebuilt = TraceDocument.from_json(doc.to_json(), source="<round-trip>")
    assert signature(rebuilt) == signature(doc)
