"""The repo-invariant AST lint pass."""

from pathlib import Path

from repro.analysis.findings import FindingReport
from repro.analysis.lint import lint_file, lint_tree


def run_lint(tmp_path: Path, relpath: str, source: str) -> FindingReport:
    """Lint one crafted module as if it lived at src/repro/<relpath>."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    report = FindingReport()
    lint_file(path, tmp_path, report)
    return report


def test_real_repo_is_clean():
    assert lint_tree().render() == ""


def test_wall_clock_flagged_in_core(tmp_path):
    report = run_lint(
        tmp_path,
        "core/thing.py",
        "import time\n\ndef f():\n    return time.perf_counter()\n",
    )
    assert report.rules() == {"L001"}
    assert report.findings[0].location == 4


def test_wall_clock_allowed_outside_deterministic_dirs(tmp_path):
    report = run_lint(
        tmp_path,
        "runtime/thing.py",
        "import time\n\ndef f():\n    return time.monotonic()\n",
    )
    assert report.ok


def test_unseeded_default_rng_flagged(tmp_path):
    report = run_lint(
        tmp_path,
        "assembly/thing.py",
        "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n",
    )
    assert report.rules() == {"L002"}


def test_seeded_default_rng_allowed(tmp_path):
    report = run_lint(
        tmp_path,
        "assembly/thing.py",
        "import numpy as np\n\ndef f(seed):\n"
        "    return np.random.default_rng(seed)\n",
    )
    assert report.ok


def test_legacy_global_rng_flagged(tmp_path):
    report = run_lint(
        tmp_path,
        "core/thing.py",
        "import numpy as np\n\ndef f():\n    return np.random.randint(4)\n",
    )
    assert report.rules() == {"L002"}


def test_stdlib_random_flagged(tmp_path):
    report = run_lint(
        tmp_path,
        "core/thing.py",
        "import random\n\ndef f():\n    return random.random()\n",
    )
    assert report.rules() == {"L002"}


def test_raw_read_row_flagged_on_hot_path(tmp_path):
    report = run_lint(
        tmp_path,
        "assembly/hashmap.py",
        "def grab(sub, row):\n    return sub.read_row(row)\n",
    )
    assert report.rules() == {"L003"}


def test_controller_read_row_allowed_on_hot_path(tmp_path):
    report = run_lint(
        tmp_path,
        "assembly/hashmap.py",
        "def grab(ctrl, addr):\n    return ctrl.read_row(addr)\n",
    )
    assert report.ok


def test_allowlisted_function_keeps_its_shadow_read(tmp_path):
    report = run_lint(
        tmp_path,
        "assembly/hashmap.py",
        "def _write_counter(sub, row):\n    return sub.read_row(row)\n",
    )
    assert report.ok


def test_read_row_ignored_off_the_hot_path(tmp_path):
    report = run_lint(
        tmp_path,
        "eval/thing.py",
        "def grab(sub, row):\n    return sub.read_row(row)\n",
    )
    assert report.ok


def test_raw_runtime_error_raise_flagged(tmp_path):
    report = run_lint(
        tmp_path,
        "core/thing.py",
        "def f():\n    raise RuntimeError('nope')\n",
    )
    assert report.rules() == {"L004"}


def test_taxonomy_and_guard_raises_allowed(tmp_path):
    report = run_lint(
        tmp_path,
        "core/thing.py",
        "from repro.errors import CapacityError\n\n"
        "def f(n):\n"
        "    if n < 0:\n"
        "        raise ValueError('n must be >= 0')\n"
        "    raise CapacityError('full')\n",
    )
    assert report.ok


def test_bare_reraise_allowed(tmp_path):
    report = run_lint(
        tmp_path,
        "core/thing.py",
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except Exception:\n"
        "        raise\n",
    )
    assert report.ok


def test_errors_module_itself_is_exempt(tmp_path):
    report = run_lint(
        tmp_path,
        "errors.py",
        "def f():\n    raise RuntimeError('bootstrapping')\n",
    )
    assert report.ok


def test_state_dict_without_restore_flagged(tmp_path):
    report = run_lint(
        tmp_path,
        "runtime/thing.py",
        "class Snapshotted:\n"
        "    def state_dict(self):\n"
        "        return {}\n",
    )
    assert report.rules() == {"L005"}


def test_state_dict_with_from_state_allowed(tmp_path):
    report = run_lint(
        tmp_path,
        "runtime/thing.py",
        "class Snapshotted:\n"
        "    def state_dict(self):\n"
        "        return {}\n"
        "    @classmethod\n"
        "    def from_state(cls, state):\n"
        "        return cls()\n",
    )
    assert report.ok


def test_state_dict_with_load_state_allowed(tmp_path):
    report = run_lint(
        tmp_path,
        "runtime/thing.py",
        "class Snapshotted:\n"
        "    def state_dict(self):\n"
        "        return {}\n"
        "    def load_state(self, state):\n"
        "        pass\n",
    )
    assert report.ok


def test_syntax_error_reported_not_raised(tmp_path):
    report = run_lint(tmp_path, "core/broken.py", "def f(:\n")
    assert report.rules() == {"L000"}


def test_mutable_default_argument_flagged(tmp_path):
    report = run_lint(
        tmp_path,
        "eval/thing.py",
        "def f(items=[]):\n    return items\n",
    )
    assert report.rules() == {"L006"}


def test_mutable_factory_default_flagged(tmp_path):
    report = run_lint(
        tmp_path,
        "eval/thing.py",
        "def f(cache=dict(), *, seen=set()):\n    return cache, seen\n",
    )
    assert report.rules() == {"L006"}
    assert len(report.findings) == 2


def test_immutable_defaults_allowed(tmp_path):
    report = run_lint(
        tmp_path,
        "eval/thing.py",
        "def f(a=None, b=(), c=0, d='x'):\n    return a, b, c, d\n",
    )
    assert report.ok


def test_module_level_np_random_flagged(tmp_path):
    report = run_lint(
        tmp_path,
        "eval/thing.py",
        "import numpy as np\n\n_RNG = np.random.default_rng(0)\n",
    )
    assert report.rules() == {"L006"}
    assert report.findings[0].location == 3


def test_np_random_inside_function_not_l006(tmp_path):
    report = run_lint(
        tmp_path,
        "eval/thing.py",
        "import numpy as np\n\ndef f(seed):\n"
        "    return np.random.default_rng(seed)\n",
    )
    assert report.ok
