"""The symbolic row-state equivalence judge (rules ``E00x``)."""

import numpy as np

from repro.analysis.equiv import (
    Interner,
    check_equivalence,
    interpret_trace,
    stream_cost,
)
from repro.analysis.tracefile import TraceDocument
from repro.core.energy import DEFAULT_ENERGY
from repro.core.timing import DEFAULT_TIMING, command_cost_table
from repro.core.trace import ChargeLog, CommandTrace

GEOMETRY = {"rows": 32, "cols": 64, "compute_rows": 8, "data_rows": 24}
SUB = (0, 0, 0)


def make_doc(build, engine="scalar", complete=True, meta=None, geometry=None):
    """A minimal document around a trace the ``build`` callback records."""
    trace = CommandTrace()
    build(trace)
    return TraceDocument(
        engine=engine,
        trace=trace,
        charge_log=ChargeLog(),
        geometry=dict(geometry or GEOMETRY),
        complete=complete,
        meta=dict(meta or {}),
    )


def fill(trace, row, value=0):
    trace.record(
        "ROW_INIT", SUB, (row,), np.array([value], dtype=np.uint8)
    )


# --------------------------------------------------------------------------
# interpreter semantics
# --------------------------------------------------------------------------


def test_copy_chain_collapses_to_source_value():
    interner = Interner()

    direct = CommandTrace()
    direct.record("MEM_RD", SUB, (2,))

    chained = CommandTrace()
    chained.record("AAP1", SUB, (2, 10))
    chained.record("AAP1", SUB, (10, 11))
    chained.record("MEM_RD", SUB, (11,))

    left = interpret_trace(direct, interner)[SUB]
    right = interpret_trace(chained, interner)[SUB]
    # the chained read observes row 11, but its *value* id must be the
    # init term of row 2 — identical to the direct read's value
    assert left.observations[0][2] == right.observations[0][2]


def test_xnor_is_commutative_in_the_lattice():
    interner = Interner()
    a = CommandTrace()
    a.record("AAP2", SUB, (2, 3, 12))
    b = CommandTrace()
    b.record("AAP2", SUB, (3, 2, 12))
    left = interpret_trace(a, interner)[SUB]
    right = interpret_trace(b, interner)[SUB]
    assert left.rows[12] == right.rows[12]


def test_sum_depends_on_latch_state():
    interner = Interner()
    cleared = CommandTrace()
    cleared.record("LATCH_CLR", SUB, ())
    cleared.record("SUM", SUB, (2, 3, 12))
    loaded = CommandTrace()
    loaded.record("LATCH_LD", SUB, (4,))
    loaded.record("SUM", SUB, (2, 3, 12))
    left = interpret_trace(cleared, interner)[SUB]
    right = interpret_trace(loaded, interner)[SUB]
    assert left.rows[12] != right.rows[12]


def test_stream_cost_matches_cost_table():
    trace = CommandTrace()
    trace.record("AAP1", SUB, (2, 10))
    trace.record("AAP2", SUB, (2, 3, 12))
    trace.record("MEM_RD", SUB, (12,))
    costs = command_cost_table(DEFAULT_TIMING, DEFAULT_ENERGY)
    commands, time_ns, energy_nj = stream_cost(
        trace, DEFAULT_TIMING, DEFAULT_ENERGY
    )
    assert commands == 3
    expected_t = sum(costs[m][0] for m in ("AAP1", "AAP2", "MEM_RD"))
    expected_e = sum(costs[m][1] for m in ("AAP1", "AAP2", "MEM_RD"))
    assert time_ns == expected_t
    assert energy_nj == expected_e


# --------------------------------------------------------------------------
# the judgement: positives
# --------------------------------------------------------------------------


def test_identical_streams_are_equivalent():
    def build(trace):
        fill(trace, 10)
        trace.record("AAP1", SUB, (2, 11))
        trace.record("AAP2", SUB, (2, 3, 12))
        trace.record("MEM_RD", SUB, (12,))

    report = check_equivalence(make_doc(build), make_doc(build))
    assert report.ok
    assert not report.findings


def test_redundant_precharge_removal_is_equivalent():
    def original(trace):
        fill(trace, 10, 0)
        fill(trace, 10, 0)
        trace.record("MEM_RD", SUB, (10,))

    def optimized(trace):
        fill(trace, 10, 0)
        trace.record("MEM_RD", SUB, (10,))

    report = check_equivalence(make_doc(original), make_doc(optimized))
    assert report.ok


def test_copy_propagation_rewrite_is_equivalent():
    def original(trace):
        trace.record("AAP1", SUB, (2, 10))
        trace.record("AAP2", SUB, (10, 3, 12))
        trace.record("MEM_RD", SUB, (12,))

    def optimized(trace):
        trace.record("AAP1", SUB, (2, 10))
        trace.record("AAP2", SUB, (2, 3, 12))
        trace.record("MEM_RD", SUB, (12,))

    report = check_equivalence(make_doc(original), make_doc(optimized))
    assert report.ok


def test_untouched_rows_resolve_to_init_terms():
    # the optimised side reads a row the original never touched — both
    # must agree it still holds its initial contents
    def original(trace):
        trace.record("MEM_RD", SUB, (5,))

    def optimized(trace):
        trace.record("MEM_RD", SUB, (5,))
        trace.record("AAP1", SUB, (7, 20))
        trace.record("AAP1", SUB, (7, 20))

    report = check_equivalence(make_doc(original), make_doc(optimized))
    # row 20 now holds init(7)'s value on one side only -> E001, but the
    # *read* of row 5 agrees; restrict to the row-divergence rule
    assert report.rules() == {"E001", "E004"}


# --------------------------------------------------------------------------
# the judgement: refutations, one per rule
# --------------------------------------------------------------------------


def test_e001_final_row_divergence():
    def original(trace):
        fill(trace, 10, 0)

    def optimized(trace):
        fill(trace, 10, 1)

    report = check_equivalence(make_doc(original), make_doc(optimized))
    assert "E001" in report.rules()
    assert not report.ok


def test_e002_observation_divergence():
    def original(trace):
        trace.record("MEM_RD", SUB, (5,))

    def optimized(trace):
        trace.record("MEM_RD", SUB, (6,))

    report = check_equivalence(make_doc(original), make_doc(optimized))
    assert "E002" in report.rules()


def test_e002_dropped_observation():
    def original(trace):
        trace.record("MEM_RD", SUB, (5,))
        trace.record("MEM_RD", SUB, (5,))

    def optimized(trace):
        trace.record("MEM_RD", SUB, (5,))

    report = check_equivalence(make_doc(original), make_doc(optimized))
    assert "E002" in report.rules()


def test_e003_latch_divergence():
    def original(trace):
        trace.record("LATCH_LD", SUB, (4,))

    def optimized(trace):
        trace.record("LATCH_CLR", SUB, ())

    report = check_equivalence(make_doc(original), make_doc(optimized))
    assert "E003" in report.rules()


def test_e004_cost_increase():
    def original(trace):
        fill(trace, 10, 0)

    def optimized(trace):
        fill(trace, 10, 0)
        trace.record("AAP1", SUB, (10, 11))
        trace.record("AAP1", SUB, (10, 11))

    report = check_equivalence(make_doc(original), make_doc(optimized))
    assert "E004" in report.rules()


def test_e006_envelope_divergence():
    def build(trace):
        fill(trace, 10, 0)

    other_geometry = dict(GEOMETRY, rows=64)
    report = check_equivalence(
        make_doc(build), make_doc(build, geometry=other_geometry)
    )
    assert "E006" in report.rules()


def test_e007_unmodelled_mnemonic():
    def original(trace):
        fill(trace, 10, 0)

    def optimized(trace):
        fill(trace, 10, 0)
        trace.record("REF", SUB, ())

    report = check_equivalence(make_doc(original), make_doc(optimized))
    assert report.rules() == {"E007"}


# --------------------------------------------------------------------------
# gang annotation validation (E005)
# --------------------------------------------------------------------------


def gang_doc(meta, n_subs=3):
    def build(trace):
        for i in range(n_subs):
            trace.record("AAP1", (0, 0, i), (2, 10))

    return make_doc(build, meta=meta)


def base_doc(n_subs=3):
    return gang_doc(meta=None, n_subs=n_subs)


def test_valid_gang_annotation_accepted():
    report = check_equivalence(base_doc(), gang_doc({"gangs": [[0, 3]]}))
    assert report.ok


def test_e005_out_of_bounds_gang():
    report = check_equivalence(base_doc(), gang_doc({"gangs": [[1, 5]]}))
    assert "E005" in report.rules()


def test_e005_undersized_gang():
    report = check_equivalence(base_doc(), gang_doc({"gangs": [[0, 1]]}))
    assert "E005" in report.rules()


def test_e005_overlapping_gangs():
    report = check_equivalence(
        base_doc(), gang_doc({"gangs": [[0, 2], [1, 2]]})
    )
    assert "E005" in report.rules()


def test_e005_gang_reusing_a_subarray():
    def build(trace):
        trace.record("AAP1", SUB, (2, 10))
        trace.record("AAP1", SUB, (10, 11))

    def original(trace):
        trace.record("AAP1", SUB, (2, 10))
        trace.record("AAP1", SUB, (10, 11))

    report = check_equivalence(
        make_doc(original), make_doc(build, meta={"gangs": [[0, 2]]})
    )
    assert "E005" in report.rules()


def test_e005_non_gangable_mnemonic():
    def build(trace):
        for i in range(2):
            trace.record("SUM", (0, 0, i), (2, 3, 12))

    report = check_equivalence(
        base_doc(),
        make_doc(build, meta={"gangs": [[0, 2]]}),
    )
    assert "E005" in report.rules()


def test_e005_malformed_annotation_shape():
    report = check_equivalence(
        base_doc(), gang_doc({"gangs": [["x"]]})
    )
    assert "E005" in report.rules()


def test_e005_gang_straddling_a_mark():
    def build(trace):
        trace.record("AAP1", (0, 0, 0), (2, 10))
        trace.mark("window")
        trace.record("AAP1", (0, 0, 1), (2, 10))
        trace.record("AAP1", (0, 0, 2), (2, 10))

    def original(trace):
        trace.record("AAP1", (0, 0, 0), (2, 10))
        trace.mark("window")
        trace.record("AAP1", (0, 0, 1), (2, 10))
        trace.record("AAP1", (0, 0, 2), (2, 10))

    report = check_equivalence(
        make_doc(original), make_doc(build, meta={"gangs": [[0, 3]]})
    )
    assert "E005" in report.rules()
