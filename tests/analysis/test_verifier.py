"""The AAP trace verifier: seeded known-bad corpus + clean-pipeline checks.

Every dataflow/layout/accounting/charge rule gets a crafted document
that violates exactly it (flagged, and flagged *alone* — the corpus
doubles as a false-positive guard), and recorded traces of the real
pipeline under both execution engines must come back finding-free.
"""

import numpy as np
import pytest

from repro.analysis.tracefile import (
    TraceDocument,
    TraceRecorder,
    load_document,
    save_document,
)
from repro.analysis.verifier import InlineChecker, verify_document
from repro.core.trace import ChargeLog, CommandTrace
from repro.errors import TraceFormatError, TraceHazardError

SUB = (0, 0, 0)
GEOMETRY = {"rows": 64, "cols": 8, "compute_rows": 8, "data_rows": 56}
LAYOUT = {"kmer_rows": 16, "value_rows": 8, "temp_rows": 16}
TIMING = {
    "t_ras": 35.0,
    "t_rp": 15.0,
    "t_rcd": 15.0,
    "t_bl": 5.0,
    "t_dpu_clk": 1.0,
}


def make_doc(
    items=(),
    charges=(),
    flushes=(),
    ledger=None,
    cold_start=True,
    layout=None,
    engine="scalar",
    complete=True,
):
    """Build a crafted document.

    ``items`` mixes command tuples ``(op, rows)`` / ``(op, rows,
    payload)`` with ``("mark", label)`` markers, in stream order.
    """
    trace = CommandTrace()
    for item in items:
        if item[0] == "mark":
            trace.mark(item[1])
            continue
        op, rows = item[0], item[1]
        payload = np.asarray(item[2], dtype=np.uint8) if len(item) > 2 else None
        trace.record(op, SUB, tuple(rows), payload)
    log = ChargeLog()
    for op, sub, count, time_ns in charges:
        log.charge(op, sub, count, time_ns)
    for serial, makespan, commands in flushes:
        log.flush(serial, makespan, commands)
    return TraceDocument(
        engine=engine,
        trace=trace,
        charge_log=log,
        geometry=dict(GEOMETRY),
        layout=dict(layout) if layout else None,
        timing=dict(TIMING),
        ledger=ledger,
        complete=complete,
        cold_start=cold_start,
    )


def rules_of(doc):
    return verify_document(doc).rules()


FULL_ROW = [1, 0, 1, 0, 1, 0, 1, 0]

#: the seeded known-bad corpus: (name, doc factory, the one expected rule)
CORPUS = [
    (
        "unknown-mnemonic",
        lambda: make_doc([("FROB", (1, 2))]),
        "V001",
    ),
    (
        "aap1-wrong-arity",
        lambda: make_doc([("AAP1", (1, 2, 3))]),
        "V002",
    ),
    (
        "aap1-dead-self-copy",
        lambda: make_doc([("ROW_INIT", (1,), [1]), ("AAP1", (1, 1))]),
        "V002",
    ),
    (
        "row-out-of-range",
        lambda: make_doc([("AAP1", (1, 99))]),
        "V002",
    ),
    (
        "aap2-duplicate-sources",
        lambda: make_doc([("ROW_INIT", (1,), [1]), ("AAP2", (1, 1, 60))]),
        "V002",
    ),
    (
        "aap3-duplicate-sources",
        lambda: make_doc(
            [
                ("ROW_INIT", (1,), [1]),
                ("ROW_INIT", (2,), [0]),
                ("AAP3", (1, 2, 2, 60)),
            ]
        ),
        "V002",
    ),
    (
        "row-init-bad-fill",
        lambda: make_doc([("ROW_INIT", (1,), [5])]),
        "V002",
    ),
    (
        "mem-wr-short-payload",
        lambda: make_doc([("MEM_WR", (1,), [1, 0])]),
        "V002",
    ),
    (
        "read-of-uninitialised-row",
        lambda: make_doc([("AAP1", (5, 60))]),
        "V003",
    ),
    (
        "read-of-cold-compute-row",
        lambda: make_doc([("AAP1", (60, 5))], cold_start=False),
        "V003",
    ),
    (
        "latch-use-before-load",
        lambda: make_doc([("SUM", (0, 1, 60))], cold_start=False),
        "V004",
    ),
    (
        "aap2-missing-precharge",
        lambda: make_doc([("AAP2", (0, 1, 1))], cold_start=False),
        "V005",
    ),
    (
        "sum-missing-precharge",
        lambda: make_doc(
            [("LATCH_CLR", ()), ("SUM", (0, 1, 0))], cold_start=False
        ),
        "V005",
    ),
    (
        "kmer-slot-double-insert",
        lambda: make_doc(
            [
                ("mark", "hashmap:begin"),
                ("AAP1", (40, 2)),
                ("AAP1", (41, 2)),
                ("mark", "hashmap:end"),
            ],
            cold_start=False,
            layout=LAYOUT,
        ),
        "V006",
    ),
    (
        "copy-into-value-region",
        lambda: make_doc(
            [
                ("mark", "hashmap:begin"),
                ("AAP1", (40, 18)),
                ("mark", "hashmap:end"),
            ],
            cold_start=False,
            layout=LAYOUT,
        ),
        "V006",
    ),
    (
        "compute-destination-off-compute-rows",
        lambda: make_doc(
            [
                ("mark", "hashmap:begin"),
                ("AAP2", (0, 1, 5)),
                ("mark", "hashmap:end"),
            ],
            cold_start=False,
            layout=LAYOUT,
        ),
        "V007",
    ),
    (
        "host-write-into-kmer-region",
        lambda: make_doc(
            [
                ("mark", "hashmap:begin"),
                ("MEM_WR", (3,), FULL_ROW),
                ("mark", "hashmap:end"),
            ],
            cold_start=False,
            layout=LAYOUT,
        ),
        "V007",
    ),
    (
        "ledger-time-off-cost-table",
        lambda: make_doc(
            [("ROW_INIT", (1,), [1]), ("ROW_INIT", (2,), [0])],
            ledger={"time_ns": 1.0, "commands": {"AAP1": 2}},
        ),
        "V008",
    ),
    (
        "ledger-unpriced-mnemonic",
        lambda: make_doc([], ledger={"time_ns": 0.0, "commands": {"GANG": 1}}),
        "V008",
    ),
    (
        "ledger-count-mismatch",
        lambda: make_doc(
            [("ROW_INIT", (1,), [1])],
            ledger={"time_ns": 255.0, "commands": {"AAP1": 3}},
        ),
        "V009",
    ),
    (
        "latch-clr-charged-to-ledger",
        lambda: make_doc(
            [("LATCH_CLR", ())],
            ledger={"time_ns": 0.0, "commands": {"LATCH_CLR": 1}},
        ),
        "V009",
    ),
    (
        "charge-unknown-mnemonic",
        lambda: make_doc(charges=[("FROB", SUB, 1, 0.0)], flushes=[(0.0, 0.0, 0)]),
        "C001",
    ),
    (
        "charge-nonpositive-count",
        lambda: make_doc(charges=[("AAP1", SUB, 0, 0.0)], flushes=[(0.0, 0.0, 0)]),
        "C002",
    ),
    (
        "charge-off-cost-table",
        lambda: make_doc(
            charges=[("AAP1", SUB, 2, 100.0)], flushes=[(100.0, 100.0, 2)]
        ),
        "C003",
    ),
    (
        "flush-math-wrong",
        lambda: make_doc(
            charges=[("AAP1", SUB, 2, 170.0)], flushes=[(100.0, 85.0, 2)]
        ),
        "C004",
    ),
    (
        "flush-non-monotone-makespan",
        lambda: make_doc(
            charges=[("AAP1", SUB, 2, 170.0)], flushes=[(170.0, 200.0, 2)]
        ),
        "C004",
    ),
    (
        "charges-never-flushed",
        lambda: make_doc(charges=[("AAP1", SUB, 1, 85.0)]),
        "C005",
    ),
]


@pytest.mark.parametrize(
    "name,factory,rule", CORPUS, ids=[c[0] for c in CORPUS]
)
def test_known_bad_corpus_is_flagged_precisely(name, factory, rule):
    """Each seeded hazard is caught, and caught alone (no noise)."""
    assert rules_of(factory()) == {rule}


def test_clean_stream_has_no_findings():
    doc = make_doc(
        [
            ("ROW_INIT", (60, ), [0]),
            ("AAP1", (0, 61)),
            ("AAP2", (0, 1, 62)),
            ("AAP3", (0, 1, 2, 63)),
            ("SUM", (3, 4, 60)),  # latch set by the TRA above
            ("LATCH_LD", (5,)),
            ("LATCH_CLR", ()),
            ("MEM_WR", (6,), FULL_ROW),
            ("MEM_RD", (6,)),
            ("DPU", (6,)),
            ("DPU", ()),
        ],
        cold_start=False,
    )
    assert rules_of(doc) == set()


def test_scrub_window_suspends_kmer_write_rule():
    doc = make_doc(
        [
            ("mark", "hashmap:begin"),
            ("mark", "scrub:begin"),
            ("MEM_WR", (3,), FULL_ROW),
            ("mark", "scrub:end"),
            ("mark", "hashmap:end"),
        ],
        cold_start=False,
        layout=LAYOUT,
    )
    assert rules_of(doc) == set()


def test_in_place_tra_is_legal():
    """AAP3 with des == a source (ripple carry) must not be flagged."""
    doc = make_doc([("AAP3", (0, 1, 2, 2))], cold_start=False)
    assert rules_of(doc) == set()


def test_vrf_ledger_skips_accounting_fold():
    """Verified runs recharge retries without re-tracing: no V008/V009."""
    doc = make_doc(
        [],
        ledger={"time_ns": 1.0, "commands": {"AAP1": 99, "VRF_RETRY": 1}},
    )
    assert rules_of(doc) == set()


def test_parallel_flush_makespan_accepted():
    """Distinct resources overlap: makespan < serial is the point."""
    doc = make_doc(
        charges=[
            ("AAP1", (0, 0, 0), 2, 170.0),
            ("AAP1", (0, 0, 1), 2, 170.0),
            ("DPU", (0, 0, 0), 5, 5.0),
        ],
        flushes=[(345.0, 170.0, 9)],
    )
    assert rules_of(doc) == set()


# ----- real pipeline traces must be finding-free -----------------------------


def _record_pipeline(engine):
    from repro.assembly.pipeline import _sized_device, assemble_with_pim
    from repro.genome import ReadSimulator, synthetic_chromosome

    reference = synthetic_chromosome(200, seed=11)
    simulator = ReadSimulator(read_length=30, seed=2)
    reads = simulator.sample(
        reference, simulator.reads_for_coverage(len(reference), 5)
    )
    pim = _sized_device(reads, 9)
    recorder = TraceRecorder(pim, engine=engine)
    with recorder:
        assemble_with_pim(reads, k=9, pim=pim, engine=engine)
    return recorder.document(workload="test")


@pytest.fixture(scope="module")
def scalar_doc():
    return _record_pipeline("scalar")


@pytest.fixture(scope="module")
def bulk_doc():
    return _record_pipeline("bulk")


def test_scalar_pipeline_trace_is_clean(scalar_doc):
    report = verify_document(scalar_doc)
    assert report.render() == ""
    assert len(scalar_doc.trace) > 1000  # the run was actually traced


def test_bulk_pipeline_trace_is_clean(bulk_doc):
    report = verify_document(bulk_doc)
    assert report.render() == ""
    assert len(bulk_doc.charge_log.charges) > 100  # gangs were logged


def test_document_round_trips_through_json(tmp_path, bulk_doc):
    path = save_document(tmp_path / "doc.json", bulk_doc)
    loaded = load_document(path)
    assert loaded.engine == bulk_doc.engine
    assert loaded.geometry == bulk_doc.geometry
    assert loaded.layout == bulk_doc.layout
    assert len(loaded.trace) == len(bulk_doc.trace)
    assert loaded.trace.marks == bulk_doc.trace.marks
    assert loaded.charge_log.charges == bulk_doc.charge_log.charges
    assert loaded.charge_log.flushes == bulk_doc.charge_log.flushes
    assert loaded.ledger == bulk_doc.ledger
    assert verify_document(loaded).render() == ""


def test_corpus_round_trips_and_stays_flagged(tmp_path):
    """Serialisation must not wash out a single corpus hazard."""
    for name, factory, rule in CORPUS:
        path = save_document(tmp_path / f"{name}.json", factory())
        assert verify_document(load_document(path)).rules() == {rule}, name


# ----- format errors ---------------------------------------------------------


def test_load_rejects_wrong_format_tag(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format": "nope/9"}')
    with pytest.raises(TraceFormatError):
        load_document(path)


def test_load_rejects_non_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json at all")
    with pytest.raises(TraceFormatError):
        load_document(path)


def test_load_rejects_missing_file(tmp_path):
    with pytest.raises(TraceFormatError):
        load_document(tmp_path / "absent.json")


def test_from_json_rejects_bad_engine():
    with pytest.raises(TraceFormatError):
        TraceDocument.from_json(
            {"format": "repro-aap-trace/1", "engine": "warp"}
        )


def test_from_json_rejects_bad_geometry():
    with pytest.raises(TraceFormatError):
        TraceDocument.from_json(
            {
                "format": "repro-aap-trace/1",
                "engine": "scalar",
                "geometry": {"rows": "many"},
            }
        )


# ----- the inline checker ----------------------------------------------------


def test_inline_checker_strict_raises_at_call_site():
    checker = InlineChecker(geometry=GEOMETRY, strict=True)
    with pytest.raises(TraceHazardError):
        checker.record("AAP2", SUB, (1, 1, 60))


def test_inline_checker_collects_when_not_strict():
    checker = InlineChecker(geometry=GEOMETRY, strict=False)
    checker.record("AAP2", SUB, (1, 1, 60))
    checker.record("FROB", SUB, ())
    assert {"V001", "V002"} <= checker.report.rules()


def test_inline_checker_tees_to_a_real_trace():
    tee = CommandTrace()
    checker = InlineChecker(geometry=GEOMETRY, strict=False, tee=tee)
    checker.record("AAP1", SUB, (0, 60))
    checker.mark("hashmap:begin")
    assert len(tee) == 1
    assert tee.marks == [(1, "hashmap:begin")]


def test_inline_checker_passes_a_real_hashmap_run():
    """Strict live checking over a real scalar counting run: no raise."""
    from repro.assembly.hashmap import PimKmerCounter
    from repro.core.platform import PimAssembler
    from repro.genome.sequence import DnaSequence

    pim = PimAssembler.small(subarrays=8, rows=256, cols=64)
    checker = InlineChecker.for_platform(pim, strict=True)
    pim.controller.attach_trace(checker)
    try:
        counter = PimKmerCounter(pim, 5)
        counter.add_sequence(DnaSequence("ACGTACGTTGCA"))
        counts = counter.counts()
    finally:
        pim.controller.attach_trace(None)
    assert counts and checker.report.ok
