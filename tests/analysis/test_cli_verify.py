"""The ``verify-trace`` CLI and ``assemble --aap-trace-out`` recording."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def simulated(tmp_path):
    out = tmp_path / "sim"
    rc = main(
        [
            "simulate",
            "-o",
            str(out),
            "--length",
            "300",
            "--coverage",
            "5",
            "--read-length",
            "40",
            "--seed",
            "3",
        ]
    )
    assert rc == 0
    return out


@pytest.mark.parametrize("exec_engine", ["scalar", "bulk"])
def test_assemble_records_verifiable_trace(simulated, tmp_path, exec_engine):
    trace = tmp_path / f"trace_{exec_engine}.json"
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "-k",
            "13",
            "--exec-engine",
            exec_engine,
            "--aap-trace-out",
            str(trace),
        ]
    )
    assert rc == 0
    assert trace.exists()
    assert main(["verify-trace", str(trace)]) == 0


def test_verify_trace_flags_seeded_hazard(simulated, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "-k",
            "13",
            "--aap-trace-out",
            str(trace),
        ]
    )
    assert rc == 0
    doc = json.loads(trace.read_text())
    # seed a read of an uninitialised compute row at the stream head
    compute_row = doc["geometry"]["data_rows"] + 2
    doc["commands"].insert(
        0, {"op": "AAP1", "sub": [0, 0, 0], "rows": [compute_row, 5]}
    )
    trace.write_text(json.dumps(doc))
    assert main(["verify-trace", str(trace)]) == 1
    err = capsys.readouterr().err
    assert "[V003]" in err


def test_verify_trace_rejects_garbage_with_input_exit(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "something-else"}')
    assert main(["verify-trace", str(bad)]) == 2


def test_verify_trace_missing_file_is_input_error(tmp_path):
    assert main(["verify-trace", str(tmp_path / "absent.json")]) == 2


def test_aap_trace_out_requires_pim_engine(simulated, tmp_path):
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "--engine",
            "software",
            "--aap-trace-out",
            str(tmp_path / "trace.json"),
        ]
    )
    assert rc == 2


def test_aap_trace_out_rejects_job_mode(simulated, tmp_path):
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "--job-dir",
            str(tmp_path / "job"),
            "--aap-trace-out",
            str(tmp_path / "trace.json"),
        ]
    )
    assert rc == 2


def test_verify_trace_json_output(simulated, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "-k",
            "13",
            "--aap-trace-out",
            str(trace),
        ]
    )
    assert rc == 0
    capsys.readouterr()
    assert main(["verify-trace", "--json", str(trace)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["total_findings"] == 0
    (document,) = payload["documents"]
    assert document["engine"] == "scalar"
    assert document["findings"] == []
    assert document["commands"] > 0


def test_verify_trace_json_reports_findings(simulated, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "-k",
            "13",
            "--aap-trace-out",
            str(trace),
        ]
    )
    assert rc == 0
    doc = json.loads(trace.read_text())
    compute_row = doc["geometry"]["data_rows"] + 2
    doc["commands"].insert(
        0, {"op": "AAP1", "sub": [0, 0, 0], "rows": [compute_row, 5]}
    )
    trace.write_text(json.dumps(doc))
    capsys.readouterr()
    assert main(["verify-trace", "--json", str(trace)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    rules = {f["rule"] for f in payload["documents"][0]["findings"]}
    assert "V003" in rules


def test_optimize_trace_reduces_and_reverifies(simulated, tmp_path):
    trace = tmp_path / "trace.json"
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "-k",
            "13",
            "--aap-trace-out",
            str(trace),
        ]
    )
    assert rc == 0
    out = tmp_path / "trace.opt.json"
    assert main(["optimize-trace", str(trace), "-o", str(out)]) == 0
    assert out.exists()
    before = json.loads(trace.read_text())
    after = json.loads(out.read_text())
    assert len(after["commands"]) < len(before["commands"])
    assert after["meta"]["aap_opt"]["justifications_total"] > 0
    assert after["meta"]["gangs"]
    # the optimised stream must be finding-free under the verifier
    assert main(["verify-trace", str(out)]) == 0


def test_optimize_trace_bulk_document_is_identity(simulated, tmp_path, capsys):
    trace = tmp_path / "trace_bulk.json"
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "-k",
            "13",
            "--exec-engine",
            "bulk",
            "--aap-trace-out",
            str(trace),
        ]
    )
    assert rc == 0
    out = tmp_path / "trace_bulk.opt.json"
    assert main(["optimize-trace", str(trace), "-o", str(out)]) == 0
    err = capsys.readouterr().err
    assert "[O001]" in err
    before = json.loads(trace.read_text())
    after = json.loads(out.read_text())
    assert len(after["commands"]) == len(before["commands"])
    assert main(["verify-trace", str(out)]) == 0


def test_optimize_trace_garbage_is_input_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "something-else"}')
    assert main(["optimize-trace", str(bad)]) == 2


def test_assemble_aap_opt_replays_bit_identical(simulated, tmp_path, capsys):
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "-k",
            "13",
            "--aap-opt",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "replay bit-identical" in out
    assert (tmp_path / "contigs.fa").exists()


def test_aap_opt_requires_scalar_exec_engine(simulated, tmp_path):
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "--exec-engine",
            "bulk",
            "--aap-opt",
        ]
    )
    assert rc == 2
