"""The ``verify-trace`` CLI and ``assemble --aap-trace-out`` recording."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def simulated(tmp_path):
    out = tmp_path / "sim"
    rc = main(
        [
            "simulate",
            "-o",
            str(out),
            "--length",
            "300",
            "--coverage",
            "5",
            "--read-length",
            "40",
            "--seed",
            "3",
        ]
    )
    assert rc == 0
    return out


@pytest.mark.parametrize("exec_engine", ["scalar", "bulk"])
def test_assemble_records_verifiable_trace(simulated, tmp_path, exec_engine):
    trace = tmp_path / f"trace_{exec_engine}.json"
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "-k",
            "13",
            "--exec-engine",
            exec_engine,
            "--aap-trace-out",
            str(trace),
        ]
    )
    assert rc == 0
    assert trace.exists()
    assert main(["verify-trace", str(trace)]) == 0


def test_verify_trace_flags_seeded_hazard(simulated, tmp_path, capsys):
    trace = tmp_path / "trace.json"
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "-k",
            "13",
            "--aap-trace-out",
            str(trace),
        ]
    )
    assert rc == 0
    doc = json.loads(trace.read_text())
    # seed a read of an uninitialised compute row at the stream head
    compute_row = doc["geometry"]["data_rows"] + 2
    doc["commands"].insert(
        0, {"op": "AAP1", "sub": [0, 0, 0], "rows": [compute_row, 5]}
    )
    trace.write_text(json.dumps(doc))
    assert main(["verify-trace", str(trace)]) == 1
    err = capsys.readouterr().err
    assert "[V003]" in err


def test_verify_trace_rejects_garbage_with_input_exit(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"format": "something-else"}')
    assert main(["verify-trace", str(bad)]) == 2


def test_verify_trace_missing_file_is_input_error(tmp_path):
    assert main(["verify-trace", str(tmp_path / "absent.json")]) == 2


def test_aap_trace_out_requires_pim_engine(simulated, tmp_path):
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "--engine",
            "software",
            "--aap-trace-out",
            str(tmp_path / "trace.json"),
        ]
    )
    assert rc == 2


def test_aap_trace_out_rejects_job_mode(simulated, tmp_path):
    rc = main(
        [
            "assemble",
            str(simulated / "reads.fq"),
            "-o",
            str(tmp_path / "contigs.fa"),
            "--job-dir",
            str(tmp_path / "job"),
            "--aap-trace-out",
            str(tmp_path / "trace.json"),
        ]
    )
    assert rc == 2
