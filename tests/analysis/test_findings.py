"""The shared findings model."""

from repro.analysis.findings import (
    EXIT_FINDINGS,
    EXIT_INPUT,
    EXIT_OK,
    EXIT_RUNTIME,
    Finding,
    FindingReport,
    Severity,
)


def test_exit_code_taxonomy_matches_cli():
    from repro.cli import EXIT_INPUT_ERROR, EXIT_RUNTIME_ERROR

    assert EXIT_OK == 0
    assert EXIT_FINDINGS == 1
    assert EXIT_INPUT == EXIT_INPUT_ERROR == 2
    assert EXIT_RUNTIME == EXIT_RUNTIME_ERROR == 3


def test_finding_str_with_location():
    f = Finding(rule="V003", message="boom", source="trace.json", location=7)
    assert str(f) == "trace.json:7: error: [V003] boom"


def test_finding_str_without_location_or_source():
    f = Finding(rule="L001", message="clock")
    assert str(f) == "<input>: error: [L001] clock"


def test_empty_report_is_ok_and_exits_zero():
    report = FindingReport()
    assert report.ok
    assert report.exit_code == EXIT_OK
    assert len(report) == 0
    assert report.render() == ""


def test_error_finding_fails_the_report():
    report = FindingReport()
    report.add("V001", "bad")
    assert not report.ok
    assert report.exit_code == EXIT_FINDINGS
    assert report.rules() == {"V001"}


def test_warnings_do_not_affect_exit_code():
    report = FindingReport()
    report.add("V999", "soft", severity=Severity.WARNING)
    assert report.ok
    assert report.exit_code == EXIT_OK
    assert len(report) == 1
    assert report.errors() == []


def test_extend_merges_in_order():
    a = FindingReport()
    a.add("V001", "first")
    b = FindingReport()
    b.add("L004", "second")
    a.extend(b)
    assert [f.rule for f in a] == ["V001", "L004"]
