#!/usr/bin/env python3
"""Platform tooling: command traces, scheduling, replay.

Records the exact AAP command stream of a PIM k-mer-counting run, then
uses the three trace tools:

* **analysis** — command mix, per-sub-array load, imbalance;
* **scheduling** — the bank/GRB-aware makespan, i.e. how much
  sub-array parallelism the algorithm actually exposes;
* **replay** — re-issues the trace on a fresh device and verifies the
  final memory state is bit-identical (the trace fully describes the
  computation).

Run:
    python examples/trace_analysis.py
"""

from repro.assembly import PimKmerCounter
from repro.core import CommandTrace, PimAssembler, analyse, replay
from repro.core.scheduler import audit_parallelism
from repro.genome import synthetic_chromosome


def main() -> None:
    print("=== recording a PIM k-mer counting run ===")
    pim = PimAssembler.small(subarrays=2, rows=256, cols=64, mats=4)
    trace = CommandTrace()
    pim.controller.attach_trace(trace)

    reference = synthetic_chromosome(600, seed=1234)
    counter = PimKmerCounter(pim, 11)
    counter.add_sequence(reference)
    print(f"counted {len(counter)} distinct 11-mers; trace has "
          f"{len(trace)} commands")

    print("\n--- command-mix analysis ---")
    stats = analyse(trace)
    for mnemonic, count in sorted(stats.command_mix.items()):
        print(f"  {mnemonic:>8}: {count:7d}")
    busiest = stats.busiest_subarray
    print(f"  busiest sub-array: {busiest[0]} ({busiest[1]} commands)")
    print(f"  load imbalance   : {stats.load_imbalance():.2f}x")

    print("\n--- scheduling (bank/GRB-aware) ---")
    report = audit_parallelism(trace)
    print(f"  serial command time : {report.serial_ns / 1e6:8.3f} ms")
    print(f"  scheduled makespan  : {report.makespan_ns / 1e6:8.3f} ms")
    print(f"  exposed parallelism : {report.parallel_speedup:.2f}x "
          f"over {len(report.per_subarray_busy_ns)} sub-arrays")
    print(f"  mean utilisation    : {report.utilisation:.0%}")

    print("\n--- replay verification ---")
    fresh = PimAssembler.small(subarrays=2, rows=256, cols=64, mats=4)
    replay(trace, fresh.controller)
    identical = all(
        (
            pim.device.subarray_at(key).snapshot()
            == fresh.device.subarray_at(key).snapshot()
        ).all()
        for key in pim.device.subarray_keys()
    )
    print(f"  replayed {len(trace)} commands on a fresh device: "
          f"{'state identical' if identical else 'STATE MISMATCH'}")
    assert identical

    print("\nfirst five commands of the trace:")
    for entry in list(trace)[:5]:
        print(f"  {entry}")


if __name__ == "__main__":
    main()
