#!/usr/bin/env python3
"""Micro-benchmark: bulk in-memory XNOR and addition.

Part 1 exercises the *functional* simulator: arbitrary-length bit
vectors are striped over sub-arrays, computed with ganged AAP commands
and checked against NumPy, with the cycle/energy ledger printed.

Part 2 runs the *analytic* Fig. 3b sweep — the raw throughput of every
platform on 2^27..2^29-bit vectors — and prints the headline ratios
(P-A vs CPU 8.4x; vs Ambit 2.3x, D1 1.9x, D3 3.7x).

Run:
    python examples/pim_microbenchmark.py
"""

import numpy as np

from repro.core import PimAssembler
from repro.eval import headline_ratios, run_throughput_sweep
from repro.eval.tables import format_throughput


def functional_demo() -> None:
    print("=== functional simulator: ganged bulk XNOR ===")
    pim = PimAssembler.small(subarrays=8, rows=128, cols=64)
    rng = np.random.default_rng(2020)
    bits = 4_000
    a = rng.integers(0, 2, bits).astype(np.uint8)
    b = rng.integers(0, 2, bits).astype(np.uint8)

    result = pim.bulk_xnor(a, b)
    expected = (1 - (a ^ b)).astype(np.uint8)
    assert (result == expected).all(), "functional XNOR mismatch"
    totals = pim.stats.totals()
    print(f"  {bits} bits XNORed correctly")
    print(f"  simulated time   : {totals.time_ns / 1e3:10.2f} us")
    print(f"  simulated energy : {totals.energy_nj:10.2f} nJ")
    print(f"  command mix      : {dict(sorted(totals.commands.items()))}")

    print("\n=== functional simulator: per-column addition ===")
    pim2 = PimAssembler.small(subarrays=2, rows=256, cols=128)
    va = rng.integers(0, 2**10, 128)
    vb = rng.integers(0, 2**10, 128)
    wa = pim2.store_word_columns(va, bits=10)
    wb = pim2.store_word_columns(vb, bits=10)
    ws = pim2.pim_add(wa, wb)
    got = pim2.read_word_columns(ws)
    assert (got == va + vb).all(), "functional addition mismatch"
    print(f"  128 x 10-bit additions verified (2 cycles per bit plane)")
    print(f"  simulated time   : {pim2.stats.totals().time_ns / 1e3:10.2f} us")


def analytic_sweep() -> None:
    print("\n=== Fig. 3b analytic throughput sweep ===")
    sweep = run_throughput_sweep()
    print(format_throughput(sweep))
    print("\nheadline ratios (paper: CPU 8.4x, Ambit 2.3x, D1 1.9x, D3 3.7x):")
    for name, value in headline_ratios(sweep).items():
        print(f"  {name:>16}: {value:5.2f}x")


def main() -> None:
    functional_demo()
    analytic_sweep()


if __name__ == "__main__":
    main()
