#!/usr/bin/env python3
"""Reliability study: Table I and the Fig. 3a transient, behaviourally.

Part 1 reruns the 10,000-trial Monte-Carlo process-variation study at
every variation level the paper reports, comparing Ambit's triple-row
activation against PIM-Assembler's two-row activation.

Part 2 draws the XNOR2 transient waveforms (ASCII) for all four input
patterns, showing the bit line regenerating to Vdd when Di = Dj and to
GND otherwise — the Fig. 3a behaviour.

Run:
    python examples/reliability_study.py
"""

from repro.eval.reliability import format_table, run_reliability_table
from repro.eval.transient import run_transient_study


def ascii_plot(times, values, vdd: float, width: int = 64, height: int = 8) -> str:
    """Tiny ASCII line plot of one waveform."""
    rows = [[" "] * width for _ in range(height)]
    n = len(values)
    for col in range(width):
        idx = int(col * (n - 1) / (width - 1))
        level = values[idx] / vdd
        row = height - 1 - int(round(level * (height - 1)))
        row = min(max(row, 0), height - 1)
        rows[row][col] = "*"
    lines = []
    for i, row in enumerate(rows):
        label = "Vdd" if i == 0 else ("GND" if i == height - 1 else "   ")
        lines.append(f"{label} |" + "".join(row))
    return "\n".join(lines)


def main() -> None:
    print("=== Table I: process variation (10,000 Monte-Carlo trials) ===")
    table = run_reliability_table(trials=10_000)
    print(format_table(table))
    print(
        "\nordering (2-row activation more robust than TRA at every "
        f"level): {'HOLDS' if table.all_orderings_hold else 'VIOLATED'}"
    )

    print("\n=== Fig. 3a: XNOR2 transient (BL voltage) ===")
    study = run_transient_study()
    for pattern, expected in [(p, study.expected_bl(p)) for p in sorted(study.waveforms)]:
        wave = study.waveforms[pattern]
        rail = "Vdd" if expected > 0 else "GND"
        print(f"\nDiDj = {pattern}  (XNOR2 -> BL regenerates to {rail})")
        print(ascii_plot(wave.time_ns, wave.traces["BL"], study.vdd))
    print(
        "\nall four patterns settle to the correct rail: "
        f"{study.all_patterns_correct}"
    )


if __name__ == "__main__":
    main()
