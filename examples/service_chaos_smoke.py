"""Service chaos smoke: storm the multi-tenant service, audit the wreck.

Demonstrates (and asserts) the service layer's contracts end to end:

1. build a seeded multi-tenant workload and run it through the
   :class:`~repro.service.service.AssemblyService` while injecting
   mid-stage kills, impossible stage budgets, expired deadlines,
   corrupt inputs and in-memory fault storms — plus deliberate
   overload so admission control must shed;
2. audit with :meth:`~repro.service.chaos.ChaosReport.violations`:
   zero jobs lost or duplicated, survivors bit-identical to serial
   baselines, the round-robin fairness bound intact, every
   non-completion typed;
3. re-run one surviving job's reads through the CLI with
   ``--aap-trace-out`` and ``verify-trace`` the recorded command
   stream — a job that lived through the chaos run must still produce
   a finding-free AAP program.

Also exercised by CI (`service-chaos-smoke` job).  Exit 0 on success;
any broken promise raises.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.genome.io_fasta import FastqRecord, write_fastq  # noqa: E402
from repro.service.chaos import ChaosConfig, run_chaos  # noqa: E402

#: seeded so kills, timeouts AND admission sheds all occur (asserted)
SCENARIO = ChaosConfig(
    seed=2020,
    tenants=3,
    jobs_per_tenant=5,
    workers=2,
    max_queued=3,
    degrade_engine_depth=4,
    weights={
        "none": 2,
        "kill": 3,
        "timeout": 2,
        "deadline": 1,
        "corrupt": 1,
        "storm": 1,
        "bitrot": 2,
    },
)


def verify_survivor_trace(report, tmp: Path) -> None:
    """Record + verify the AAP stream of one chaos survivor's workload."""
    survivor = next(
        t
        for t in report.service_report.completed
        if t.request.pim_factory is None  # storm platforms inject faults
    )
    job = next(
        j
        for j in report.planned
        if j.tenant == survivor.tenant and j.name == survivor.name
    )
    reads_path = tmp / "survivor.fq"
    write_fastq(
        reads_path,
        [FastqRecord(r.name, str(r.sequence)) for r in job.reads],
    )
    trace_path = tmp / "survivor-aap.json"
    env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}
    for argv in (
        [
            "assemble",
            str(reads_path),
            "-o",
            str(tmp / "survivor.fa"),
            "-k",
            str(report.config.k),
            "--aap-trace-out",
            str(trace_path),
        ],
        ["verify-trace", str(trace_path)],
    ):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            print(proc.stdout + proc.stderr, file=sys.stderr)
            raise AssertionError(
                f"`{argv[0]}` exited {proc.returncode} for the survivor"
            )
    print(
        f"survivor {survivor.tenant}/{survivor.name}: AAP trace recorded "
        "and verified finding-free"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="service-chaos-") as tmp:
        tmp = Path(tmp)
        report = run_chaos(tmp / "chaos", SCENARIO)
        print(report)

        problems = report.violations()
        if problems:
            for problem in problems:
                print(f"VIOLATION: {problem}", file=sys.stderr)
            raise AssertionError(f"{len(problems)} service promise(s) broken")

        summary = report.summary()
        mix = summary["injections"]
        assert mix["kill"] >= 1, f"scenario never killed a job: {mix}"
        assert mix["timeout"] >= 1, f"scenario never timed a job out: {mix}"
        assert mix["bitrot"] >= 1, f"scenario never rotted a job: {mix}"
        assert summary["shed"] >= 1, "overload never forced a typed shed"
        assert summary["completed"] >= 1, "nothing survived to compare"
        bitrot_jobs = {
            j.key for j in report.planned if j.injection == "bitrot"
        }
        bitrot_done = [
            t
            for t in report.service_report.completed
            if f"{t.tenant}/{t.name}" in bitrot_jobs
        ]
        assert bitrot_done, "no bitrot job survived to prove SECDED works"
        healed = sum(
            t.outcome.result.integrity.words_corrected for t in bitrot_done
        )
        print(
            f"bitrot: {len(bitrot_done)} job(s) completed under retention "
            f"rot, {healed} word(s) healed by SECDED scrub, contigs "
            "bit-identical to baseline"
        )
        resumed = summary["resumed"]
        print(
            f"audit clean: {summary['completed']} completed "
            f"({resumed} via journal resume), {summary['failed']} typed "
            f"failures, {summary['shed']} typed sheds, "
            f"{summary['submit_errors']} typed submit errors, "
            "0 lost, 0 duplicated, fairness bound intact"
        )

        verify_survivor_trace(report, tmp)
    return 0


if __name__ == "__main__":
    sys.exit(main())
