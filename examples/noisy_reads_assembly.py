#!/usr/bin/env python3
"""Domain scenario: assembling error-containing reads.

The paper samples error-free reads; real sequencers substitute bases
at ~0.1-1 %.  This example shows the standard de Bruijn counter-
measure — k-mer frequency filtering (``min_count``) — working on the
PIM pipeline: erroneous k-mers appear once or twice, genuine k-mers
appear ~coverage times, so thresholding removes the error tips/bulges
before traversal.

It also demonstrates the scaffolding extension (paper stage 3, left as
future work there) joining the filtered contigs.

Run:
    python examples/noisy_reads_assembly.py
"""

from repro import assemble_with_pim
from repro.assembly import evaluate_assembly, greedy_scaffold, scaffold_n50
from repro.core import PimAssembler
from repro.genome import ReadSimulator, synthetic_chromosome


def run_one(error_rate: float, min_count: int, reference, k: int = 15):
    simulator = ReadSimulator(read_length=70, seed=99, error_rate=error_rate)
    count = simulator.reads_for_coverage(len(reference), 30)
    reads = simulator.sample(reference, count)
    # Error k-mers inflate the table, so give the device headroom.
    pim = PimAssembler.small(subarrays=16, rows=512, cols=64)
    result = assemble_with_pim(reads, k=k, pim=pim, min_count=min_count)
    report = evaluate_assembly(result.contigs, reference)
    return result, report


def main() -> None:
    reference = synthetic_chromosome(900, seed=2024)
    print(f"reference: {len(reference)} bp synthetic chromosome\n")

    print("error-free reads, no filtering:")
    _, clean = run_one(error_rate=0.0, min_count=1, reference=reference)
    print(f"  {clean}")

    print("\n1% substitution errors, no filtering (graph polluted):")
    _, noisy = run_one(error_rate=0.01, min_count=1, reference=reference)
    print(f"  {noisy}")

    print("\n1% substitution errors, min_count=3 (errors filtered):")
    result, filtered = run_one(error_rate=0.01, min_count=3, reference=reference)
    print(f"  {filtered}")

    assert filtered.n50 >= noisy.n50, "filtering should not fragment further"
    print(
        f"\nfiltering recovered N50 {noisy.n50} -> {filtered.n50} "
        f"({filtered.num_contigs} contigs)"
    )

    if len(result.contigs) > 1:
        scaffolds = greedy_scaffold(result.contigs, min_overlap=10)
        print(
            f"scaffolding extension: {len(result.contigs)} contigs -> "
            f"{len(scaffolds)} scaffolds (N50 {scaffold_n50(scaffolds)})"
        )
    else:
        print("single contig already — scaffolding not needed")


if __name__ == "__main__":
    main()
