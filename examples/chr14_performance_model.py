#!/usr/bin/env python3
"""Paper-scale performance model: the chromosome-14 evaluation.

Reproduces every Section IV comparison analytically — the same
operation-count formulas the functional simulator obeys, fed through
the per-platform timing models:

* Fig. 9a: execution-time breakdown (hashmap / deBruijn / traverse)
  for k in {16, 22, 26, 32} on GPU, P-A, Ambit, D3 and D1;
* Fig. 9b: power consumption of the same runs;
* Fig. 10: the power/delay trade-off against the parallelism degree;
* Fig. 11: memory-bottleneck and resource-utilisation ratios.

Run:
    python examples/chr14_performance_model.py
"""

from repro.eval import (
    chr14_workload,
    run_all,
    run_memory_wall_study,
    run_tradeoff_sweep,
)
from repro.eval.tables import (
    format_execution,
    format_memory_wall,
    format_speedups,
    format_tradeoff,
)
from repro.genome import CHR14_READ_COUNT, CHR14_READ_LENGTH
from repro.platforms import assembly_platforms


def main() -> None:
    print("=== chromosome-14 workload (paper Section IV) ===")
    print(f"reads: {CHR14_READ_COUNT:,} x {CHR14_READ_LENGTH} bp")
    w16 = chr14_workload(16)
    print(
        f"k=16: {w16.total_kmers / 1e9:.2f} G queries, "
        f"{w16.unique_kmers / 1e6:.0f} M distinct k-mers, "
        f"footprint ~{w16.total_bytes / 1e9:.1f} GB"
    )

    platforms = assembly_platforms()
    print("\n=== Fig. 9a/9b: execution time and power ===")
    for k in (16, 22, 26, 32):
        results = run_all(platforms, chr14_workload(k))
        print(format_execution(results))
        print("      " + format_speedups(results))

    print("\n=== Fig. 10: power/delay vs parallelism degree ===")
    print(format_tradeoff(run_tradeoff_sweep()))

    print("\n=== Fig. 11: memory wall (MBR) and utilisation (RUR) ===")
    print(format_memory_wall(run_memory_wall_study()))

    print(
        "\npaper headline checks: P-A hashmap speed-up over GPU grows "
        "~5.2x (k=16) -> ~9.8x (k=32); P-A power ~38 W vs GPU ~7.5x "
        "higher; optimum Pd ~= 2."
    )


if __name__ == "__main__":
    main()
