#!/usr/bin/env python3
"""Full resequencing workflow: paired reads -> correction -> assembly
-> mate-pair scaffolding.

A realistic end-to-end pipeline built entirely from this library's
extensions around the paper's core:

1. simulate a paired-end library (400 bp inserts, 0.5% errors) from a
   repeat-bearing synthetic chromosome;
2. spectrally correct the reads (k-mer spectrum repair);
3. assemble the corrected left+right mates with the bidirected
   (strand-aware) pipeline — the right mates are reverse-strand;
4. scaffold the contigs with the mate-pair links, estimating gaps.

Run:
    python examples/resequencing_workflow.py
"""

from repro.assembly import (
    assemble_bidirected,
    correct_reads,
    evaluate_assembly,
    scaffold_assembly,
)
from repro.genome import PairedReadSimulator, all_reads, synthetic_chromosome


def main() -> None:
    genome_length = 4_000
    insert_mean = 450

    print("=== resequencing workflow ===")
    reference = synthetic_chromosome(genome_length, seed=77)
    print(f"reference : {genome_length} bp, GC {reference.gc_content():.1%}")

    simulator = PairedReadSimulator(
        read_length=80,
        insert_mean=insert_mean,
        insert_sd=35,
        seed=78,
        error_rate=0.005,
    )
    pairs = simulator.sample(
        reference, simulator.pairs_for_coverage(genome_length, 35)
    )
    reads = all_reads(pairs)
    print(f"library   : {len(pairs)} pairs x 2 x 80 bp, 0.5% error rate")

    print("\n[1/3] spectral error correction ...")
    correction = correct_reads(reads, k=15, solid_threshold=4)
    print(
        f"  repaired {correction.corrected_bases} bases in "
        f"{correction.corrected_reads} reads "
        f"({correction.kmer_lookups} k-mer lookups — PIM_XNOR-class work)"
    )

    print("\n[2/3] bidirected assembly (strand-mixed mates) ...")
    contigs = assemble_bidirected(
        correction.reads, k=21, min_count=3, min_contig_length=100
    )
    report = evaluate_assembly(contigs, reference)
    print(f"  {report}")

    print("\n[3/3] mate-pair scaffolding ...")
    scaffolds = scaffold_assembly(
        contigs, pairs, insert_mean=insert_mean, min_links=3
    )
    print(f"  {len(contigs)} contigs -> {len(scaffolds)} scaffolds")
    for scaffold in scaffolds[:5]:
        print(
            f"    {scaffold.name}: {len(scaffold)} bp "
            f"({len(scaffold.members)} contigs, "
            f"{scaffold.gap_bases} N-gap bases)"
        )

    longest = max(scaffolds, key=len)
    recovered = len(longest) / genome_length
    print(f"\nlongest scaffold spans {recovered:.0%} of the reference")


if __name__ == "__main__":
    main()
