"""Crash/resume smoke: SIGKILL a journaled assembly, resume, compare.

Demonstrates (and asserts) the job runtime's core contract end to end
with a *real* process kill, not a simulated one:

1. run an uninterrupted journaled assembly → golden contigs + counts;
2. start the same job in a subprocess and ``SIGKILL`` it mid-hashmap
   (a sentinel file tells us the stage is underway);
3. resume from the torn journal in a fresh process;
4. diff contigs and per-mnemonic command counts — they must be
   bit-identical to the uninterrupted run.

Also exercised by CI (`crash-resume-smoke` job).  Exit code 0 on
success; any divergence raises.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.genome.reads import ReadSimulator  # noqa: E402
from repro.genome.reference import synthetic_chromosome  # noqa: E402
from repro.runtime.jobs import JobConfig, JobRunner  # noqa: E402

K = 11
GENOME_BP = 1200
COVERAGE = 20

# The victim subprocess: run the job, touching a sentinel once the
# hashmap stage has started so the parent knows when to shoot it.
VICTIM = r"""
import sys, time
from pathlib import Path
sys.path.insert(0, sys.argv[1])
from repro.runtime.jobs import JobConfig, JobRunner
from repro.runtime.watchdog import Watchdog
from example_workload import make_reads

job_dir, sentinel = sys.argv[2], Path(sys.argv[3])

def slow_tick(ticks):
    if ticks == 1:
        sentinel.touch()
    time.sleep(0.0005)  # stretch the stage so SIGKILL lands inside it

reads = make_reads()
runner = JobRunner(job_dir, JobConfig(k=%(k)d), watchdog=Watchdog(on_tick=slow_tick))
runner.run(reads)
"""


def make_reads():
    reference = synthetic_chromosome(GENOME_BP, seed=42)
    sim = ReadSimulator(read_length=60, seed=7)
    return sim.sample(
        reference, sim.reads_for_coverage(GENOME_BP, COVERAGE)
    )


def fingerprint(result) -> dict:
    return {
        "contigs": [(c.name, str(c.sequence)) for c in result.contigs],
        "hashmap": dict(result.hashmap.commands),
        "debruijn": dict(result.debruijn.commands),
        "traverse": dict(result.traverse.commands),
    }


def main() -> int:
    reads = make_reads()
    with tempfile.TemporaryDirectory(prefix="crash-resume-") as tmp:
        tmp = Path(tmp)

        # 1. the uninterrupted golden run
        golden = JobRunner(tmp / "golden", JobConfig(k=K)).run(reads)
        golden_fp = fingerprint(golden.result)
        print(
            f"golden: {len(golden_fp['contigs'])} contigs, "
            f"{sum(golden_fp['hashmap'].values())} hashmap commands"
        )

        # 2. start the victim and SIGKILL it mid-hashmap
        workload = tmp / "example_workload.py"
        workload.write_text(
            "import sys\nsys.path.insert(0, {src!r})\n"
            "from repro.genome.reads import ReadSimulator\n"
            "from repro.genome.reference import synthetic_chromosome\n"
            "def make_reads():\n"
            "    reference = synthetic_chromosome({bp}, seed=42)\n"
            "    sim = ReadSimulator(read_length=60, seed=7)\n"
            "    return sim.sample(reference, "
            "sim.reads_for_coverage({bp}, {cov}))\n".format(
                src=str(SRC), bp=GENOME_BP, cov=COVERAGE
            )
        )
        sentinel = tmp / "hashmap-started"
        victim = subprocess.Popen(
            [
                sys.executable,
                "-c",
                VICTIM % {"k": K},
                str(SRC),
                str(tmp / "job"),
                str(sentinel),
            ],
            cwd=tmp,
        )
        deadline = time.monotonic() + 60
        while not sentinel.exists():
            if victim.poll() is not None:
                raise RuntimeError("victim exited before hashmap started")
            if time.monotonic() > deadline:
                victim.kill()
                raise RuntimeError("victim never reached the hashmap stage")
            time.sleep(0.01)
        time.sleep(0.3)  # let it get some work journaled/underway
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait()
        print(f"victim SIGKILLed mid-hashmap (pid {victim.pid})")

        # 3. resume in this process
        out = JobRunner(tmp / "job", JobConfig(k=K)).resume(reads)
        print(
            f"resumed from {out.report.resumed_from!r}: "
            f"{len(out.result.contigs)} contigs"
        )

        # 4. bit-identical or bust
        resumed_fp = fingerprint(out.result)
        if resumed_fp != golden_fp:
            print(json.dumps({"golden": golden_fp, "resumed": resumed_fp}))
            raise AssertionError("resumed run diverged from golden run")
        print("resumed run is bit-identical to the uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
