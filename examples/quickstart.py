#!/usr/bin/env python3
"""Quickstart: assemble a small synthetic genome on PIM-Assembler.

Generates a seeded synthetic chromosome, samples error-free short
reads from it (the paper's read methodology), runs the full PIM
pipeline on the functional simulator — k-mer hash table built with
PIM_XNOR row comparisons, de Bruijn graph, in-memory degree
computation, traversal — and checks the result against both the
software golden-model assembler and the original reference.

Run:
    python examples/quickstart.py
"""

from repro import assemble, assemble_with_pim
from repro.assembly import evaluate_assembly
from repro.genome import ReadSimulator, synthetic_chromosome


def main() -> None:
    genome_length = 1_200
    coverage = 25
    k = 17

    print("=== PIM-Assembler quickstart ===")
    reference = synthetic_chromosome(genome_length, seed=42)
    print(f"reference: {genome_length} bp, GC {reference.gc_content():.1%}")

    simulator = ReadSimulator(read_length=80, seed=7)
    count = simulator.reads_for_coverage(genome_length, coverage)
    reads = simulator.sample(reference, count)
    print(f"reads:     {count} x {simulator.read_length} bp (~{coverage}x coverage)")

    print(f"\nassembling with k={k} on the PIM functional simulator ...")
    result = assemble_with_pim(reads, k=k)
    report = evaluate_assembly(result.contigs, reference)
    print(f"PIM assembly : {report}")

    software = assemble(reads, k=k)
    matches = sorted(str(c.sequence) for c in result.contigs) == sorted(
        str(c.sequence) for c in software.contigs
    )
    print(f"golden model : {'identical contigs' if matches else 'MISMATCH!'}")

    print("\nper-stage accounting (simulated PIM time):")
    for name, totals in (
        ("hashmap", result.hashmap),
        ("debruijn", result.debruijn),
        ("traverse", result.traverse),
    ):
        print(
            f"  {name:>9}: {totals.time_ns / 1e6:9.3f} ms"
            f"  {totals.energy_nj / 1e3:9.3f} uJ"
            f"  {totals.total_commands:8d} commands"
        )

    print(f"\nhash table size: {result.kmer_table_size} distinct {k}-mers")
    print(f"graph: {result.graph.num_nodes} nodes / {result.graph.num_edges} edges")
    longest = max(result.contigs, key=len)
    print(f"longest contig: {len(longest)} bp")


if __name__ == "__main__":
    main()
