#!/usr/bin/env python3
"""Fault recovery demo: assembling through ±15% process variation.

Assembles the same simulated read set three times on the functional
simulator, with Table-I-derived fault rates injected into every
in-memory operation:

1. **fault-free baseline** — the contigs the run *should* produce;
2. **policy off** — faults flow straight into the k-mer table; missed
   in-memory comparisons split counts across duplicate slots, edges
   drop below ``min_count``, and the assembly fragments;
3. **detect-retry-remap** — every compute op is parity-verified, flagged
   ops retry with re-staged operands, the k-mer table is scrubbed
   between stages, persistently failing rows are quarantined — and the
   contigs come back bit-identical to the baseline.

The run ends with the resilience report (detected/corrected events,
retries, quarantined sub-arrays) and the verification overhead the
detect loop charged to the stats ledger.

Run:
    python examples/fault_recovery_demo.py
"""

from repro.assembly.metrics import evaluate_assembly
from repro.assembly.pipeline import PimPipeline, _sized_device
from repro.core.faults import FaultModel
from repro.genome import ReadSimulator, synthetic_chromosome

VARIATION_PERCENT = 15.0
GENOME_LENGTH = 500
COVERAGE = 8.0
READ_LENGTH = 80
K = 9
MIN_COUNT = 2
SEEDS = {"genome": 700, "reads": 701, "faults": 702}


def assemble(reads, variation: float, policy: "str | None"):
    pim = _sized_device(reads, K)
    if variation > 0:
        pim.controller.faults = FaultModel.from_variation(
            variation, seed=SEEDS["faults"]
        )
    pipeline = PimPipeline(pim, k=K, min_count=MIN_COUNT, resilience=policy)
    return pipeline.run(reads)


def main() -> None:
    reference = synthetic_chromosome(GENOME_LENGTH, seed=SEEDS["genome"])
    simulator = ReadSimulator(read_length=READ_LENGTH, seed=SEEDS["reads"])
    reads = simulator.sample(
        reference, simulator.reads_for_coverage(len(reference), COVERAGE)
    )
    print(
        f"workload: {len(reads)} reads x {READ_LENGTH}bp "
        f"(~{COVERAGE:.0f}x coverage of a {GENOME_LENGTH}bp reference), "
        f"k={K}, min_count={MIN_COUNT}"
    )

    print("\n=== 1. fault-free baseline ===")
    baseline = assemble(reads, 0.0, None)
    baseline_contigs = sorted(str(c.sequence) for c in baseline.contigs)
    print(evaluate_assembly(baseline.contigs, reference))

    print(f"\n=== 2. ±{VARIATION_PERCENT:.0f}% variation, policy OFF ===")
    unprotected = assemble(reads, VARIATION_PERCENT, "off")
    off_contigs = sorted(str(c.sequence) for c in unprotected.contigs)
    print(evaluate_assembly(unprotected.contigs, reference))
    print(
        "contigs identical to baseline: "
        f"{'yes' if off_contigs == baseline_contigs else 'NO — corrupted'}"
    )

    print(
        f"\n=== 3. ±{VARIATION_PERCENT:.0f}% variation, "
        "policy detect-retry-remap ==="
    )
    protected = assemble(reads, VARIATION_PERCENT, "detect-retry-remap")
    protected_contigs = sorted(str(c.sequence) for c in protected.contigs)
    print(evaluate_assembly(protected.contigs, reference))
    print(
        "contigs identical to baseline: "
        f"{'yes — recovered' if protected_contigs == baseline_contigs else 'NO'}"
    )

    report = protected.resilience
    print(f"\nresilience report:\n  {report}")
    for stage, counts in report.stages.items():
        print(
            f"  {stage:>8}: detected={counts.detected} "
            f"corrected={counts.corrected} uncorrected={counts.uncorrected} "
            f"retries={counts.retries} scrubbed={counts.scrubbed_rows}"
        )
    overhead = report.totals.verify_time_ns / protected.total_time_ns
    print(
        f"\nverification overhead: {report.totals.verify_time_ns / 1e3:.1f} us "
        f"({overhead:.1%} of the protected run), "
        f"{report.totals.verify_energy_nj:.1f} nJ"
    )
    slowdown = protected.total_time_ns / baseline.total_time_ns
    print(f"protected-run slowdown vs fault-free baseline: {slowdown:.2f}x")


if __name__ == "__main__":
    main()
