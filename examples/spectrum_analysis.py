#!/usr/bin/env python3
"""Reference-free parameter selection from the k-mer spectrum.

Real pipelines never know the genome or the error rate in advance;
the k-mer frequency histogram reveals both.  This example:

1. draws noisy reads from an *undisclosed* synthetic genome,
2. plots the spectrum (ASCII) — the error spike at low frequency and
   the genomic peak near the coverage,
3. derives the error threshold, coverage and genome size from the
   histogram alone,
4. uses the derived threshold for spectral correction + filtering and
   shows the resulting assembly against the (revealed) truth.

Run:
    python examples/spectrum_analysis.py
"""

from repro.assembly import assemble, correct_reads, evaluate_assembly
from repro.genome import ReadSimulator, analyse_spectrum, synthetic_chromosome
from repro.genome.spectrum import format_histogram


def main() -> None:
    # -- the "unknown" sample --------------------------------------------
    true_length = 5_000
    true_coverage = 35
    reference = synthetic_chromosome(true_length, seed=31337)
    sim = ReadSimulator(read_length=90, seed=31338, error_rate=0.006)
    reads = sim.sample(
        reference, sim.reads_for_coverage(true_length, true_coverage)
    )
    print(f"reads: {len(reads)} x 90 bp (genome + error rate undisclosed)")

    # -- spectrum ----------------------------------------------------------
    k = 17
    analysis = analyse_spectrum(reads, k)
    capped = {f: n for f, n in analysis.histogram.items() if f <= 50}
    print(f"\n{k}-mer spectrum (frequencies <= 50):")
    print(format_histogram(capped, width=46))

    print("\nderived from the histogram alone:")
    print(f"  error threshold     : {analysis.error_threshold}x")
    print(f"  coverage peak       : {analysis.coverage_peak}x")
    print(f"  genome size estimate: {analysis.genome_size_estimate} bp")
    print(f"  solid k-mer fraction: {analysis.solid_fraction():.1%}")

    # -- put the estimates to work ----------------------------------------
    corrected = correct_reads(
        reads, k=15, solid_threshold=analysis.error_threshold
    )
    result = assemble(
        corrected.reads, k=21, min_count=analysis.error_threshold
    )
    report = evaluate_assembly(result.contigs, reference)

    print("\nassembly with the derived parameters:")
    print(f"  corrected bases : {corrected.corrected_bases}")
    print(f"  {report}")

    error = abs(analysis.genome_size_estimate - true_length) / true_length
    print(
        f"\ntruth revealed: genome {true_length} bp at {true_coverage}x — "
        f"size estimate off by {error:.1%}"
    )


if __name__ == "__main__":
    main()
